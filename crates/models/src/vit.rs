//! Vision Transformer for bytecode images (ViT+R2D2 and ViT+Freq).
//!
//! The paper fine-tunes an ImageNet-pretrained ViT-B/16 on 224×224 RGB
//! renderings of the bytecode; this is the same architecture — patch
//! embedding, class token, learned positional embeddings, pre-norm encoder
//! blocks, classification head on the class token — at CPU scale
//! (32×32 images, patch 8, small width), trained from scratch.

use crate::trainer::{
    predict_binary, predict_binary_batch, train_binary, TrainConfig, PREDICT_BATCH,
};
use phishinghook_nn::{
    LayerNorm, Linear, ParamId, ParamStore, Tape, Tensor, TransformerBlock, Var,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ViT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViTConfig {
    /// Input image side (images are `3 × side × side`, channel-first).
    pub side: usize,
    /// Patch side (must divide `side`).
    pub patch: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder blocks.
    pub depth: usize,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for ViTConfig {
    fn default() -> Self {
        ViTConfig {
            side: 32,
            patch: 8,
            dim: 32,
            heads: 4,
            depth: 2,
            train: TrainConfig::default(),
        }
    }
}

/// A small Vision Transformer over channel-first RGB images.
///
/// # Examples
///
/// ```
/// use phishinghook_models::vit::{ViT, ViTConfig};
/// use phishinghook_models::TrainConfig;
///
/// let cfg = ViTConfig {
///     side: 8, patch: 4, dim: 8, heads: 2, depth: 1,
///     train: TrainConfig { epochs: 40, batch_size: 2, ..Default::default() },
/// };
/// let mut model = ViT::new(cfg);
/// // Left-bright vs right-bright images (patterns survive layer norm).
/// let left: Vec<f32> = (0..192).map(|i| if (i % 8) < 4 { 0.9 } else { 0.1 }).collect();
/// let right: Vec<f32> = (0..192).map(|i| if (i % 8) < 4 { 0.1 } else { 0.9 }).collect();
/// model.fit(&[left.clone(), right.clone()], &[1, 0]);
/// let p = model.predict_proba(&[left, right]);
/// assert!(p[0] > p[1]);
/// ```
#[derive(Debug)]
pub struct ViT {
    config: ViTConfig,
    store: ParamStore,
    patch_proj: Linear,
    cls_token: ParamId,
    pos_embed: ParamId,
    blocks: Vec<TransformerBlock>,
    final_norm: LayerNorm,
    head: Linear,
}

impl ViT {
    /// Builds a ViT with fresh parameters.
    ///
    /// # Panics
    ///
    /// Panics if `patch` does not divide `side`.
    pub fn new(config: ViTConfig) -> Self {
        assert_eq!(config.side % config.patch, 0, "patch must divide side");
        let mut rng = StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let patch_dim = 3 * config.patch * config.patch;
        let n_patches = (config.side / config.patch) * (config.side / config.patch);
        let patch_proj = Linear::new(&mut store, patch_dim, config.dim, &mut rng);
        let cls_token = store.param(Tensor::random(&[1, config.dim], 0.1, &mut rng));
        let pos_embed = store.param(Tensor::random(&[n_patches + 1, config.dim], 0.1, &mut rng));
        let blocks = (0..config.depth)
            .map(|_| TransformerBlock::new(&mut store, config.dim, config.heads, &mut rng))
            .collect();
        let final_norm = LayerNorm::new(&mut store, config.dim);
        let head = Linear::new(&mut store, config.dim, 1, &mut rng);
        ViT {
            config,
            store,
            patch_proj,
            cls_token,
            pos_embed,
            blocks,
            final_norm,
            head,
        }
    }

    /// Rearranges a channel-first image vector into `(n_patches, 3·p·p)`.
    fn patchify(&self, image: &[f32]) -> Tensor {
        patchify(self.config.side, self.config.patch, image)
    }

    fn logit(&self, tape: &mut Tape, store: &ParamStore, image: &[f32]) -> Var {
        let cls = tape.param(store, self.cls_token);
        let pos = tape.param(store, self.pos_embed);
        self.logit_with(tape, store, cls, pos, image)
    }

    /// [`ViT::logit`] over pre-recorded class-token and positional leaves,
    /// so a batched tape copies each once per mini-batch instead of once
    /// per image.
    fn logit_with(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        cls: Var,
        pos: Var,
        image: &[f32],
    ) -> Var {
        let patches = tape.input(self.patchify(image));
        let tokens = self.patch_proj.forward(tape, store, patches);
        let seq = tape.concat_rows(cls, tokens);
        let mut x = tape.add(seq, pos);
        for block in &self.blocks {
            x = block.forward(tape, store, x, false);
        }
        let x = self.final_norm.forward(tape, store, x);
        let cls_out = tape.row_at(x, 0);
        self.head.forward(tape, store, cls_out)
    }

    /// Trains on channel-first image vectors (`3 · side²` floats each).
    /// Each image's token sequence is its own subgraph (attention is
    /// quadratic in sequence length, so samples are not concatenated); the
    /// mini-batch shares one tape and stacks its class logits for a single
    /// backward pass.
    pub fn fit(&mut self, images: &[Vec<f32>], y: &[u8]) {
        // Copy the layer handles so the closure does not borrow `self`.
        let (side, patch) = (self.config.side, self.config.patch);
        let patchify = move |img: &[f32]| patchify(side, patch, img);
        let (proj, cls_id, pos_id) = (self.patch_proj, self.cls_token, self.pos_embed);
        let blocks = self.blocks.clone();
        let (norm, head) = (self.final_norm, self.head);
        let cfg = self.config.train;
        let mut store = std::mem::take(&mut self.store);
        train_binary(
            &mut store,
            images,
            y,
            &cfg,
            &[],
            |t, s, batch: &[&Vec<f32>]| {
                // One class-token/positional leaf per batch, shared by
                // every image subgraph.
                let cls = t.param(s, cls_id);
                let pos = t.param(s, pos_id);
                let logits: Vec<Var> = batch
                    .iter()
                    .map(|img| {
                        let patches = t.input(patchify(img));
                        let tokens = proj.forward(t, s, patches);
                        let seq = t.concat_rows(cls, tokens);
                        let mut x = t.add(seq, pos);
                        for block in &blocks {
                            x = block.forward(t, s, x, false);
                        }
                        let x = norm.forward(t, s, x);
                        let cls_out = t.row_at(x, 0);
                        head.forward(t, s, cls_out)
                    })
                    .collect();
                t.stack_rows(&logits)
            },
        );
        self.store = store;
    }

    /// Phishing probability per image.
    pub fn predict_proba(&self, images: &[Vec<f32>]) -> Vec<f32> {
        predict_binary(&self.store, images, |t, s, img| self.logit(t, s, img))
    }

    /// Batched phishing probabilities over one arena-reused tape,
    /// bit-identical to [`ViT::predict_proba`].
    pub fn predict_proba_batch(&self, images: &[Vec<f32>]) -> Vec<f32> {
        predict_binary_batch(&self.store, images, PREDICT_BATCH, |t, s, batch| {
            let cls = t.param(s, self.cls_token);
            let pos = t.param(s, self.pos_embed);
            let logits: Vec<Var> = batch
                .iter()
                .map(|img| self.logit_with(t, s, cls, pos, img))
                .collect();
            t.stack_rows(&logits)
        })
    }

    /// Total trainable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Serializes the fitted parameter tensors (flat, bit-exact).
    pub fn export_state(&self) -> Vec<u8> {
        self.store.export_tensors()
    }

    /// Restores parameters exported from a same-configured model, after
    /// which predictions are bit-identical to the exporter's.
    ///
    /// # Errors
    ///
    /// See [`phishinghook_nn::ParamStore::import_tensors`].
    pub fn import_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), phishinghook_artifact::ArtifactError> {
        self.store.import_tensors(bytes)
    }
}

/// Rearranges a channel-first `3 × side × side` image into patch rows of
/// width `3 · patch²`.
fn patchify(side: usize, patch: usize, image: &[f32]) -> Tensor {
    let grid = side / patch;
    let pixels = side * side;
    assert_eq!(image.len(), 3 * pixels, "image length mismatch");
    let mut out = Vec::with_capacity(grid * grid * 3 * patch * patch);
    for gy in 0..grid {
        for gx in 0..grid {
            for c in 0..3 {
                for py in 0..patch {
                    for px in 0..patch {
                        let y = gy * patch + py;
                        let x = gx * patch + px;
                        out.push(image[c * pixels + y * side + x]);
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[grid * grid, 3 * patch * patch], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ViTConfig {
        ViTConfig {
            side: 8,
            patch: 4,
            dim: 8,
            heads: 2,
            depth: 1,
            train: TrainConfig {
                epochs: 60,
                learning_rate: 0.03,
                batch_size: 4,
                ..Default::default()
            },
        }
    }

    #[test]
    fn patchify_is_a_permutation() {
        let vit = ViT::new(toy());
        let image: Vec<f32> = (0..3 * 64).map(|i| i as f32).collect();
        let patches = vit.patchify(&image);
        assert_eq!(patches.shape(), &[4, 48]);
        let mut seen: Vec<f32> = patches.data().to_vec();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<f32> = (0..192).map(|i| i as f32).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn separates_spatial_patterns() {
        // Class 1: bright left half; class 0: bright right half. Spatial
        // patterns survive the layer norms (global brightness would not).
        let mut model = ViT::new(toy());
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let left_bright = i % 2 == 1;
            let img: Vec<f32> = (0..192)
                .map(|j| {
                    let col = j % 8;
                    let bright = (col < 4) == left_bright;
                    let noise = 0.04 * ((i + j) % 3) as f32;
                    if bright {
                        0.85 + noise
                    } else {
                        0.1 + noise
                    }
                })
                .collect();
            xs.push(img);
            ys.push((i % 2) as u8);
        }
        model.fit(&xs, &ys);
        let probs = model.predict_proba(&xs);
        let acc = probs
            .iter()
            .zip(&ys)
            .filter(|(p, &l)| (**p >= 0.5) == (l == 1))
            .count();
        assert!(acc >= 22, "accuracy {acc}/24");
    }

    #[test]
    #[should_panic(expected = "patch must divide side")]
    fn bad_patch_rejected() {
        ViT::new(ViTConfig {
            side: 10,
            patch: 4,
            ..toy()
        });
    }
}
