//! Shared training loop for the deep models: shuffled mini-batches,
//! per-sample tapes, Adam updates, optional frozen parameters.

use phishinghook_nn::{ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters shared by all deep models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size (gradients are averaged per batch).
    pub batch_size: usize,
    /// Shuffle / initialisation seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 4,
            learning_rate: 0.01,
            batch_size: 16,
            seed: 0x5EED,
        }
    }
}

/// Runs the standard loop: for each epoch, shuffle, and for each mini-batch
/// accumulate per-sample BCE gradients through `logit_fn`, then take one
/// (optionally masked) Adam step. Returns the mean loss of the final epoch.
pub fn train_binary<S>(
    store: &mut ParamStore,
    samples: &[S],
    labels: &[u8],
    config: &TrainConfig,
    frozen: &[ParamId],
    mut logit_fn: impl FnMut(&mut Tape, &ParamStore, &S) -> Var,
) -> f32 {
    assert_eq!(samples.len(), labels.len(), "sample/label mismatch");
    assert!(!samples.is_empty(), "cannot train on an empty set");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_loss = 0.0f32;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        epoch_loss = 0.0;
        for chunk in order.chunks(config.batch_size.max(1)) {
            store.zero_grads();
            for &i in chunk {
                let mut tape = Tape::new();
                let z = logit_fn(&mut tape, store, &samples[i]);
                let loss = tape.bce_with_logit(z, labels[i] as f32);
                epoch_loss += tape.value(loss).item();
                tape.backward(loss, store);
            }
            if frozen.is_empty() {
                store.adam_step(config.learning_rate, chunk.len());
            } else {
                store.adam_step_masked(config.learning_rate, chunk.len(), frozen);
            }
        }
        epoch_loss /= samples.len() as f32;
    }
    epoch_loss
}

/// Computes `σ(logit)` per sample through a forward-only tape.
pub fn predict_binary<S>(
    store: &ParamStore,
    samples: &[S],
    mut logit_fn: impl FnMut(&mut Tape, &ParamStore, &S) -> Var,
) -> Vec<f32> {
    samples
        .iter()
        .map(|s| {
            let mut tape = Tape::new();
            let z = logit_fn(&mut tape, store, s);
            let v = tape.value(z).data()[0];
            1.0 / (1.0 + (-v).exp())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_nn::{Linear, Tensor};

    #[test]
    fn trains_a_linear_probe() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, 2, 1, &mut rng);
        let samples: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![(i % 2) as f32, 1.0 - (i % 2) as f32])
            .collect();
        let labels: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let cfg = TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
            ..Default::default()
        };
        let loss = train_binary(&mut store, &samples, &labels, &cfg, &[], |t, s, x| {
            let xv = t.input(Tensor::from_vec(&[1, 2], x.clone()));
            lin.forward(t, s, xv)
        });
        assert!(loss < 0.1, "loss = {loss}");
        let probs = predict_binary(&store, &samples, |t, s, x| {
            let xv = t.input(Tensor::from_vec(&[1, 2], x.clone()));
            lin.forward(t, s, xv)
        });
        let acc = probs
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == (l == 1))
            .count();
        assert!(acc >= 98);
    }

    #[test]
    #[should_panic(expected = "sample/label mismatch")]
    fn mismatched_lengths_panic() {
        let mut store = ParamStore::new();
        train_binary(
            &mut store,
            &[1.0f32],
            &[0, 1],
            &TrainConfig::default(),
            &[],
            |t, _, _| t.input(Tensor::from_vec(&[1, 1], vec![0.0])),
        );
    }
}
