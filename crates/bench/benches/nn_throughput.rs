//! Criterion bench: the batched NN compute path. The shared trainer used to
//! build a fresh tape and run a full forward/backward **per sample**; it
//! now records one arena-reused tape per mini-batch over a `(B, d)` GEMM.
//! This bench times both loops — the retired per-sample loop is kept in
//! `phishinghook_models::trainer::train_binary_per_sample` precisely as
//! this baseline — on the ESCORT-shaped dense network at quick-profile
//! sizes, plus batched vs. row-wise inference.
//!
//! Besides the criterion timings, the bench writes `BENCH_nn.json`
//! (train/predict samples-per-sec, per-sample vs. batched) and enforces
//! the speedup floors: batched training must be ≥3× per-sample and
//! batched inference ≥5× row-wise on the full run (≥1.5× / ≥2× under
//! `PHISHINGHOOK_BENCH_SMOKE=1`, the single-core CI noise band) — a
//! batched-path regression fails the build.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook_bench::json::Value;
use phishinghook_models::trainer::{
    batch_input, predict_binary, predict_binary_batch, train_binary, train_binary_per_sample,
    TrainConfig, PREDICT_BATCH,
};
use phishinghook_nn::{Linear, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("PHISHINGHOOK_BENCH_SMOKE").is_some()
}

fn sample_count() -> usize {
    if smoke_mode() {
        128
    } else {
        256
    }
}

fn timing_samples() -> usize {
    if smoke_mode() {
        5
    } else {
        10
    }
}

/// The asserted floor on batched train-epoch throughput. The quick-profile
/// target is ≥3×; smoke runs keep a wide margin for noisy shared CI boxes
/// while still catching any structural regression (falling back to
/// per-sample tapes costs the full multiple).
fn train_floor() -> f64 {
    if smoke_mode() {
        1.5
    } else {
        3.0
    }
}

/// The asserted floor on batched-vs-rowwise inference throughput, added
/// with the SIMD GEMM tiers (PR 6): measured ≈12× on the 1-core AVX-512
/// CI box (≈8.7× pre-SIMD), floored well below to absorb shared-box
/// noise while still catching a fall back to row-wise tapes.
fn predict_floor() -> f64 {
    if smoke_mode() {
        2.0
    } else {
        5.0
    }
}

/// ESCORT-trunk-shaped MLP at quick-profile width: 64 → 64 → 32 → 1.
const INPUT_DIM: usize = 64;
const HIDDEN1: usize = 64;
const HIDDEN2: usize = 32;

struct Mlp {
    store: ParamStore,
    l1: Linear,
    l2: Linear,
    head: Linear,
}

impl Mlp {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let l1 = Linear::new(&mut store, INPUT_DIM, HIDDEN1, &mut rng);
        let l2 = Linear::new(&mut store, HIDDEN1, HIDDEN2, &mut rng);
        let head = Linear::new(&mut store, HIDDEN2, 1, &mut rng);
        Mlp {
            store,
            l1,
            l2,
            head,
        }
    }

    fn logit(&self, t: &mut Tape, s: &ParamStore, x: Var) -> Var {
        let h = self.l1.forward(t, s, x);
        let h = t.relu(h);
        let h = self.l2.forward(t, s, h);
        let h = t.relu(h);
        self.head.forward(t, s, h)
    }
}

fn synthetic_task(n: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let xs: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let bias = if i % 2 == 0 { 0.4 } else { -0.4 };
            (0..INPUT_DIM)
                .map(|_| rng.gen_range(-1.0f32..=1.0) + bias)
                .collect()
        })
        .collect();
    let ys: Vec<u8> = (0..n).map(|i| (i % 2 == 0) as u8).collect();
    (xs, ys)
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        learning_rate: 0.01,
        batch_size: 16,
        seed: 0x5EED,
    }
}

fn train_per_sample(xs: &[Vec<f32>], ys: &[u8]) -> f32 {
    let mlp = Mlp::new(1);
    let mut store = mlp.store;
    let (l1, l2, head) = (mlp.l1, mlp.l2, mlp.head);
    train_binary_per_sample(
        &mut store,
        xs,
        ys,
        &train_cfg(),
        &[],
        |t, s, x: &Vec<f32>| {
            let xv = t.input(Tensor::from_vec(&[1, INPUT_DIM], x.clone()));
            let h = l1.forward(t, s, xv);
            let h = t.relu(h);
            let h = l2.forward(t, s, h);
            let h = t.relu(h);
            head.forward(t, s, h)
        },
    )
}

fn train_batched(xs: &[Vec<f32>], ys: &[u8]) -> f32 {
    let mlp = Mlp::new(1);
    let mut store = mlp.store;
    let (l1, l2, head) = (mlp.l1, mlp.l2, mlp.head);
    train_binary(
        &mut store,
        xs,
        ys,
        &train_cfg(),
        &[],
        |t, s, batch: &[&Vec<f32>]| {
            let xv = batch_input(t, batch);
            let h = l1.forward(t, s, xv);
            let h = t.relu(h);
            let h = l2.forward(t, s, h);
            let h = t.relu(h);
            head.forward(t, s, h)
        },
    )
}

/// Interleaved best-of-N timing so frequency scaling hits both paths
/// equally. Returns (per_sample_secs, batched_secs).
fn timed_train_pair(samples: usize, xs: &[Vec<f32>], ys: &[u8]) -> (f64, f64) {
    let mut per_sample = f64::INFINITY;
    let mut batched = f64::INFINITY;
    // Warmup both paths.
    train_per_sample(xs, ys);
    train_batched(xs, ys);
    for _ in 0..samples {
        let t0 = Instant::now();
        train_per_sample(xs, ys);
        per_sample = per_sample.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        train_batched(xs, ys);
        batched = batched.min(t1.elapsed().as_secs_f64());
    }
    (per_sample, batched)
}

fn timed_predict_pair(samples: usize, mlp: &Mlp, xs: &[Vec<f32>]) -> (f64, f64) {
    let rowwise_fn = |t: &mut Tape, s: &ParamStore, x: &Vec<f32>| {
        let xv = t.input(Tensor::from_vec(&[1, INPUT_DIM], x.clone()));
        mlp.logit(t, s, xv)
    };
    let batched_fn = |t: &mut Tape, s: &ParamStore, batch: &[&Vec<f32>]| {
        let xv = batch_input(t, batch);
        mlp.logit(t, s, xv)
    };
    let rowwise = predict_binary(&mlp.store, xs, rowwise_fn);
    let batched = predict_binary_batch(&mlp.store, xs, PREDICT_BATCH, batched_fn);
    assert_eq!(
        rowwise.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        batched.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "batched inference must be bit-identical to row-wise"
    );
    let mut row_t = f64::INFINITY;
    let mut bat_t = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        let _ = predict_binary(&mlp.store, xs, rowwise_fn);
        row_t = row_t.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let _ = predict_binary_batch(&mlp.store, xs, PREDICT_BATCH, batched_fn);
        bat_t = bat_t.min(t1.elapsed().as_secs_f64());
    }
    (row_t, bat_t)
}

fn write_baseline(xs: &[Vec<f32>], ys: &[u8]) {
    let cfg = train_cfg();
    let (per_sample_s, batched_s) = timed_train_pair(timing_samples(), xs, ys);
    let epoch_samples = (xs.len() * cfg.epochs) as f64;
    let per_sample_tps = epoch_samples / per_sample_s;
    let batched_tps = epoch_samples / batched_s;
    let train_speedup = per_sample_s / batched_s;

    let mlp = Mlp::new(1);
    let (row_s, bat_s) = timed_predict_pair(timing_samples(), &mlp, xs);
    let predict_speedup = row_s / bat_s;

    assert!(
        train_speedup >= train_floor(),
        "batched-training regression: {train_speedup:.2}x per-sample \
         (floor {:.1}x)",
        train_floor()
    );
    assert!(
        predict_speedup >= predict_floor(),
        "batched-inference regression: {predict_speedup:.2}x row-wise \
         (floor {:.1}x)",
        predict_floor()
    );

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("nn_throughput".into())),
        ("network".into(), Value::Str("mlp_64_64_32_1".into())),
        ("samples".into(), Value::Num(xs.len() as f64)),
        ("epochs".into(), Value::Num(cfg.epochs as f64)),
        ("batch_size".into(), Value::Num(cfg.batch_size as f64)),
        (
            "per_sample_train_samples_per_sec".into(),
            Value::Num(per_sample_tps),
        ),
        (
            "batched_train_samples_per_sec".into(),
            Value::Num(batched_tps),
        ),
        ("train_speedup".into(), Value::Num(train_speedup)),
        (
            "rowwise_predict_samples_per_sec".into(),
            Value::Num(xs.len() as f64 / row_s),
        ),
        (
            "batched_predict_samples_per_sec".into(),
            Value::Num(xs.len() as f64 / bat_s),
        ),
        ("predict_speedup".into(), Value::Num(predict_speedup)),
    ]);
    // Smoke runs assert but never overwrite the committed baseline.
    if !smoke_mode() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
        std::fs::write(path, doc.render()).expect("write BENCH_nn.json");
    }
    println!(
        "  baseline: train {per_sample_tps:.0} -> {batched_tps:.0} samples/s \
         ({train_speedup:.2}x), predict {predict_speedup:.2}x -> BENCH_nn.json"
    );
}

fn bench_nn(c: &mut Criterion) {
    let (xs, ys) = synthetic_task(sample_count());

    let mut group = c.benchmark_group("nn_throughput");
    group.bench_function("train_per_sample_tapes", |b| {
        b.iter(|| train_per_sample(&xs, &ys))
    });
    group.bench_function("train_batched_tape", |b| b.iter(|| train_batched(&xs, &ys)));
    group.finish();

    write_baseline(&xs, &ys);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nn
}
criterion_main!(benches);
