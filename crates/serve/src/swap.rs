//! The artifact hot-swap seam: a generation-counted slot the queue
//! workers score through, swappable under a live server.
//!
//! A [`ModelSlot`] holds the live `Arc<Detector>` plus its artifact
//! generation behind one lock. Queue workers implement their batched
//! scoring through the slot's [`CodeScorer`] impl, which **snapshots the
//! `Arc` once per batch**: a concurrent [`ModelSlot::install`] swaps the
//! live model for subsequent batches while every in-flight batch finishes
//! on the model it started with — no torn batches, no dropped requests,
//! and bit-parity with solo scoring within each generation.
//!
//! The rolling-retrain loop in `phishinghook-ingest` drives this seam:
//! republish the artifact atomically on disk, decode it, then
//! [`Server::install`](crate::Server::install) the new generation here.

use phishinghook::{CodeScorer, Detector};
use phishinghook_evm::Bytecode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A swappable, generation-counted scorer slot shared by the serving
/// queue and the retrain loop.
///
/// Generic over the scorer (defaulting to the flat [`Detector`]), which
/// is what makes cascade hot swap atomic for free: a
/// `ModelSlot<CascadeDetector>` holds *both* cascade stages behind one
/// `Arc`, so an install replaces screen and confirmer in the same swap —
/// no request can ever observe a stage-1 from one generation paired with
/// a stage-2 from another.
pub struct ModelSlot<S: CodeScorer = Detector> {
    /// The live model and its generation, swapped together so a reader
    /// never pairs a new model with an old generation number.
    live: Mutex<(Arc<S>, u64)>,
    started: Instant,
}

impl<S: CodeScorer> ModelSlot<S> {
    /// A slot serving `scorer` as artifact generation `generation`
    /// (use 0 for a model loaded outside any publish directory).
    pub fn new(scorer: Arc<S>, generation: u64) -> Self {
        ModelSlot {
            live: Mutex::new((scorer, generation)),
            started: Instant::now(),
        }
    }

    /// One consistent `(model, generation)` snapshot. The returned `Arc`
    /// keeps that generation alive for as long as the caller scores with
    /// it, regardless of later installs.
    pub fn snapshot(&self) -> (Arc<S>, u64) {
        let live = self.live.lock().unwrap();
        (Arc::clone(&live.0), live.1)
    }

    /// The live scorer.
    pub fn detector(&self) -> Arc<S> {
        self.snapshot().0
    }

    /// The live artifact generation.
    pub fn generation(&self) -> u64 {
        self.live.lock().unwrap().1
    }

    /// Swaps in a new model generation and returns the generation it
    /// replaced. Takes effect for every batch that snapshots after this
    /// call; batches already scoring finish on the old model.
    pub fn install(&self, scorer: Arc<S>, generation: u64) -> u64 {
        let mut live = self.live.lock().unwrap();
        let previous = live.1;
        *live = (scorer, generation);
        previous
    }

    /// Time since the slot (and hence the server around it) was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }
}

impl<S: CodeScorer> CodeScorer for ModelSlot<S> {
    type Output = S::Output;

    /// Scores one batch against a single snapshot of the live model: the
    /// swap seam's whole contract is that this `Arc` is read exactly once
    /// per batch.
    fn score_many(&self, codes: &[Bytecode]) -> Vec<S::Output> {
        self.detector().score_many(codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook::prelude::*;
    use phishinghook::EvalProfile;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    fn trained(kind: ModelKind, seed: u64) -> Arc<Detector> {
        let corpus = generate_corpus(&CorpusConfig::small(seed));
        let chain = SimulatedChain::from_corpus(&corpus);
        let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
        let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
        Arc::new(Detector::train(&ctx, kind, 7))
    }

    #[test]
    fn install_swaps_model_and_generation_together() {
        let first = trained(ModelKind::LogisticRegression, 42);
        let second = trained(ModelKind::RandomForest, 42);
        let slot = ModelSlot::new(Arc::clone(&first), 1);
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.detector().kind(), first.kind());

        let old = slot.install(Arc::clone(&second), 2);
        assert_eq!(old, 1);
        let (live, generation) = slot.snapshot();
        assert_eq!(generation, 2);
        assert_eq!(live.kind(), ModelKind::RandomForest);
        // The pre-swap snapshot semantics: an Arc taken before install
        // still scores on the old model.
        assert_eq!(first.kind(), ModelKind::LogisticRegression);
    }

    #[test]
    fn slot_scoring_is_bit_identical_to_the_detector_within_a_generation() {
        let detector = trained(ModelKind::LogisticRegression, 7);
        let slot = ModelSlot::new(Arc::clone(&detector), 1);
        let corpus = generate_corpus(&CorpusConfig::small(9));
        let chain = SimulatedChain::from_corpus(&corpus);
        let codes: Vec<Bytecode> = chain
            .records()
            .iter()
            .take(16)
            .map(|r| r.bytecode.clone())
            .collect();
        assert_eq!(slot.score_many(&codes), detector.score_many(&codes));
    }
}
