//! Corpus builder: reproduces the paper's data-gathering outcome —
//! ~17.5k obtained phishing contracts collapsing to ~3.5k unique bytecodes
//! after bit-by-bit deduplication, enriched with benign samples into a
//! balanced dataset (§III, Fig. 2).
//!
//! The builder works at the *deployment* level: every unique contract is
//! deployed once and then re-deployed ("cloned") a heavy-tailed number of
//! times across subsequent months, exactly the minimal-proxy/factory
//! duplication observed on chain.

use crate::families::{generate_contract, ContractClass, Difficulty, Family};
use crate::month::{Month, STUDY_MONTHS};
use phishinghook_evm::Bytecode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Relative volume of obtained phishing contracts per month, shaped like the
/// paper's Fig. 2 (ramp through winter, peak in early spring 2024, slow
/// decay with a September echo).
pub const MONTHLY_PHISHING_SHAPE: [f64; STUDY_MONTHS] = [
    0.4, 0.7, 0.9, 1.3, 1.8, 2.5, 2.2, 1.7, 1.4, 1.1, 0.9, 1.5, 1.0,
];

/// Configuration for corpus generation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of *unique* phishing bytecodes (the paper has 3,458).
    pub unique_phishing: usize,
    /// Number of *unique* benign bytecodes (the paper balances to 7,000
    /// total, i.e. 3,542).
    pub unique_benign: usize,
    /// Mean number of deployments per unique phishing bytecode (the paper
    /// observed 17,455 / 3,458 ≈ 5.05).
    pub clone_factor: f64,
    /// Probability that the explorer's flag disagrees with ground truth
    /// (community-report noise).
    pub label_noise: f64,
    /// If `true`, benign deployments follow the same monthly shape as
    /// phishing ones (the paper's time-resistance dataset); otherwise benign
    /// volume is uniform over the window (the main dataset).
    pub benign_temporal_match: bool,
    /// Task-difficulty knobs forwarded to the generator.
    pub difficulty: Difficulty,
    /// RNG seed; corpora are fully deterministic given the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            unique_phishing: 3458,
            unique_benign: 3542,
            clone_factor: 5.05,
            label_noise: 0.035,
            benign_temporal_match: false,
            difficulty: Difficulty::default(),
            seed: 0xD5_2025,
        }
    }
}

impl CorpusConfig {
    /// A scaled-down corpus for tests and examples (hundreds, not
    /// thousands, of contracts).
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            unique_phishing: 150,
            unique_benign: 150,
            clone_factor: 3.0,
            seed,
            ..CorpusConfig::default()
        }
    }
}

/// One deployed contract (possibly a bit-identical clone of another).
#[derive(Debug, Clone, PartialEq)]
pub struct SynthContract {
    /// Deployed bytecode.
    pub bytecode: Bytecode,
    /// Ground-truth family (not visible to models).
    pub family: Family,
    /// Deployment month.
    pub month: Month,
    /// The explorer's `Phish/Hack`-style flag — ground truth XOR label
    /// noise. This is what the dataset labels come from, as in the paper.
    pub flagged: bool,
}

impl SynthContract {
    /// Ground-truth class (via the family).
    pub fn class(&self) -> ContractClass {
        self.family.class()
    }
}

/// A generated corpus of deployments.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// Every deployment, clones included, sorted by month.
    pub contracts: Vec<SynthContract>,
}

impl Corpus {
    /// Deduplicates bit-by-bit (by content hash + bytes), keeping the first
    /// deployment of each bytecode — the paper's 17,455 → 3,458 step.
    pub fn dedup(&self) -> Vec<&SynthContract> {
        let mut seen = HashSet::new();
        let mut unique = Vec::new();
        for c in &self.contracts {
            if seen.insert(c.bytecode.clone()) {
                unique.push(c);
            }
        }
        unique
    }

    /// Monthly `(obtained, unique)` phishing-deployment counts — the two
    /// series of Fig. 2. "Unique" counts a bytecode in the month it first
    /// appeared.
    pub fn monthly_phishing_counts(&self) -> Vec<(Month, usize, usize)> {
        let mut obtained = [0usize; STUDY_MONTHS];
        let mut unique = [0usize; STUDY_MONTHS];
        let mut seen = HashSet::new();
        for c in &self.contracts {
            if c.class() == ContractClass::Phishing {
                obtained[c.month.0 as usize] += 1;
                if seen.insert(c.bytecode.clone()) {
                    unique[c.month.0 as usize] += 1;
                }
            }
        }
        Month::all()
            .map(|m| (m, obtained[m.0 as usize], unique[m.0 as usize]))
            .collect()
    }

    /// Total number of deployments.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// `true` if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }
}

/// Month-dependent mixture over phishing families: early corpus is dominated
/// by drainers/sweepers; airdrop claimers and counterfeit tokens grow over
/// the year (this drift is what the time-resistance study measures).
fn phishing_family_at(month: Month, rng: &mut StdRng) -> Family {
    let t = month.0 as f64 / 12.0;
    let weights = [
        (Family::ApprovalDrainer, (0.35 - 0.10 * t).max(0.05)),
        (Family::WalletSweeper, (0.30 - 0.15 * t).max(0.05)),
        (Family::FakeAirdropClaimer, 0.10 + 0.25 * t),
        (Family::CounterfeitToken, 0.15 + 0.10 * t),
        (Family::HoneypotVault, 0.10),
    ];
    weighted_pick(&weights, rng)
}

/// Static benign mixture (proxies are a large share, as on the real chain).
fn benign_family_at(_month: Month, rng: &mut StdRng) -> Family {
    let weights = [
        (Family::Erc20Token, 0.28),
        (Family::MinimalProxy, 0.15),
        (Family::Erc721Mint, 0.12),
        (Family::VestingWallet, 0.10),
        (Family::MultisigWallet, 0.10),
        (Family::StakingPool, 0.14),
        (Family::UtilityLibrary, 0.11),
    ];
    weighted_pick(&weights, rng)
}

fn weighted_pick(weights: &[(Family, f64)], rng: &mut StdRng) -> Family {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total);
    for &(family, w) in weights {
        if pick < w {
            return family;
        }
        pick -= w;
    }
    weights.last().expect("non-empty weights").0
}

/// Distributes `total` unique contracts over months following `shape`.
fn monthly_allocation(total: usize, shape: &[f64; STUDY_MONTHS]) -> Vec<usize> {
    let sum: f64 = shape.iter().sum();
    let mut alloc: Vec<usize> = shape
        .iter()
        .map(|w| ((w / sum) * total as f64).floor() as usize)
        .collect();
    let mut assigned: usize = alloc.iter().sum();
    let mut i = 0;
    while assigned < total {
        alloc[i % STUDY_MONTHS] += 1;
        assigned += 1;
        i += 1;
    }
    alloc
}

/// Generates a full corpus from a configuration.
///
/// # Examples
///
/// ```
/// use phishinghook_synth::corpus::{generate_corpus, CorpusConfig};
///
/// let corpus = generate_corpus(&CorpusConfig::small(7));
/// assert!(corpus.len() > 300); // clones inflate deployments
/// let unique = corpus.dedup();
/// assert!(unique.len() <= 300 + 10);
/// ```
pub fn generate_corpus(config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut contracts = Vec::new();

    // Unique phishing contracts, allocated over the monthly shape.
    let phishing_alloc = monthly_allocation(config.unique_phishing, &MONTHLY_PHISHING_SHAPE);
    for (mi, &count) in phishing_alloc.iter().enumerate() {
        let month = Month(mi as u8);
        for _ in 0..count {
            let family = phishing_family_at(month, &mut rng);
            let bytecode = generate_contract(family, month, &config.difficulty, &mut rng);
            let flagged = !rng.gen_bool(config.label_noise);
            push_with_clones(
                &mut contracts,
                bytecode,
                family,
                month,
                flagged,
                config.clone_factor,
                &mut rng,
            );
        }
    }

    // Unique benign contracts.
    let benign_shape: [f64; STUDY_MONTHS] = if config.benign_temporal_match {
        MONTHLY_PHISHING_SHAPE
    } else {
        [1.0; STUDY_MONTHS]
    };
    let benign_alloc = monthly_allocation(config.unique_benign, &benign_shape);
    for (mi, &count) in benign_alloc.iter().enumerate() {
        let month = Month(mi as u8);
        for _ in 0..count {
            let family = benign_family_at(month, &mut rng);
            let bytecode = generate_contract(family, month, &config.difficulty, &mut rng);
            let flagged = rng.gen_bool(config.label_noise);
            // Benign clones exist too (factories), but more modestly.
            push_with_clones(
                &mut contracts,
                bytecode,
                family,
                month,
                flagged,
                (config.clone_factor / 2.0).max(1.0),
                &mut rng,
            );
        }
    }

    contracts.sort_by_key(|c| c.month);
    Corpus { contracts }
}

/// Deploys `bytecode` once at `month` and re-deploys it a heavy-tailed
/// number of extra times in the same or later months.
fn push_with_clones(
    out: &mut Vec<SynthContract>,
    bytecode: Bytecode,
    family: Family,
    month: Month,
    flagged: bool,
    clone_factor: f64,
    rng: &mut StdRng,
) {
    out.push(SynthContract {
        bytecode: bytecode.clone(),
        family,
        month,
        flagged,
    });
    // Geometric-ish clone count with mean ≈ clone_factor − 1 extras.
    let p = 1.0 / clone_factor.max(1.0);
    let mut extras = 0usize;
    while extras < 60 && !rng.gen_bool(p) {
        extras += 1;
    }
    for _ in 0..extras {
        let lag = rng.gen_range(0..3u8);
        let clone_month = Month::new(month.0.saturating_add(lag));
        out.push(SynthContract {
            bytecode: bytecode.clone(),
            family,
            month: clone_month,
            flagged,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig::small(3);
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn dedup_shrinks_obtained_to_unique() {
        let corpus = generate_corpus(&CorpusConfig::small(5));
        let unique = corpus.dedup();
        assert!(
            unique.len() < corpus.len(),
            "clones should inflate deployments"
        );
        // Unique count matches the configured uniques (up to random hash
        // collisions in generated code, which do not occur at this scale).
        assert_eq!(unique.len(), 300);
    }

    #[test]
    fn clone_factor_matches_paper_ratio() {
        let cfg = CorpusConfig {
            unique_phishing: 400,
            unique_benign: 0,
            clone_factor: 5.05,
            ..CorpusConfig::small(11)
        };
        let corpus = generate_corpus(&cfg);
        let ratio = corpus.len() as f64 / 400.0;
        // 17,455 / 3,458 ≈ 5.05; allow generous sampling slack.
        assert!(ratio > 3.5 && ratio < 7.0, "ratio = {ratio}");
    }

    #[test]
    fn monthly_counts_cover_window_and_sum_up() {
        let corpus = generate_corpus(&CorpusConfig::small(13));
        let monthly = corpus.monthly_phishing_counts();
        assert_eq!(monthly.len(), STUDY_MONTHS);
        let unique_total: usize = monthly.iter().map(|(_, _, u)| u).sum();
        assert_eq!(unique_total, 150);
        let obtained_total: usize = monthly.iter().map(|(_, o, _)| o).sum();
        assert!(obtained_total >= unique_total);
    }

    #[test]
    fn label_noise_rate_is_respected() {
        let cfg = CorpusConfig {
            unique_phishing: 600,
            unique_benign: 600,
            label_noise: 0.05,
            clone_factor: 1.0,
            ..CorpusConfig::small(17)
        };
        let corpus = generate_corpus(&cfg);
        let unique = corpus.dedup();
        let wrong = unique
            .iter()
            .filter(|c| (c.class() == ContractClass::Phishing) != c.flagged)
            .count();
        let rate = wrong as f64 / unique.len() as f64;
        assert!(rate > 0.02 && rate < 0.09, "noise rate = {rate}");
    }

    #[test]
    fn allocation_is_exact() {
        let alloc = monthly_allocation(1000, &MONTHLY_PHISHING_SHAPE);
        assert_eq!(alloc.iter().sum::<usize>(), 1000);
        // Peak month gets the most.
        let peak = alloc.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(peak, 5); // March 2024
    }

    #[test]
    fn temporal_match_shifts_benign_volume() {
        let uniform = generate_corpus(&CorpusConfig {
            benign_temporal_match: false,
            unique_phishing: 0,
            unique_benign: 650,
            clone_factor: 1.0,
            ..CorpusConfig::small(23)
        });
        let matched = generate_corpus(&CorpusConfig {
            benign_temporal_match: true,
            unique_phishing: 0,
            unique_benign: 650,
            clone_factor: 1.0,
            ..CorpusConfig::small(23)
        });
        let count_in =
            |c: &Corpus, m: u8| c.contracts.iter().filter(|x| x.month.0 == m).count() as f64;
        // The March-2024 peak should hold noticeably more of the matched
        // corpus than of the uniform one.
        assert!(count_in(&matched, 5) > 1.5 * count_in(&uniform, 5));
    }
}
