//! Regenerates **Table II**: averaged Accuracy/F1/Precision/Recall for all
//! sixteen models under repeated stratified cross-validation.
//!
//! `--quick` runs 3-fold × 1 run on a small corpus; the default runs
//! 10-fold × 3 runs (the paper's protocol) at laptop scale. Results are
//! also written to `table2.json` for Table III / Fig. 4 to consume.

use phishinghook::prelude::*;
use phishinghook_bench::{banner, main_dataset, RunScale};

fn main() {
    let scale = RunScale::from_args();
    banner("Table II - averaged performance of the 16 models", scale);
    let dataset = main_dataset(scale, 0xD5);
    println!(
        "dataset: {} samples ({} phishing), {} folds x {} runs\n",
        dataset.len(),
        dataset.positives(),
        scale.folds(),
        scale.runs()
    );

    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>10}  category",
        "Model", "Accuracy(%)", "F1", "Precision", "Recall"
    );

    // One decode+featurize pass for the whole sixteen-model matrix: the
    // shared context is built once and every trial slices it by index.
    let ctx = EvalContext::new(&dataset, &scale.profile());
    let plan = trial_plan(&dataset, scale.folds(), scale.runs(), 0xD5);
    let mut all_results: Vec<(ModelKind, Vec<TrialOutcome>)> = Vec::new();
    for kind in ModelKind::ALL {
        let trials = cross_validate_on(&ctx, kind, &plan);
        let mean = Metrics::mean(&trials.iter().map(|t| t.metrics).collect::<Vec<_>>());
        println!(
            "{:<20} {:>12.2} {:>10.4} {:>10.4} {:>10.4}  {:?}",
            kind.name(),
            100.0 * mean.accuracy,
            mean.f1,
            mean.precision,
            mean.recall,
            kind.category()
        );
        all_results.push((kind, trials));
    }

    // Category averages, as §IV-D reports.
    println!();
    for cat in [
        ModelCategory::Histogram,
        ModelCategory::Language,
        ModelCategory::Vision,
        ModelCategory::Vulnerability,
    ] {
        let metrics: Vec<Metrics> = all_results
            .iter()
            .filter(|(k, _)| k.category() == cat)
            .flat_map(|(_, trials)| trials.iter().map(|t| t.metrics))
            .collect();
        let mean = Metrics::mean(&metrics);
        println!(
            "{:?} average: accuracy {:.2}%  F1 {:.4}",
            cat,
            100.0 * mean.accuracy,
            mean.f1
        );
    }

    let json = phishinghook_bench::json::trials_to_json(&all_results);
    std::fs::write("table2.json", json).expect("write table2.json");
    println!("\ntrial-level results written to table2.json (consumed by table3/fig4)");
}
