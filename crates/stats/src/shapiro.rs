//! Shapiro–Wilk normality test (Royston's AS R94 algorithm).
//!
//! The paper's post hoc analysis first tests each model–metric distribution
//! for normality; it is the gate that selects the non-parametric
//! Kruskal–Wallis branch. The statistic is
//! `W = (Σ aᵢ x₍ᵢ₎)² / Σ (xᵢ − x̄)²` with Royston's polynomial-smoothed
//! weights `aᵢ`, and the p-value comes from his normalizing transformation.

use crate::special::{normal_quantile, normal_sf};
use std::error::Error;
use std::fmt;

/// Result of a Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilk {
    /// The W statistic in `(0, 1]`; values near 1 are consistent with
    /// normality.
    pub w: f64,
    /// Two-... one-sided p-value for the null hypothesis of normality
    /// (small p rejects normality).
    pub p_value: f64,
}

/// Error produced by [`shapiro_wilk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapiroWilkError {
    /// Fewer than 3 observations.
    TooFewSamples {
        /// Number of observations provided.
        n: usize,
    },
    /// More than 5000 observations — outside the validated range of AS R94.
    TooManySamples {
        /// Number of observations provided.
        n: usize,
    },
    /// All observations identical: W is undefined.
    ZeroVariance,
    /// Input contained NaN.
    NotFinite,
}

impl fmt::Display for ShapiroWilkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapiroWilkError::TooFewSamples { n } => {
                write!(f, "shapiro-wilk requires at least 3 samples, got {n}")
            }
            ShapiroWilkError::TooManySamples { n } => {
                write!(f, "shapiro-wilk is validated up to 5000 samples, got {n}")
            }
            ShapiroWilkError::ZeroVariance => write!(f, "all observations are identical"),
            ShapiroWilkError::NotFinite => write!(f, "input contains non-finite values"),
        }
    }
}

impl Error for ShapiroWilkError {}

/// Runs the Shapiro–Wilk test on a sample.
///
/// # Errors
///
/// See [`ShapiroWilkError`]: requires `3 <= n <= 5000`, finite input and
/// non-zero variance.
///
/// # Examples
///
/// ```
/// use phishinghook_stats::shapiro::shapiro_wilk;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Royston's classic example (PRB weights): strongly non-normal.
/// let x = [148.0, 154.0, 158.0, 160.0, 161.0, 162.0, 166.0, 170.0, 182.0, 195.0, 236.0];
/// let result = shapiro_wilk(&x)?;
/// assert!(result.p_value < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn shapiro_wilk(sample: &[f64]) -> Result<ShapiroWilk, ShapiroWilkError> {
    let n = sample.len();
    if n < 3 {
        return Err(ShapiroWilkError::TooFewSamples { n });
    }
    if n > 5000 {
        return Err(ShapiroWilkError::TooManySamples { n });
    }
    if sample.iter().any(|v| !v.is_finite()) {
        return Err(ShapiroWilkError::NotFinite);
    }

    let mut x: Vec<f64> = sample.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    if x[n - 1] == x[0] {
        return Err(ShapiroWilkError::ZeroVariance);
    }

    let nf = n as f64;

    // Expected normal order statistics (Blom scores).
    let m: Vec<f64> = (1..=n)
        .map(|i| normal_quantile((i as f64 - 0.375) / (nf + 0.25)))
        .collect();
    let ssumm2: f64 = m.iter().map(|v| v * v).sum();

    // Royston's polynomial-corrected weights.
    let mut a = vec![0.0; n];
    if n == 3 {
        a[0] = -std::f64::consts::FRAC_1_SQRT_2;
        a[2] = std::f64::consts::FRAC_1_SQRT_2;
    } else {
        let rsn = 1.0 / nf.sqrt();
        let c_n = m[n - 1] / ssumm2.sqrt();
        let a_n = poly(
            &[c_n, 0.221157, -0.147981, -2.071190, 4.434685, -2.706056],
            rsn,
        );
        if n > 5 {
            let c_n1 = m[n - 2] / ssumm2.sqrt();
            let a_n1 = poly(
                &[c_n1, 0.042981, -0.293762, -1.752461, 5.682633, -3.582633],
                rsn,
            );
            let phi = (ssumm2 - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
                / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
            a[n - 1] = a_n;
            a[n - 2] = a_n1;
            a[0] = -a_n;
            a[1] = -a_n1;
            let sqrt_phi = phi.sqrt();
            for i in 2..n - 2 {
                a[i] = m[i] / sqrt_phi;
            }
        } else {
            let phi = (ssumm2 - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * a_n * a_n);
            a[n - 1] = a_n;
            a[0] = -a_n;
            let sqrt_phi = phi.sqrt();
            for i in 1..n - 1 {
                a[i] = m[i] / sqrt_phi;
            }
        }
    }

    // W statistic.
    let mean = x.iter().sum::<f64>() / nf;
    let numerator: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>();
    let denominator: f64 = x.iter().map(|xi| (xi - mean) * (xi - mean)).sum();
    let w = (numerator * numerator / denominator).min(1.0);

    // Normalizing transformation for the p-value.
    let p_value = if n == 3 {
        let p = 6.0 / std::f64::consts::PI * ((w.sqrt()).asin() - (0.75f64.sqrt()).asin());
        p.clamp(0.0, 1.0)
    } else if n <= 11 {
        let gamma = -2.273 + 0.459 * nf;
        let y = -(gamma - (1.0 - w).ln()).ln();
        let mu = poly(&[0.5440, -0.39978, 0.025054, -0.0006714], nf);
        let sigma = poly(&[1.3822, -0.77857, 0.062767, -0.0020322], nf).exp();
        normal_sf((y - mu) / sigma)
    } else {
        let u = nf.ln();
        let y = (1.0 - w).ln();
        let mu = poly(&[-1.5861, -0.31082, -0.083751, 0.0038915], u);
        let sigma = poly(&[-0.4803, -0.082676, 0.0030302], u).exp();
        normal_sf((y - mu) / sigma)
    };

    Ok(ShapiroWilk { w, p_value })
}

/// Evaluates `c₀ + c₁x + c₂x² + ...`.
fn poly(coefficients: &[f64], x: f64) -> f64 {
    coefficients.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn royston_prb_weights_example() {
        // R: shapiro.test(c(148,154,158,160,161,162,166,170,182,195,236))
        //    W = 0.79, p-value = 0.0067 (approximately)
        let x = [
            148.0, 154.0, 158.0, 160.0, 161.0, 162.0, 166.0, 170.0, 182.0, 195.0, 236.0,
        ];
        let r = shapiro_wilk(&x).unwrap();
        assert!((r.w - 0.79).abs() < 0.01, "W = {}", r.w);
        assert!(r.p_value > 0.003 && r.p_value < 0.012, "p = {}", r.p_value);
    }

    #[test]
    fn near_normal_grid_has_high_w() {
        // Normal quantiles are, by construction, as normal as a sample gets.
        let x: Vec<f64> = (1..=50)
            .map(|i| crate::special::normal_quantile(i as f64 / 51.0))
            .collect();
        let r = shapiro_wilk(&x).unwrap();
        assert!(r.w > 0.98, "W = {}", r.w);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn exponential_tail_rejected() {
        // Strongly skewed data: reject normality at any reasonable n.
        let x: Vec<f64> = (1..=40).map(|i| (1.06f64).powi(i * i / 10)).collect();
        let r = shapiro_wilk(&x).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn errors_for_degenerate_input() {
        assert_eq!(
            shapiro_wilk(&[1.0, 2.0]),
            Err(ShapiroWilkError::TooFewSamples { n: 2 })
        );
        assert_eq!(
            shapiro_wilk(&[5.0; 10]),
            Err(ShapiroWilkError::ZeroVariance)
        );
        assert_eq!(
            shapiro_wilk(&[1.0, f64::NAN, 2.0]),
            Err(ShapiroWilkError::NotFinite)
        );
        let big = vec![0.0; 5001];
        assert_eq!(
            shapiro_wilk(&big),
            Err(ShapiroWilkError::TooManySamples { n: 5001 })
        );
    }

    #[test]
    fn n3_special_case() {
        let r = shapiro_wilk(&[1.0, 2.0, 10.0]).unwrap();
        assert!(r.w > 0.0 && r.w <= 1.0);
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn scale_and_shift_invariance() {
        let x = [3.1, 0.2, 5.5, 2.2, 8.9, 1.0, 4.4, 6.6, 2.8, 0.9, 7.7, 3.3];
        let y: Vec<f64> = x.iter().map(|v| 100.0 + 3.0 * v).collect();
        let rx = shapiro_wilk(&x).unwrap();
        let ry = shapiro_wilk(&y).unwrap();
        assert!((rx.w - ry.w).abs() < 1e-12);
        assert!((rx.p_value - ry.p_value).abs() < 1e-12);
    }
}
