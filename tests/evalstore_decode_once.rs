//! Acceptance test for the decode-once evaluation engine: a full
//! `EvalProfile::quick()` cross-validation — context build included —
//! performs exactly one decode per contract, total.
//!
//! `decode_count()` is process-global, so exact-delta assertions are only
//! race-free when nothing else in the process builds caches concurrently.
//! This file deliberately contains exactly one test (the same convention as
//! `crates/evm/tests/decode_counter.rs`).

use phishinghook::prelude::*;
use phishinghook_evm::decode_count;

#[test]
fn full_quick_cross_validation_is_one_decode_pass() {
    let corpus = generate_corpus(&CorpusConfig::small(91));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    assert!(
        dataset.len() > 50,
        "corpus too small for a meaningful check"
    );

    let before = decode_count();
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    let after_context = decode_count();
    assert_eq!(
        after_context - before,
        dataset.len() as u64,
        "context construction must decode once per contract"
    );

    // Two full CV protocols (3 folds × 2 runs each) over the shared
    // context: every trial gathers store slices, so the decode counter must
    // not move at all.
    let plan = trial_plan(&dataset, 3, 2, 5);
    let knn = cross_validate_on(&ctx, ModelKind::Knn, &plan);
    let lr = cross_validate_on(&ctx, ModelKind::LogisticRegression, &plan);
    assert_eq!(knn.len(), 6);
    assert_eq!(lr.len(), 6);
    assert!(knn
        .iter()
        .all(|t| (0.0..=1.0).contains(&t.metrics.accuracy)));
    assert_eq!(
        decode_count(),
        after_context,
        "cross-validation trials must never re-disassemble"
    );

    // End to end: decodes across context + both CV runs == dataset size.
    assert_eq!(
        decode_count() - before,
        dataset.len() as u64,
        "one decode per contract across the whole evaluation"
    );
}
