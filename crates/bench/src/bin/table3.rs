//! Regenerates **Table III**: Kruskal–Wallis omnibus tests per metric over
//! the 13 post-hoc models, with Holm-adjusted p-values.
//!
//! Reads `table2.json` if present (produced by the `table2` binary);
//! otherwise re-runs a quick evaluation.

use phishinghook::prelude::*;
use phishinghook_bench::{banner, fmt_p, main_dataset, RunScale};

fn load_or_run(scale: RunScale) -> Vec<(ModelKind, Vec<TrialOutcome>)> {
    if let Ok(json) = std::fs::read_to_string("table2.json") {
        if let Some(results) = phishinghook_bench::json::trials_from_json(&json) {
            println!("(loaded trials from table2.json)\n");
            return results;
        }
    }
    println!("(table2.json not found - running a fresh evaluation)\n");
    let dataset = main_dataset(scale, 0xD5);
    let ctx = EvalContext::new(&dataset, &scale.profile());
    let plan = trial_plan(&dataset, scale.folds(), scale.runs(), 0xD5);
    evaluate_models(&ctx, &ModelKind::ALL, &plan)
}

fn main() {
    let scale = RunScale::from_args();
    banner(
        "Table III - Kruskal-Wallis tests on the performance metrics",
        scale,
    );
    let all = load_or_run(scale);
    // §IV-E: exclude ESCORT and the beta variants.
    let keep = ModelKind::posthoc_set();
    let results: Vec<(ModelKind, Vec<TrialOutcome>)> =
        all.into_iter().filter(|(k, _)| keep.contains(k)).collect();
    let n_trials: usize = results.iter().map(|(_, t)| t.len()).sum();
    println!(
        "{} models x {} trials each = {} observations per metric\n",
        results.len(),
        results[0].1.len(),
        n_trials
    );

    let report = posthoc_analysis(&results);
    println!(
        "normality: Shapiro-Wilk rejected for {} of {} model-metric pairs (paper: 20 of 52)\n",
        report.normality_violations.len(),
        results.len() * 4
    );
    println!("{:<12} {:>10} {:>12} {:>12}", "Metric", "H", "p", "p_adj");
    for row in &report.omnibus {
        println!(
            "{:<12} {:>10.2} {:>12} {:>12}  {}",
            row.metric,
            row.test.h,
            fmt_p(row.test.p_value),
            fmt_p(row.p_adjusted),
            if row.p_adjusted < 0.05 {
                "significant"
            } else {
                "ns"
            }
        );
    }
}
