//! The simulated chain state: an append-only log of contract deployments.

use crate::address::Address;
use phishinghook_evm::Bytecode;
use phishinghook_synth::{Corpus, Family, Month};
use std::collections::HashMap;

/// One contract-creation record.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentRecord {
    /// Account address the contract was deployed at.
    pub address: Address,
    /// Deployed (runtime) bytecode.
    pub bytecode: Bytecode,
    /// Deployment month.
    pub month: Month,
    /// Ground-truth family (never exposed through the public services; kept
    /// for evaluation only).
    pub family: Family,
    /// Whether the simulated explorer shows a `Phish/Hack` flag for this
    /// address.
    pub flagged: bool,
}

/// The simulated Ethereum chain: all deployments, indexed by address.
///
/// Constructed from a synthetic [`Corpus`]; each corpus entry (clones
/// included) becomes a distinct on-chain account, exactly like the
/// bit-identical proxy deployments on the real chain.
#[derive(Debug, Clone, Default)]
pub struct SimulatedChain {
    records: Vec<DeploymentRecord>,
    by_address: HashMap<Address, usize>,
}

impl SimulatedChain {
    /// Builds a chain from a synthetic corpus, assigning deterministic
    /// addresses in deployment order.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let mut chain = SimulatedChain::default();
        for (nonce, contract) in corpus.contracts.iter().enumerate() {
            chain.deploy(DeploymentRecord {
                address: Address::derived(nonce as u64),
                bytecode: contract.bytecode.clone(),
                month: contract.month,
                family: contract.family,
                flagged: contract.flagged,
            });
        }
        chain
    }

    /// Appends one deployment.
    ///
    /// # Panics
    ///
    /// Panics if the address is already taken (the simulation derives unique
    /// addresses, so a collision is a bug).
    pub fn deploy(&mut self, record: DeploymentRecord) {
        let previous = self.by_address.insert(record.address, self.records.len());
        assert!(
            previous.is_none(),
            "address collision at {}",
            record.address
        );
        self.records.push(record);
    }

    /// Looks up a deployment by address.
    pub fn record(&self, address: &Address) -> Option<&DeploymentRecord> {
        self.by_address.get(address).map(|&i| &self.records[i])
    }

    /// All deployments in deployment order.
    pub fn records(&self) -> &[DeploymentRecord] {
        &self.records
    }

    /// Number of deployed contracts.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing has been deployed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    #[test]
    fn from_corpus_preserves_every_deployment() {
        let corpus = generate_corpus(&CorpusConfig::small(2));
        let chain = SimulatedChain::from_corpus(&corpus);
        assert_eq!(chain.len(), corpus.len());
    }

    #[test]
    fn record_lookup_round_trips() {
        let corpus = generate_corpus(&CorpusConfig::small(4));
        let chain = SimulatedChain::from_corpus(&corpus);
        for r in chain.records() {
            let found = chain.record(&r.address).expect("present");
            assert_eq!(found.bytecode, r.bytecode);
        }
    }

    #[test]
    fn unknown_address_is_none() {
        let chain = SimulatedChain::default();
        assert!(chain.record(&Address::from_bytes([9; 20])).is_none());
    }

    #[test]
    #[should_panic(expected = "address collision")]
    fn double_deploy_panics() {
        let mut chain = SimulatedChain::default();
        let record = DeploymentRecord {
            address: Address::from_bytes([1; 20]),
            bytecode: Bytecode::new(vec![0x00]),
            month: Month(0),
            family: Family::Erc20Token,
            flagged: false,
        };
        chain.deploy(record.clone());
        chain.deploy(record);
    }
}
