//! Synthetic Ethereum contract corpus generator.
//!
//! The paper's dataset is built from real chain data (BigQuery + Etherscan
//! `Phish/Hack` flags), which is unavailable offline; this crate provides the
//! substitute described in `DESIGN.md` §4: a generative model of benign and
//! phishing bytecode families that preserves the statistical properties the
//! detection models key on —
//!
//! * a shared solc-like skeleton (prologue, `PUSH4` dispatcher, CBOR
//!   metadata trailer) so the classes overlap heavily in opcode space
//!   (Fig. 3's regime);
//! * family-specific *snippet mixes* (drainer idioms vs SafeMath/OpenZeppelin
//!   idioms) so the classes remain separable at roughly the paper's ≈90%;
//! * bit-identical clone deployments (EIP-1167 minimal proxies, factories)
//!   reproducing the 17,455 → 3,458 deduplication of Fig. 2;
//! * a monthly deployment timeline with family drift, enabling the
//!   time-resistance study (Fig. 8).
//!
//! # Examples
//!
//! ```
//! use phishinghook_synth::{generate_corpus, CorpusConfig};
//!
//! let corpus = generate_corpus(&CorpusConfig::small(42));
//! let unique = corpus.dedup();
//! assert!(unique.len() < corpus.len());
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod corpus;
pub mod families;
pub mod month;
pub mod snippets;

pub use corpus::{generate_corpus, Corpus, CorpusConfig, SynthContract};
pub use families::{generate_contract, minimal_proxy, ContractClass, Difficulty, Family};
pub use month::{Month, STUDY_MONTHS};

#[cfg(test)]
mod proptests {
    use super::*;
    use phishinghook_evm::disasm::disassemble;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]

        /// Any family/seed/month combination yields decodable, non-truncated
        /// bytecode with a plausible size.
        #[test]
        fn generated_code_is_wellformed(
            seed in 0u64..10_000,
            family_idx in 0usize..Family::ALL.len(),
            month in 0u8..13,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let code = generate_contract(
                Family::ALL[family_idx],
                Month(month),
                &Difficulty::default(),
                &mut rng,
            );
            prop_assert!(!code.is_empty());
            prop_assert!(code.len() < 16_384, "unreasonably large: {}", code.len());
            let instrs = disassemble(code.as_bytes());
            // The CBOR trailer is data, not code, so truncation can only be
            // reported inside the final data region; decoding must not panic
            // and instruction sizes must tile the blob.
            let total: usize = instrs.iter().map(|i| i.size()).sum();
            prop_assert_eq!(total, code.len());
        }
    }
}
