//! Score-drift statistics: rolling calibration windows over a replayed
//! chain and the typed signal that trips a retrain.
//!
//! The paper's time-resistance study (§V, Fig. 8) measures offline how a
//! model trained on the first months decays as the chain moves past its
//! training window. This module turns that one-shot measurement into an
//! always-on signal: a [`DriftWatcher`] consumes `(probability, label)`
//! pairs in chain order against a *fixed* artifact, maintains a rolling
//! [Brier score](https://en.wikipedia.org/wiki/Brier_score) and accuracy
//! window, captures the first full window as its calibration baseline,
//! and emits a [`DriftSignal`] the moment the rolling Brier degrades past
//! `baseline + margin`. The ingestion pipeline reacts by retraining on a
//! sliding window and re-publishing the artifact; [`DriftWatcher::rearm`]
//! then restarts the watch against the fresh model.

use phishinghook_synth::Month;
use std::collections::VecDeque;

/// Probability threshold separating predicted-benign from
/// predicted-phishing in the rolling accuracy (the serving threshold).
const THRESHOLD: f32 = crate::detector::PHISHING_THRESHOLD;

/// Fixed-capacity rolling window of `(probability, label)` pairs with
/// calibration statistics.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    capacity: usize,
    samples: VecDeque<(f32, u8)>,
}

impl RollingWindow {
    /// An empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window capacity must be positive");
        RollingWindow {
            capacity,
            samples: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends one scored sample, evicting the oldest when full.
    pub fn push(&mut self, prob: f32, label: u8) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((prob, label));
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum samples held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` once `capacity` samples are held.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Mean squared calibration error `mean((p - y)²)` over the window —
    /// lower is better-calibrated. `0.0` on an empty window.
    pub fn brier(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|&(p, y)| {
                let d = p as f64 - y as f64;
                d * d
            })
            .sum();
        sum / self.samples.len() as f64
    }

    /// Fraction of window samples whose thresholded verdict matches the
    /// label. `1.0` on an empty window.
    pub fn accuracy(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        let correct = self
            .samples
            .iter()
            .filter(|&&(p, y)| (p >= THRESHOLD) == (y == 1))
            .count();
        correct as f64 / self.samples.len() as f64
    }
}

/// Knobs of a [`DriftWatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Rolling-window size in samples; the first full window becomes the
    /// calibration baseline.
    pub window: usize,
    /// How far the rolling Brier score may degrade past the baseline
    /// before a [`DriftSignal`] fires.
    pub brier_margin: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 128,
            brier_margin: 0.05,
        }
    }
}

/// Typed drift event: the rolling calibration window degraded past the
/// configured margin over its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSignal {
    /// Samples observed (across the watcher's lifetime) when the signal
    /// fired.
    pub position: usize,
    /// Deployment month of the sample that tripped the signal.
    pub month: Month,
    /// Rolling Brier score at the trip point.
    pub window_brier: f64,
    /// Baseline Brier score (first full window after the last rearm).
    pub baseline_brier: f64,
    /// Rolling thresholded accuracy at the trip point.
    pub window_accuracy: f64,
    /// The margin that was exceeded.
    pub brier_margin: f64,
}

/// Watches a stream of scored samples for calibration drift against a
/// fixed model.
///
/// Life cycle: observe → (window fills) baseline captured → observe →
/// Brier exceeds `baseline + margin` → one [`DriftSignal`] → latched (no
/// further signals) until [`DriftWatcher::rearm`] — the caller retrains,
/// hot-swaps the artifact, and rearms the watch against the new model.
#[derive(Debug, Clone)]
pub struct DriftWatcher {
    config: DriftConfig,
    window: RollingWindow,
    baseline_brier: Option<f64>,
    observed: usize,
    latched: bool,
}

impl DriftWatcher {
    /// A fresh watcher; no baseline until the first window fills.
    ///
    /// # Panics
    ///
    /// Panics if `config.window == 0`.
    pub fn new(config: DriftConfig) -> Self {
        DriftWatcher {
            window: RollingWindow::new(config.window),
            config,
            baseline_brier: None,
            observed: 0,
            latched: false,
        }
    }

    /// Feeds one scored sample in chain order. Returns a [`DriftSignal`]
    /// at most once per arm cycle — the first time the rolling Brier
    /// exceeds `baseline + margin` on a full window.
    pub fn observe(&mut self, prob: f32, label: u8, month: Month) -> Option<DriftSignal> {
        self.observed += 1;
        self.window.push(prob, label);
        if self.latched || !self.window.is_full() {
            return None;
        }
        let brier = self.window.brier();
        match self.baseline_brier {
            None => {
                self.baseline_brier = Some(brier);
                None
            }
            Some(baseline) if brier > baseline + self.config.brier_margin => {
                self.latched = true;
                Some(DriftSignal {
                    position: self.observed,
                    month,
                    window_brier: brier,
                    baseline_brier: baseline,
                    window_accuracy: self.window.accuracy(),
                    brier_margin: self.config.brier_margin,
                })
            }
            Some(_) => None,
        }
    }

    /// Restarts the watch after a retrain: clears the window, drops the
    /// baseline (the next full window of *new-model* scores becomes the
    /// fresh baseline) and unlatches the signal.
    pub fn rearm(&mut self) {
        self.window = RollingWindow::new(self.config.window);
        self.baseline_brier = None;
        self.latched = false;
    }

    /// Samples observed across the watcher's lifetime.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// The active calibration baseline, once the first window has filled.
    pub fn baseline_brier(&self) -> Option<f64> {
        self.baseline_brier
    }

    /// `true` after a signal has fired and before [`DriftWatcher::rearm`].
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// The live rolling window.
    pub fn window(&self) -> &RollingWindow {
        &self.window
    }

    /// The watcher's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: usize, margin: f64) -> DriftConfig {
        DriftConfig {
            window,
            brier_margin: margin,
        }
    }

    #[test]
    fn rolling_window_statistics() {
        let mut w = RollingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.brier(), 0.0);
        assert_eq!(w.accuracy(), 1.0);
        w.push(1.0, 1);
        w.push(0.0, 0);
        assert_eq!(w.brier(), 0.0);
        assert_eq!(w.accuracy(), 1.0);
        w.push(0.0, 1); // confidently wrong
        assert!(w.is_full());
        assert!((w.brier() - 1.0 / 3.0).abs() < 1e-12);
        assert!((w.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        // Eviction: pushing a fourth sample drops the first.
        w.push(1.0, 1);
        assert_eq!(w.len(), 3);
        assert!((w.brier() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_is_the_first_full_window() {
        let mut watcher = DriftWatcher::new(config(4, 0.1));
        for _ in 0..3 {
            assert!(watcher.observe(0.9, 1, Month(0)).is_none());
            assert!(watcher.baseline_brier().is_none());
        }
        assert!(watcher.observe(0.9, 1, Month(0)).is_none());
        let base = watcher.baseline_brier().unwrap();
        assert!((base - 0.01).abs() < 1e-6);
    }

    #[test]
    fn degradation_past_margin_fires_once_until_rearmed() {
        let mut watcher = DriftWatcher::new(config(4, 0.1));
        // Calibrated phase: baseline ≈ 0.
        for _ in 0..4 {
            assert!(watcher.observe(1.0, 1, Month(0)).is_none());
        }
        // Distribution shift: the fixed model scores true phishing low.
        let mut signal = None;
        for i in 0..8 {
            if let Some(s) = watcher.observe(0.0, 1, Month(6)) {
                signal = Some((i, s));
                break;
            }
        }
        let (_, s) = signal.expect("drift must fire");
        assert_eq!(s.month, Month(6));
        assert!(s.window_brier > s.baseline_brier + s.brier_margin);
        assert!(s.window_accuracy < 1.0);
        assert!(watcher.is_latched());
        // Latched: no repeat signals.
        for _ in 0..8 {
            assert!(watcher.observe(0.0, 1, Month(6)).is_none());
        }
        // Rearm: fresh baseline from the new model's scores, can fire again.
        watcher.rearm();
        assert!(watcher.baseline_brier().is_none());
        for _ in 0..4 {
            assert!(watcher.observe(1.0, 1, Month(7)).is_none());
        }
        assert!(watcher.baseline_brier().is_some());
        let mut refired = false;
        for _ in 0..8 {
            if watcher.observe(0.0, 1, Month(8)).is_some() {
                refired = true;
                break;
            }
        }
        assert!(refired);
    }

    #[test]
    fn well_calibrated_stream_never_fires() {
        let mut watcher = DriftWatcher::new(config(8, 0.05));
        for i in 0..256 {
            let label = (i % 2) as u8;
            let prob = if label == 1 { 0.93 } else { 0.04 };
            assert!(watcher.observe(prob, label, Month(1)).is_none());
        }
        assert!(!watcher.is_latched());
        assert_eq!(watcher.observed(), 256);
    }
}
