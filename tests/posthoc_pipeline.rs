//! Integration of the statistics crate with the MEM output shapes: the
//! PAM pipeline on realistic trial structures, plus the scalability post hoc
//! (Friedman → Wilcoxon → CDD → Cliff's δ).

use phishinghook::prelude::*;
use phishinghook_stats::cliffs::cliffs_delta;
use phishinghook_stats::critical_difference;

#[test]
fn pam_structure_matches_the_paper() {
    let corpus = generate_corpus(&CorpusConfig::small(611));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let profile = EvalProfile::quick();

    // Three models × 6 trials (2 runs of 3-fold CV) — a scaled-down §IV-E,
    // all sharing one decode+featurize pass through the EvalContext.
    let ctx = EvalContext::new(&dataset, &profile);
    let plan = trial_plan(&dataset, 3, 2, 3);
    let results = evaluate_models(
        &ctx,
        &[
            ModelKind::RandomForest,
            ModelKind::Knn,
            ModelKind::LogisticRegression,
        ],
        &plan,
    );
    let report = posthoc_analysis(&results);

    // Table III shape: one row per metric, Holm-adjusted p monotone vs raw.
    assert_eq!(report.omnibus.len(), 4);
    for row in &report.omnibus {
        assert!(row.p_adjusted >= row.test.p_value - 1e-12);
    }
    // Fig. 4 shape: C(3,2) pairs per metric, p-values in range.
    for dunn in &report.dunn {
        assert_eq!(dunn.pairs.len(), 3);
        for p in &dunn.pairs {
            assert!((0.0..=1.0).contains(&p.p_adjusted));
        }
    }
    // Breakdown fractions are valid probabilities.
    for b in &report.breakdown {
        for v in [b.overall, b.same_category, b.cross_category] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

#[test]
fn scalability_posthoc_pipeline() {
    // The Fig. 6 pipeline over a synthetic metric table: Friedman + pairwise
    // Wilcoxon + cliques, then Cliff's delta as the effect size.
    let blocks: Vec<Vec<f64>> = (0..12)
        .map(|b| {
            let jitter = (b % 4) as f64 * 0.002;
            vec![0.93 + jitter, 0.80 + 2.0 * jitter, 0.86 - jitter]
        })
        .collect();
    let cd = critical_difference(&blocks, 0.05).expect("valid table");
    assert_eq!(cd.ranking()[0], 0, "model 0 dominates and must rank first");

    let a: Vec<f64> = blocks.iter().map(|r| r[0]).collect();
    let b: Vec<f64> = blocks.iter().map(|r| r[1]).collect();
    let delta = cliffs_delta(&a, &b);
    assert!(
        delta > 0.9,
        "complete dominance should give delta near 1, got {delta}"
    );
}

#[test]
fn aut_matches_hand_computation_on_pipeline_output() {
    use phishinghook_stats::area_under_time;
    let series = [0.9, 0.8, 0.85, 0.7];
    let want = ((0.9 + 0.8) / 2.0 + (0.8 + 0.85) / 2.0 + (0.85 + 0.7) / 2.0) / 3.0;
    assert!((area_under_time(&series) - want).abs() < 1e-12);
}
