//! Criterion bench: every feature encoder over a fixed contract batch —
//! the preprocessing side of the pipeline costs.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook_evm::{Bytecode, DisasmCache};
use phishinghook_features::{
    BigramEncoder, EscortEmbedder, FreqImageEncoder, HistogramEncoder, OpcodeTokenizer,
    R2d2Encoder, SequenceVariant,
};
use phishinghook_synth::{generate_contract, Difficulty, Family, Month};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn contracts(n: usize) -> Vec<Bytecode> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(3),
                &Difficulty::default(),
                &mut rng,
            )
        })
        .collect()
}

fn bench_encoders(c: &mut Criterion) {
    // Shared single-pass caches: every encoder reads the same decoded
    // streams, as in the MEM pipeline.
    let codes = DisasmCache::build_batch(&contracts(32));
    let mut group = c.benchmark_group("features");

    group.bench_function("histogram_fit_encode", |b| {
        b.iter(|| {
            let enc = HistogramEncoder::fit(&codes);
            enc.encode_batch(&codes).len()
        })
    });

    let r2d2 = R2d2Encoder::new(32);
    group.bench_function("r2d2_images", |b| {
        b.iter(|| codes.iter().map(|c| r2d2.encode(c).len()).sum::<usize>())
    });

    let freq = FreqImageEncoder::fit(&codes, 32);
    group.bench_function("freq_images", |b| {
        b.iter(|| codes.iter().map(|c| freq.encode(c).len()).sum::<usize>())
    });

    let bigram = BigramEncoder::fit(&codes, 2048, 48);
    group.bench_function("scsguard_bigrams", |b| {
        b.iter(|| codes.iter().map(|c| bigram.encode(c).len()).sum::<usize>())
    });

    let tok = OpcodeTokenizer::new(64);
    group.bench_function("gpt2_tokens_sliding", |b| {
        b.iter(|| {
            codes
                .iter()
                .map(|c| tok.encode(c, SequenceVariant::SlidingWindow).len())
                .sum::<usize>()
        })
    });

    let escort = EscortEmbedder::new(128);
    group.bench_function("escort_embedding", |b| {
        b.iter(|| codes.iter().map(|c| escort.encode(c).len()).sum::<usize>())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoders
}
criterion_main!(benches);
