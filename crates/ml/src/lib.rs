//! Classical machine learning from scratch: everything the paper's
//! Histogram Similarity Classifiers (HSC) need.
//!
//! The paper feeds raw opcode histograms to seven scikit-learn-family
//! classifiers; this crate re-implements each one:
//!
//! * [`forest::RandomForest`] — bagged CART ensemble (the paper's overall
//!   winner, 93.63% accuracy);
//! * [`knn::KnnClassifier`] — brute-force k-nearest-neighbours;
//! * [`linear::LogisticRegression`] and [`linear::LinearSvm`] — linear
//!   models trained by gradient descent (hinge loss for the SVM);
//! * [`gbdt::XgbClassifier`] — exact-greedy second-order gradient boosting
//!   (XGBoost style);
//! * [`gbdt::LgbmClassifier`] — histogram-binned, leaf-wise gradient
//!   boosting (LightGBM style);
//! * [`gbdt::CatBoostClassifier`] — oblivious-tree (symmetric) gradient
//!   boosting (CatBoost style);
//! * [`shap`] — exact TreeSHAP attributions for the tree ensembles
//!   (Fig. 9).
//!
//! All models implement the [`Classifier`] trait: `fit` on a feature
//! [`Matrix`](phishinghook_linalg::Matrix) with `0/1` labels, then
//! `predict_proba`/`predict`.
//!
//! The crate also hosts [`calibrate`] — hand-rolled Platt/isotonic
//! probability calibration, the piece that makes heterogeneous model
//! scores threshold-comparable in the serving cascade.

#![warn(missing_docs)]

pub mod calibrate;
pub mod classifier;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod linear;
pub mod shap;
pub mod tree;

pub use calibrate::{CalibrationMethod, Calibrator, IsotonicRegression, PlattScaling};
pub use classifier::Classifier;
pub use forest::RandomForest;
pub use gbdt::{CatBoostClassifier, LgbmClassifier, XgbClassifier};
pub use knn::KnnClassifier;
pub use linear::{LinearSvm, LogisticRegression};
pub use shap::{forest_shap, tree_shap};
pub use tree::DecisionTree;
