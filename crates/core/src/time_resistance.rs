//! The time-resistance analysis (§IV-G, Fig. 8): TESSERACT-style temporal
//! evaluation. Models train on contracts deployed October 2023 – January
//! 2024 and are tested on nine monthly test sets (February – October 2024);
//! robustness is summarized by the Area Under Time of the phishing-class F1.

use crate::dataset::Dataset;
use crate::evalstore::EvalContext;
use crate::mem::{evaluate_trial, EvalProfile, ModelKind};
use crate::metrics::Metrics;
use crate::par::parallel_map;
use phishinghook_stats::aut::area_under_time;
use phishinghook_synth::Month;

/// Per-month result of one model in the temporal study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthlyResult {
    /// Test month.
    pub month: Month,
    /// 1-based test period (1 = February 2024).
    pub period: usize,
    /// Metrics on that month's test set.
    pub metrics: Metrics,
}

/// Full time-resistance result for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeResistance {
    /// Model evaluated.
    pub model: ModelKind,
    /// One entry per test period, in order.
    pub monthly: Vec<MonthlyResult>,
    /// Area Under Time of the phishing-class F1 across the periods.
    pub aut_f1: f64,
}

/// Runs the temporal experiment for one model.
///
/// The dataset must carry per-month deployment information (build it with
/// `benign_temporal_match = true`, as the paper's second 7,000-sample corpus
/// does). Months whose test set is degenerate (no samples) are skipped.
///
/// # Panics
///
/// Panics if the training window is empty or single-class.
pub fn run_time_resistance(
    model: ModelKind,
    data: &Dataset,
    profile: &EvalProfile,
    seed: u64,
) -> TimeResistance {
    // Fit the encoder lookup tables on the temporal training window only:
    // a TESSERACT-style study must not let vocabularies or frequency
    // tables see future months, or the drift it measures is erased.
    let (train_idx, _) = data.temporal_split_indices();
    let ctx = EvalContext::fitted_on(data, profile, &train_idx);
    run_time_resistance_on(&ctx, model, data, seed)
}

/// [`run_time_resistance`] against a shared [`EvalContext`]: the training
/// window and all nine monthly test sets are index slices of the same
/// store, and the monthly trials are sharded across the worker pool.
///
/// The context must cover `data` index-for-index and should be built with
/// [`EvalContext::fitted_on`] over the temporal training window (as
/// [`run_time_resistance`] does) to keep future months out of the fitted
/// lookup tables.
pub fn run_time_resistance_on(
    ctx: &EvalContext,
    model: ModelKind,
    data: &Dataset,
    seed: u64,
) -> TimeResistance {
    assert_eq!(ctx.len(), data.len(), "context/dataset misaligned");
    let (train_idx, tests) = data.temporal_split_indices();
    assert!(!train_idx.is_empty(), "empty temporal training window");
    let train_pos = ctx.positives_in(&train_idx);
    assert!(
        train_pos > 0 && train_pos < train_idx.len(),
        "single-class temporal training window"
    );

    let specs: Vec<(Month, Vec<usize>)> = tests
        .into_iter()
        .filter(|(_, idx)| {
            // Degenerate month: the paper's corpus guarantees both classes
            // per month; small synthetic corpora may not. Skip.
            let pos = ctx.positives_in(idx);
            !idx.is_empty() && pos > 0 && pos < idx.len()
        })
        .collect();
    let monthly = parallel_map(&specs, |(month, idx)| {
        let outcome = evaluate_trial(ctx, model, &train_idx, idx, seed);
        MonthlyResult {
            month: *month,
            period: month.test_period().expect("test month"),
            metrics: outcome.metrics,
        }
    });
    let f1_series: Vec<f64> = monthly.iter().map(|m| m.metrics.f1).collect();
    let aut_f1 = if f1_series.is_empty() {
        0.0
    } else {
        area_under_time(&f1_series)
    };
    TimeResistance {
        model,
        monthly,
        aut_f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bem::{extract_dataset, BemConfig};
    use phishinghook_chain::SimulatedChain;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    fn temporal_dataset() -> Dataset {
        let corpus = generate_corpus(&CorpusConfig {
            unique_phishing: 260,
            unique_benign: 260,
            benign_temporal_match: true,
            clone_factor: 1.5,
            ..CorpusConfig::small(41)
        });
        let chain = SimulatedChain::from_corpus(&corpus);
        extract_dataset(
            &chain,
            &BemConfig {
                balance: false,
                ..Default::default()
            },
        )
        .0
    }

    #[test]
    fn covers_test_periods_in_order() {
        let data = temporal_dataset();
        let result = run_time_resistance(ModelKind::RandomForest, &data, &EvalProfile::quick(), 3);
        assert!(!result.monthly.is_empty());
        for w in result.monthly.windows(2) {
            assert!(w[0].period < w[1].period);
        }
        assert!((0.0..=1.0).contains(&result.aut_f1));
    }

    #[test]
    fn detector_stays_above_chance_over_time() {
        let data = temporal_dataset();
        let result = run_time_resistance(ModelKind::RandomForest, &data, &EvalProfile::quick(), 7);
        assert!(result.aut_f1 > 0.5, "AUT = {}", result.aut_f1);
    }
}
