//! Criterion bench: synthetic-corpus generation throughput (the data
//! substrate's cost).

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook_synth::{
    generate_contract, generate_corpus, CorpusConfig, Difficulty, Family, Month,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");

    group.bench_function("one_erc20", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            generate_contract(
                Family::Erc20Token,
                Month(2),
                &Difficulty::default(),
                &mut rng,
            )
            .len()
        })
    });

    group.bench_function("one_drainer", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            generate_contract(
                Family::ApprovalDrainer,
                Month(2),
                &Difficulty::default(),
                &mut rng,
            )
            .len()
        })
    });

    group.bench_function("small_corpus_with_clones", |b| {
        b.iter(|| generate_corpus(&CorpusConfig::small(9)).len())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_synthesis
}
criterion_main!(benches);
