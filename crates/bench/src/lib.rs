//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see `DESIGN.md` §3) and accepts a `--quick` flag that
//! scales the corpus and model budgets down to CI size. Without the flag, a
//! laptop-scale "full" run is performed — larger than `--quick`, still far
//! below the paper's GPU cluster budget, which is why `EXPERIMENTS.md`
//! compares *shapes*, not absolute values.

pub mod json;

use phishinghook::prelude::*;
use phishinghook::ScalabilityStudy;

/// Run scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// CI-sized: small corpus, small models, 2–3 folds.
    Quick,
    /// Laptop-sized: the default.
    Full,
}

impl RunScale {
    /// Parses `--quick` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            RunScale::Quick
        } else {
            RunScale::Full
        }
    }

    /// The evaluation profile for this scale.
    pub fn profile(&self) -> EvalProfile {
        match self {
            RunScale::Quick => EvalProfile::quick(),
            RunScale::Full => EvalProfile::full(),
        }
    }

    /// Unique contracts per class for the main corpus.
    pub fn corpus_size(&self) -> usize {
        match self {
            RunScale::Quick => 150,
            RunScale::Full => 900,
        }
    }

    /// Cross-validation folds.
    pub fn folds(&self) -> usize {
        match self {
            RunScale::Quick => 3,
            RunScale::Full => 10,
        }
    }

    /// Repeated CV runs.
    pub fn runs(&self) -> usize {
        match self {
            RunScale::Quick => 1,
            RunScale::Full => 3,
        }
    }
}

/// Builds the main balanced dataset (the 7,000-sample analogue).
pub fn main_dataset(scale: RunScale, seed: u64) -> Dataset {
    let n = scale.corpus_size();
    let corpus = generate_corpus(&CorpusConfig {
        unique_phishing: n,
        unique_benign: n,
        ..CorpusConfig::small(seed)
    });
    let chain = SimulatedChain::from_corpus(&corpus);
    extract_dataset(&chain, &BemConfig::default()).0
}

/// Builds the temporally-matched dataset used by Fig. 8.
pub fn temporal_dataset(scale: RunScale, seed: u64) -> Dataset {
    let n = scale.corpus_size();
    let corpus = generate_corpus(&CorpusConfig {
        unique_phishing: n,
        unique_benign: n,
        benign_temporal_match: true,
        clone_factor: 1.5,
        ..CorpusConfig::small(seed)
    });
    let chain = SimulatedChain::from_corpus(&corpus);
    extract_dataset(
        &chain,
        &BemConfig {
            balance: false,
            ..Default::default()
        },
    )
    .0
}

/// Loads the scalability study persisted by the `fig5` binary, if present
/// and parseable (the table2-style load-or-run pattern for fig6/fig7).
pub fn load_scalability_study() -> Option<ScalabilityStudy> {
    let text = std::fs::read_to_string("fig5_study.json").ok()?;
    let study = json::scalability_from_json(&text)?;
    println!("(loaded scalability study from fig5_study.json)\n");
    Some(study)
}

/// Formats a p-value the way the paper prints Table III.
pub fn fmt_p(p: f64) -> String {
    if p < 1e-3 {
        format!("{p:.2e}")
    } else {
        format!("{p:.4}")
    }
}

/// Prints a standard header for a regeneration binary.
pub fn banner(artifact: &str, scale: RunScale) {
    println!("== PhishingHook reproduction :: {artifact} ==");
    println!("scale: {:?} (pass --quick for the CI-sized run)\n", scale);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_is_smaller() {
        let q = RunScale::Quick;
        let f = RunScale::Full;
        assert!(q.corpus_size() < f.corpus_size());
        assert!(q.folds() < f.folds());
        assert!(q.profile().n_trees < f.profile().n_trees);
    }

    #[test]
    fn datasets_are_buildable_at_quick_scale() {
        let d = main_dataset(RunScale::Quick, 1);
        assert!(d.len() > 100);
        let t = temporal_dataset(RunScale::Quick, 1);
        assert!(t.len() > 100);
    }

    #[test]
    fn p_formatting() {
        assert_eq!(fmt_p(0.25), "0.2500");
        assert!(fmt_p(1e-9).contains('e'));
    }
}
