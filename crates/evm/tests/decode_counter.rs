//! Exact decode-counter semantics, isolated in a single-test binary.
//!
//! `decode_count()` is process-global, so exact-delta assertions are only
//! race-free when nothing else in the process builds caches concurrently.
//! This file deliberately contains exactly one test.

use phishinghook_evm::{decode_count, Bytecode, DisasmCache};

#[test]
fn decode_counter_increments_once_per_build_and_never_on_reads() {
    let code = Bytecode::from_hex("0x6001600201").unwrap();
    let before = decode_count();
    let cache = DisasmCache::build(&code);
    // Reading the cache many times never decodes again.
    for _ in 0..10 {
        let _ = cache.ops().count();
        let _ = cache.op_ids().count();
    }
    assert_eq!(decode_count() - before, 1);

    // Batch builds count one decode per contract.
    let codes = vec![Bytecode::new(vec![0x01]), Bytecode::new(vec![0x02, 0x03])];
    let at = decode_count();
    let caches = DisasmCache::build_batch(&codes);
    assert_eq!(decode_count() - at, codes.len() as u64);
    assert_eq!(caches.len(), 2);
}
