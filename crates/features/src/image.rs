//! R2D2-style RGB image encoding of raw bytecode.
//!
//! "We interpret the bytecode as a sequence of hexadecimal color codes. Each
//! hexadecimal value in the bytecode is mapped to a color in the RGB space.
//! All pixels (i.e., three channels of integers) are arranged into a
//! 224×224×3 tensor, with zero-padding applied as needed." (§IV-B)
//!
//! The paper fine-tunes an ImageNet-pretrained ViT-B/16 on 224×224 inputs;
//! our CPU-trained small ViT uses a configurable side (32 by default), which
//! preserves the encoding — consecutive byte triplets become pixels, row
//! major, zero padded — at a tractable resolution (see DESIGN.md §4).
//!
//! The encoder is stateless and reads the raw bytes of the shared
//! [`DisasmCache`]; it needs no disassembly of its own.

use crate::featurizer::{FeatureVec, Featurizer};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_evm::DisasmCache;

/// Default image side for the CPU-scale reproduction.
pub const DEFAULT_SIDE: usize = 32;

/// Encoder turning bytecode into a `side × side × 3` channel-first tensor of
/// `[0, 1]` floats.
///
/// # Examples
///
/// ```
/// use phishinghook_evm::{Bytecode, DisasmCache};
/// use phishinghook_features::R2d2Encoder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let encoder = R2d2Encoder::new(32);
/// let cache = DisasmCache::build(&Bytecode::from_hex("0x608060")?);
/// let image = encoder.encode(&cache);
/// assert_eq!(image.len(), 3 * 32 * 32);
/// assert!((image[0] - 0x60 as f32 / 255.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct R2d2Encoder {
    side: usize,
}

impl R2d2Encoder {
    /// Creates an encoder producing `side × side` images.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "image side must be positive");
        R2d2Encoder { side }
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Serializes the encoder's geometry (pixel mapping is stateless).
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.side);
    }

    /// Rebuilds an encoder from [`R2d2Encoder::write_state`] bytes.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Corrupt`] on truncation or a zero side.
    pub fn read_state(r: &mut ByteReader<'_>) -> Result<Self, ArtifactError> {
        let side = r.take_usize()?;
        if side == 0 {
            return Err(ArtifactError::Corrupt("image side must be positive".into()));
        }
        Ok(R2d2Encoder { side })
    }

    /// Length of the produced feature vector (`3 · side²`).
    pub fn len(&self) -> usize {
        3 * self.side * self.side
    }

    /// Always `false`; images have fixed non-zero size.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes bytecode as a channel-first RGB tensor: byte `3k` is the red
    /// channel of pixel `k`, `3k+1` green, `3k+2` blue; the tail is
    /// zero-padded and over-long code is truncated (as any fixed-size tensor
    /// input requires).
    pub fn encode(&self, contract: &DisasmCache) -> Vec<f32> {
        let pixels = self.side * self.side;
        let mut out = vec![0.0f32; 3 * pixels];
        for (k, chunk) in contract.bytes().chunks(3).take(pixels).enumerate() {
            for (c, &b) in chunk.iter().enumerate() {
                // Channel-first layout: out[c][row][col].
                out[c * pixels + k] = b as f32 / 255.0;
            }
        }
        out
    }
}

impl Default for R2d2Encoder {
    fn default() -> Self {
        R2d2Encoder::new(DEFAULT_SIDE)
    }
}

impl Featurizer for R2d2Encoder {
    const NAME: &'static str = "r2d2_image";

    fn fit(_training: &[DisasmCache]) -> Self {
        R2d2Encoder::default()
    }

    fn encode(&self, contract: &DisasmCache) -> FeatureVec {
        FeatureVec::Dense(self.encode(contract))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::Bytecode;

    fn cache(bytes: Vec<u8>) -> DisasmCache {
        DisasmCache::build(&Bytecode::new(bytes))
    }

    #[test]
    fn layout_is_channel_first() {
        let enc = R2d2Encoder::new(4);
        let img = enc.encode(&cache(vec![10, 20, 30, 40, 50, 60]));
        let pixels = 16;
        assert_eq!(img[0], 10.0 / 255.0); // R of pixel 0
        assert_eq!(img[pixels], 20.0 / 255.0); // G of pixel 0
        assert_eq!(img[2 * pixels], 30.0 / 255.0); // B of pixel 0
        assert_eq!(img[1], 40.0 / 255.0); // R of pixel 1
    }

    #[test]
    fn zero_padding_fills_tail() {
        let enc = R2d2Encoder::new(8);
        let img = enc.encode(&cache(vec![0xFF; 3]));
        let nonzero = img.iter().filter(|v| **v != 0.0).count();
        assert_eq!(nonzero, 3);
    }

    #[test]
    fn long_code_is_truncated() {
        let enc = R2d2Encoder::new(2); // 4 pixels = 12 bytes
        let img = enc.encode(&cache(vec![1u8; 100]));
        assert_eq!(img.len(), 12);
        assert!(img.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn values_are_unit_range() {
        let enc = R2d2Encoder::default();
        let bytes: Vec<u8> = (0..=255).collect();
        let img = enc.encode(&cache(bytes));
        assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "image side must be positive")]
    fn zero_side_panics() {
        R2d2Encoder::new(0);
    }
}
