//! The background artifact reload loop: the piece that turns a running
//! [`Server`] into a *watching replica* of a publish directory.
//!
//! [`ArtifactWatchLoop::spawn`] starts one thread that polls the
//! directory through [`ArtifactWatcher`] (full checksum validation before
//! any swap), decodes each validated generation into the server's engine
//! type (flat detector or cascade — a mismatch is a reload failure, never
//! a panic), and hot-swaps it into the live slot. Every attempt, failure
//! and success is recorded on the server's [`HealthState`]: a streak of
//! failed reloads trips the breaker and `/healthz` goes `"degraded"`
//! while the replica keeps serving its last good generation; a later
//! clean install recovers it.
//!
//! Retries against a persistently invalid publish are bounded
//! (`PHISHINGHOOK_RELOAD_RETRIES`, default 5): past the bound the loop
//! stops counting new failures against the same generation and settles
//! into capped-backoff polling, waiting for a *newer* generation to
//! appear — it never rolls back, never gives up the watch, and never
//! takes the replica down.

use crate::server::Server;
use crate::swap::ModelSlot;
use phishinghook::{CascadeDetector, Detector};
use phishinghook_artifact::watch::{ArtifactWatcher, ValidArtifact, WatchConfig, WatchOutcome};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default bound on consecutive reload attempts against one bad
/// generation (`PHISHINGHOOK_RELOAD_RETRIES`).
pub const DEFAULT_RELOAD_RETRIES: u32 = 5;

/// Tuning for an [`ArtifactWatchLoop`].
#[derive(Debug, Clone)]
pub struct ReloadConfig {
    /// The underlying directory-watch tuning (poll interval, backoff).
    pub watch: WatchConfig,
    /// Consecutive failures counted against one bad generation before the
    /// loop settles into quiet capped-backoff polling.
    pub max_retries: u32,
}

impl Default for ReloadConfig {
    fn default() -> Self {
        ReloadConfig {
            watch: WatchConfig::default(),
            max_retries: DEFAULT_RELOAD_RETRIES,
        }
    }
}

impl ReloadConfig {
    /// Defaults with every environment override applied:
    /// `PHISHINGHOOK_WATCH_POLL_MS`, `PHISHINGHOOK_RELOAD_BACKOFF_MS`,
    /// `PHISHINGHOOK_RELOAD_RETRIES`.
    pub fn from_env() -> Self {
        let max_retries = std::env::var("PHISHINGHOOK_RELOAD_RETRIES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_RELOAD_RETRIES);
        ReloadConfig {
            watch: WatchConfig::from_env(),
            max_retries,
        }
    }
}

/// The engine-typed install handle the loop swaps into (crate-internal;
/// obtained from [`Server::slot_target`]).
pub(crate) enum SlotTarget {
    /// A flat single-detector server.
    Single(Arc<ModelSlot>),
    /// A cascade server.
    Cascade(Arc<ModelSlot<CascadeDetector>>),
}

/// Decodes a validated artifact into the engine's scorer type and swaps
/// it in. Any decode error — including an engine/artifact kind mismatch —
/// is a reload failure, and a panicking decoder is absorbed, not fatal.
fn apply(target: &SlotTarget, valid: &ValidArtifact) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match target {
        SlotTarget::Single(slot) => {
            if valid.artifact.section("cascade").is_ok() {
                return Err("cascade artifact offered to a flat-detector server".to_string());
            }
            let detector = Detector::from_artifact(&valid.artifact).map_err(|e| e.to_string())?;
            slot.install(Arc::new(detector), valid.generation);
            Ok(())
        }
        SlotTarget::Cascade(slot) => {
            let cascade =
                CascadeDetector::from_artifact(&valid.artifact).map_err(|e| e.to_string())?;
            slot.install(Arc::new(cascade), valid.generation);
            Ok(())
        }
    }));
    match outcome {
        Ok(result) => result,
        Err(_) => Err("artifact decoder panicked".to_string()),
    }
}

/// A running background reload loop; stopping (or dropping) it joins the
/// watcher thread. The served model stays live either way.
pub struct ArtifactWatchLoop {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ArtifactWatchLoop {
    /// Spawns the watch thread against `dir` for `server`, seeded with
    /// the server's current generation (so an artifact the server already
    /// loaded out-of-band is not re-installed).
    ///
    /// # Errors
    ///
    /// Thread spawn failure.
    pub fn spawn(
        server: &Server,
        dir: impl AsRef<Path>,
        config: ReloadConfig,
    ) -> std::io::Result<ArtifactWatchLoop> {
        let dir = dir.as_ref().to_path_buf();
        let target = server.slot_target();
        let health = server.health();
        let installed = server.generation();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("phk-reload".into())
            .spawn(move || {
                let mut watcher = ArtifactWatcher::with_installed(&dir, config.watch, installed);
                // Bounded-retry bookkeeping for one persistently bad
                // generation (None = the rejection had no generation,
                // e.g. a corrupt CURRENT pointer).
                let mut failing: Option<Option<u64>> = None;
                let mut fails = 0u32;
                while !thread_stop.load(Ordering::SeqCst) {
                    let outcome = watcher.poll_once();
                    match &outcome {
                        WatchOutcome::Unchanged => {}
                        WatchOutcome::Installed(valid) => {
                            health.record_reload_attempt();
                            match apply(&target, valid) {
                                Ok(()) => health.record_reload_success(),
                                Err(msg) => health.record_reload_failure(&format!(
                                    "generation {}: {msg}",
                                    valid.generation
                                )),
                            }
                            failing = None;
                            fails = 0;
                        }
                        WatchOutcome::Rejected { generation, error } => {
                            if failing == Some(*generation) {
                                fails = fails.saturating_add(1);
                            } else {
                                failing = Some(*generation);
                                fails = 1;
                            }
                            // Count each bad publish against the breaker
                            // only up to the retry bound; past it, keep
                            // polling quietly for a newer generation.
                            if fails <= config.max_retries {
                                health.record_reload_attempt();
                                health.record_reload_failure(&match generation {
                                    Some(generation) => {
                                        format!("generation {generation}: {error}")
                                    }
                                    None => format!("publish pointer: {error}"),
                                });
                            }
                        }
                    }
                    sleep_interruptibly(&thread_stop, watcher.next_delay(&outcome));
                }
            })?;
        Ok(ArtifactWatchLoop {
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the loop to stop and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ArtifactWatchLoop {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Sleeps up to `total`, waking early when `stop` flips — keeps loop
/// shutdown prompt even at the capped backoff delay.
fn sleep_interruptibly(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while !remaining.is_zero() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let nap = remaining.min(slice);
        std::thread::sleep(nap);
        remaining -= nap;
    }
}
