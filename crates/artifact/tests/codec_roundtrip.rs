//! Property tests over the codec: arbitrary payloads survive a
//! write→parse round trip bit-exactly, and random single-bit corruption of
//! a section payload never parses cleanly.

use phishinghook_artifact::{ArtifactReader, ArtifactWriter, ByteReader, ByteWriter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn f32_slices_round_trip_bit_exactly(bits in collection::vec(any::<u32>(), 0..64)) {
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut w = ByteWriter::new();
        w.put_f32_slice(&values);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.take_f32_slice().unwrap();
        r.expect_exhausted("f32 slice").unwrap();
        let back_bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn u64_and_str_fields_round_trip(vs in collection::vec(any::<u64>(), 0..32), n in 0usize..24) {
        let name: String = "section_".chars().chain("x".repeat(n).chars()).collect();
        let mut w = ByteWriter::new();
        w.put_str(&name);
        w.put_u64_slice(&vs);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.take_str().unwrap(), name);
        prop_assert_eq!(r.take_u64_slice().unwrap(), vs);
    }

    #[test]
    fn containers_round_trip(payloads in collection::vec(collection::vec(any::<u8>(), 0..48), 1..6)) {
        let mut w = ArtifactWriter::new();
        for (i, p) in payloads.iter().enumerate() {
            w.section(&format!("s{i}"), p.clone());
        }
        let bytes = w.into_bytes();
        let r = ArtifactReader::from_bytes(&bytes).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(r.section(&format!("s{i}")).unwrap(), &p[..]);
        }
    }

    #[test]
    fn payload_bit_flips_never_parse_cleanly(
        payload in collection::vec(any::<u8>(), 8..64),
        flip_bit in 0usize..64,
    ) {
        let mut w = ArtifactWriter::new();
        w.section("data", payload.clone());
        let mut bytes = w.into_bytes();
        // Flip one bit inside the payload region (the container tail).
        let payload_start = bytes.len() - payload.len();
        let byte = payload_start + (flip_bit / 8) % payload.len();
        bytes[byte] ^= 1 << (flip_bit % 8);
        prop_assert!(ArtifactReader::from_bytes(&bytes).is_err());
    }
}
