//! Degraded-mode serving, end to end in one process: a replica following
//! a publish directory through [`ArtifactWatchLoop`] rides out a corrupt
//! publish on its last good generation (bit-identical scores, `/healthz`
//! flipped to `"degraded"` with the failure recorded) and recovers —
//! forward, never a rollback — when a newer valid generation lands.

use phishinghook::json::Value;
use phishinghook::prelude::*;
use phishinghook::retry::RetryPolicy;
use phishinghook_artifact::watch::WatchConfig;
use phishinghook_artifact::{ArtifactPublisher, OwnedArtifact};
use phishinghook_evm::Bytecode;
use phishinghook_serve::{ArtifactWatchLoop, ReloadConfig, Server, ServerConfig};
use phishinghook_synth::{generate_contract, Difficulty, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn read_response(r: &mut impl BufRead) -> (u16, String) {
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length value");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn send(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(raw).expect("send request");
    read_response(&mut BufReader::new(stream))
}

fn healthz(addr: SocketAddr) -> Value {
    let (status, body) = send(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "healthz: {body}");
    phishinghook::json::parse(&body).expect("healthz JSON")
}

fn predict(addr: SocketAddr, code: &Bytecode) -> f32 {
    let body = format!("{{\"bytecode\":\"{}\"}}", code.to_hex());
    let req = format!(
        "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = send(addr, req.as_bytes());
    assert_eq!(status, 200, "predict during fault: {reply}");
    let doc = phishinghook::json::parse(&reply).expect("predict JSON");
    doc.get("probability")
        .and_then(Value::as_f64)
        .expect("probability") as f32
}

/// Polls `/healthz` until `want(snapshot)` holds, or panics after 30 s.
fn await_health(addr: SocketAddr, what: &str, want: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = healthz(addr);
        if want(&doc) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "healthz never reached \"{what}\": {doc:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn status_of(doc: &Value) -> &str {
    doc.get("status").and_then(Value::as_str).unwrap_or("?")
}

fn generation_of(doc: &Value) -> u64 {
    doc.get("generation")
        .and_then(Value::as_f64)
        .unwrap_or(-1.0) as u64
}

#[test]
fn corrupt_publish_degrades_then_recovers_without_rollback() {
    // A tight breaker so two bad reload rounds trip it. Set before the
    // server (HealthState::from_env) starts; this test owns the process.
    std::env::set_var("PHISHINGHOOK_BREAKER_THRESHOLD", "2");

    let dir = std::env::temp_dir().join(format!("phk-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Train once and publish generation 1.
    let corpus = generate_corpus(&CorpusConfig::small(91));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    let trained = Detector::train(&ctx, ModelKind::Svm, 7);
    let artifact_path = dir.join("seed.phk");
    std::fs::create_dir_all(&dir).unwrap();
    trained.save(&artifact_path).expect("save artifact");
    let good_bytes = std::fs::read(&artifact_path).expect("read artifact bytes");

    let mut publisher = ArtifactPublisher::open(&dir).expect("open publish dir");
    let gen1 = publisher
        .publish(good_bytes.clone())
        .expect("publish gen 1");
    assert_eq!(gen1.generation, 1);

    // Boot the replica on generation 1 and attach the watch loop with a
    // fast cadence and a small retry bound.
    let artifact = OwnedArtifact::open(&gen1.path).expect("open gen 1");
    let detector = Arc::new(Detector::from_artifact(&artifact).expect("decode gen 1"));
    let server = Server::start_with_generation(
        Arc::clone(&detector),
        1,
        "127.0.0.1:0",
        ServerConfig::from_env(),
    )
    .expect("start server");
    let addr = server.local_addr();
    let reload = ReloadConfig {
        watch: WatchConfig {
            poll: Duration::from_millis(20),
            backoff: RetryPolicy::new(Duration::from_millis(10), Duration::from_millis(80)),
            seed: 0xDE6,
        },
        max_retries: 3,
    };
    let watch_loop = ArtifactWatchLoop::spawn(&server, &dir, reload).expect("spawn watch loop");

    let probe = {
        let mut rng = StdRng::seed_from_u64(0xDE6);
        generate_contract(Family::ALL[0], Month(4), &Difficulty::default(), &mut rng)
    };
    let want = detector.score_code(&probe);
    assert_eq!(predict(addr, &probe), want);
    let doc = healthz(addr);
    assert_eq!((status_of(&doc), generation_of(&doc)), ("ok", 1));

    // A corrupt publish lands behind the publisher's back: generation 2
    // with a bit flipped inside checksummed payload, pointer swung to it.
    let mut bad = good_bytes.clone();
    let n = bad.len();
    bad[n - 16] ^= 0x40;
    std::fs::write(dir.join("gen-2.phk"), &bad).unwrap();
    std::fs::write(dir.join("CURRENT"), b"gen-2.phk").unwrap();

    // The watch loop must reject it repeatedly, trip the breaker, and
    // keep the replica on generation 1 — serving bit-identical scores.
    let doc = await_health(addr, "degraded", |d| status_of(d) == "degraded");
    assert_eq!(generation_of(&doc), 1, "no partial install, no rollback");
    let err = doc
        .get("last_error")
        .and_then(Value::as_str)
        .expect("degraded healthz carries last_error");
    assert!(
        err.contains("generation 2"),
        "last_error names the bad publish: {err}"
    );
    assert!(
        doc.get("reload_failures")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            >= 2.0,
        "failures are counted: {doc:?}"
    );
    assert_eq!(
        predict(addr, &probe),
        want,
        "degraded replica serves the last good generation bit-identically"
    );

    // Recovery is FORWARD: the next valid publish (generation 3 — a
    // reopened publisher resumes past the junk gen-2 file) re-arms the
    // breaker.
    drop(publisher);
    let mut publisher = ArtifactPublisher::open(&dir).expect("reopen publish dir");
    let gen3 = publisher.publish(good_bytes).expect("publish gen 3");
    assert_eq!(gen3.generation, 3);
    let doc = await_health(addr, "recovered", |d| {
        status_of(d) == "ok" && generation_of(d) == 3
    });
    assert!(
        doc.get("recoveries").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0,
        "recovery is counted: {doc:?}"
    );
    assert_eq!(
        predict(addr, &probe),
        want,
        "same artifact bytes, same scores after the swap"
    );

    watch_loop.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
