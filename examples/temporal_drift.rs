//! Temporal drift: a small version of the paper's time-resistance study
//! (Fig. 8). Train on October 2023 – January 2024, test month by month
//! through October 2024, and report the Area Under Time of the F1 score.
//!
//! Run with: `cargo run --release --example temporal_drift`

use phishinghook::prelude::*;

fn main() {
    // The paper's second dataset matches benign deployments to the phishing
    // temporal distribution.
    let corpus = generate_corpus(&CorpusConfig {
        unique_phishing: 450,
        unique_benign: 450,
        benign_temporal_match: true,
        clone_factor: 1.5,
        ..CorpusConfig::small(88)
    });
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(
        &chain,
        &BemConfig {
            balance: false,
            ..Default::default()
        },
    );

    let result = run_time_resistance(ModelKind::RandomForest, &dataset, &EvalProfile::quick(), 5);

    println!("time-resistance, Random Forest (train 2023-10..2024-01):\n");
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>8}",
        "month", "period", "F1", "prec", "recall"
    );
    for m in &result.monthly {
        println!(
            "{:<10} {:>6} {:>8.4} {:>8.4} {:>8.4}",
            m.month.to_string(),
            m.period,
            m.metrics.f1,
            m.metrics.precision,
            m.metrics.recall
        );
    }
    println!(
        "\nAUT(F1) = {:.3}  (paper: 0.89 for Random Forest)",
        result.aut_f1
    );
}
