//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BatchSize`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs a short warm-up followed
//! by `sample_size` timed samples and prints mean / best per-iteration
//! timings (plus throughput when configured). There is no statistical
//! analysis or HTML report.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not tuned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Units processed per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: two untimed passes.
    for _ in 0..2 {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        samples.extend(b.samples);
    }
    if samples.is_empty() {
        println!("  {name}: no samples (closure never called iter)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let best = samples.iter().min().copied().unwrap_or_default();
    let mut line = format!(
        "  {name}: mean {} / best {} over {} samples",
        fmt_duration(mean),
        fmt_duration(best),
        samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!(" ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(" ({:.0} elem/s)", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        demo(&mut c);
    }
}
