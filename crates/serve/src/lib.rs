//! # phishinghook-serve — the zero-copy serving tier
//!
//! Turns a saved `.phk` artifact into a network service without adding a
//! single dependency: the HTTP/1.1 front is `std::net`, the JSON codec is
//! [`phishinghook::json`], and the hot path is a **dynamic micro-batching
//! queue** ([`queue::MicroBatcher`]) that coalesces concurrent requests
//! into one batched model call.
//!
//! The pipeline, end to end:
//!
//! ```text
//!  TCP conns ──► http::read_request (length-capped parse)
//!                      │ Bytecode
//!                      ▼
//!             queue::MicroBatcher (bounded; full ⇒ 429 + Retry-After)
//!                      │ up to PHISHINGHOOK_MAX_BATCH jobs / wake,
//!                      │ time-boxed by PHISHINGHOOK_BATCH_WAIT_US
//!                      ▼
//!         warm worker pool ──► CodeScorer::score_many (one batched call)
//!                      │           (all workers share one Arc'd detector
//!                      ▼            decoded from one OwnedArtifact buffer)
//!             per-request reply slots ──► http::write_response
//! ```
//!
//! Because the core models' batched inference is bit-identical to their
//! row-wise inference (an invariant the test suite pins down), the
//! coalescing is *invisible* in the scores — only in the throughput.
//!
//! Knobs (all env-overridable, see [`queue::QueueConfig::from_env`]):
//! `PHISHINGHOOK_MAX_BATCH`, `PHISHINGHOOK_BATCH_WAIT_US`,
//! `PHISHINGHOOK_QUEUE_CAP`, `PHISHINGHOOK_SERVE_WORKERS`.
//!
//! The same front also serves a two-stage **cascade**
//! ([`server::Server::start_cascade`]): the slot then holds a
//! [`CascadeDetector`](phishinghook::CascadeDetector) — cheap calibrated
//! screen, uncertainty-band routing, deep confirmer — behind the very
//! same queue, and `GET /healthz` reports the screened/escalated routing
//! counters. Because both stages live in one `Arc`, a hot swap
//! ([`swap::ModelSlot`], now generic over the scorer) replaces the whole
//! cascade atomically: no request can pair stages from different
//! generations.
//!
//! The `phishinghook-served` binary wraps [`server::Server`] around an
//! artifact path (sniffing cascade vs. flat artifacts by section);
//! [`server::Server::start`] is the embeddable form used by the tests,
//! benches, and the `serve_and_query` example.

pub mod health;
pub mod http;
pub mod queue;
pub mod reload;
pub mod server;
pub mod swap;

pub use health::{HealthSnapshot, HealthState, DEFAULT_BREAKER_THRESHOLD};
pub use http::{Limits, Request};
pub use queue::{MicroBatcher, QueueConfig, QueueHooks, QueueStats, SubmitError};
pub use reload::{ArtifactWatchLoop, ReloadConfig, DEFAULT_RELOAD_RETRIES};
pub use server::{Server, ServerConfig};
pub use swap::ModelSlot;
