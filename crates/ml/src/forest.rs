//! Random Forest — bagged CART ensemble with per-split feature subsampling.
//!
//! The paper's best model overall (93.63% accuracy on Table II), and the one
//! analysed with SHAP in Fig. 9.

use crate::classifier::{checked_u32_count, validate_fit_inputs, Classifier};
use crate::tree::{read_nodes, write_nodes, DecisionTree, TreeParams};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Hyper-parameters for the forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters; `max_features = None` defaults to `sqrt(d)` at
    /// fit time, as in scikit-learn.
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the training set.
    pub subsample: f32,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 100,
            tree: TreeParams {
                max_depth: 14,
                ..TreeParams::default()
            },
            subsample: 1.0,
        }
    }
}

/// A fitted Random Forest.
///
/// # Examples
///
/// ```
/// use phishinghook_linalg::Matrix;
/// use phishinghook_ml::{Classifier, RandomForest};
///
/// let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.1, 0.9], vec![1.0, 0.0], vec![0.9, 0.1]]);
/// let y = [0, 0, 1, 1];
/// let mut forest = RandomForest::new(25, 7);
/// forest.fit(&x, &y);
/// assert_eq!(forest.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: ForestParams,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates a forest with `n_trees` trees and default tree parameters.
    pub fn new(n_trees: usize, seed: u64) -> Self {
        RandomForest {
            params: ForestParams {
                n_trees,
                ..ForestParams::default()
            },
            seed,
            trees: Vec::new(),
        }
    }

    /// Creates a forest with explicit parameters.
    pub fn with_params(params: ForestParams, seed: u64) -> Self {
        RandomForest {
            params,
            seed,
            trees: Vec::new(),
        }
    }

    /// The fitted trees (empty before `fit`).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        let n = x.rows();
        let sample = ((n as f32 * self.params.subsample) as usize).max(1);
        let mtry = self
            .params
            .tree
            .max_features
            .unwrap_or_else(|| (x.cols() as f32).sqrt().ceil() as usize)
            .max(1);
        let tree_params = TreeParams {
            max_features: Some(mtry),
            ..self.params.tree
        };
        let seed = self.seed;

        self.trees = (0..self.params.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                let indices: Vec<usize> = (0..sample).map(|_| rng.gen_range(0..n)).collect();
                let mut tree = DecisionTree::new(tree_params, rng.gen());
                tree.fit_indices(x, y, &indices);
                tree
            })
            .collect();
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut probs = vec![0.0f32; x.rows()];
        for tree in &self.trees {
            for (r, p) in probs.iter_mut().enumerate() {
                *p += tree.predict_row(x.row(r));
            }
        }
        let k = self.trees.len() as f32;
        for p in &mut probs {
            *p /= k;
        }
        probs
    }

    fn export_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.trees.len() as u32);
        for tree in &self.trees {
            write_nodes(&mut w, tree.nodes());
        }
        w.into_bytes()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        let mut r = ByteReader::new(bytes);
        // Each serialized tree is at least its 4-byte node count.
        let count = checked_u32_count(&mut r, 4, "forest tree list")?;
        let mut trees = Vec::with_capacity(count);
        for _ in 0..count {
            trees.push(DecisionTree::from_nodes(read_nodes(&mut r)?));
        }
        r.expect_exhausted("random forest state")?;
        self.trees = trees;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_moons(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t: f32 = rng.gen_range(0.0..std::f32::consts::PI);
            let noise = rng.gen_range(-0.08f32..0.08);
            if i % 2 == 0 {
                rows.push(vec![t.cos() + noise, t.sin() + noise]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - t.cos() + noise, 0.3 - t.sin() + noise]);
                y.push(1);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_boundary() {
        let (x, y) = two_moons(500, 2);
        let mut rf = RandomForest::new(50, 5);
        rf.fit(&x, &y);
        let acc = rf
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f32
            / y.len() as f32;
        assert!(acc > 0.97, "train accuracy = {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = two_moons(200, 3);
        let mut a = RandomForest::new(10, 42);
        let mut b = RandomForest::new(10, 42);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = two_moons(200, 3);
        let mut a = RandomForest::new(10, 1);
        let mut b = RandomForest::new(10, 2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (x, y) = two_moons(150, 7);
        let mut rf = RandomForest::new(20, 9);
        rf.fit(&x, &y);
        assert!(rf.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn single_class_training() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut rf = RandomForest::new(5, 0);
        rf.fit(&x, &[1, 1]);
        assert_eq!(rf.predict(&x), vec![1, 1]);
    }
}
