//! CART decision trees (Gini impurity) — the building block of the Random
//! Forest and the subject of the TreeSHAP analysis.

use crate::classifier::{checked_u32_count, positive_rate, validate_fit_inputs, Classifier};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One node of a fitted tree, in a flat arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Splitting feature index (unused for leaves).
    pub feature: u32,
    /// Split threshold: samples with `x[feature] <= threshold` go left.
    pub threshold: f32,
    /// Arena index of the left child (0 for leaves).
    pub left: u32,
    /// Arena index of the right child (0 for leaves).
    pub right: u32,
    /// Fraction of positive (class 1) training samples in this node.
    pub value: f32,
    /// Number of training samples that reached this node ("cover"), needed
    /// by TreeSHAP.
    pub cover: f32,
    /// `true` if this node is a leaf.
    pub is_leaf: bool,
}

/// Hyper-parameters for tree construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Features considered per split: `None` = all, `Some(m)` = a random
    /// subset of `m` (Random-Forest style).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

/// A fitted CART classification tree.
///
/// # Examples
///
/// ```
/// use phishinghook_linalg::Matrix;
/// use phishinghook_ml::{Classifier, DecisionTree};
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.2], vec![0.9], vec![1.0]]);
/// let y = [0, 0, 1, 1];
/// let mut tree = DecisionTree::default();
/// tree.fit(&x, &y);
/// assert_eq!(tree.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    params: TreeParams,
    seed: u64,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given parameters.
    pub fn new(params: TreeParams, seed: u64) -> Self {
        DecisionTree {
            params,
            seed,
            nodes: Vec::new(),
        }
    }

    /// The fitted node arena (empty before `fit`). Index 0 is the root.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Rehydrates a fitted tree from a decoded node arena (persistence
    /// path; construction hyper-parameters are irrelevant for prediction).
    pub(crate) fn from_nodes(nodes: Vec<Node>) -> DecisionTree {
        DecisionTree {
            params: TreeParams::default(),
            seed: 0,
            nodes,
        }
    }

    /// Probability of class 1 for a single sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf {
                return node.value;
            }
            i = if row[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Fits on a subset of rows (used by the forest for bootstrap samples).
    pub(crate) fn fit_indices(&mut self, x: &Matrix, y: &[u8], indices: &[usize]) {
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut idx = indices.to_vec();
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: 0,
            right: 0,
            value: 0.0,
            cover: idx.len() as f32,
            is_leaf: true,
        });
        self.build(x, y, &mut idx, 0, 0, &mut rng);
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[u8],
        idx: &mut [usize],
        node: usize,
        depth: usize,
        rng: &mut StdRng,
    ) {
        let n = idx.len();
        let positives: usize = idx.iter().map(|&i| y[i] as usize).sum();
        let p = positives as f32 / n as f32;
        self.nodes[node].value = p;
        self.nodes[node].cover = n as f32;

        if depth >= self.params.max_depth
            || n < self.params.min_samples_split
            || positives == 0
            || positives == n
        {
            return;
        }

        let Some((feature, threshold)) = self.best_split(x, y, idx, rng) else {
            return;
        };

        // Partition idx in place.
        let mut split = 0usize;
        for i in 0..n {
            if x[(idx[i], feature)] <= threshold {
                idx.swap(i, split);
                split += 1;
            }
        }
        if split < self.params.min_samples_leaf || n - split < self.params.min_samples_leaf {
            return;
        }

        let left = self.nodes.len();
        let right = left + 1;
        for _ in 0..2 {
            self.nodes.push(Node {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                value: 0.0,
                cover: 0.0,
                is_leaf: true,
            });
        }
        self.nodes[node].feature = feature as u32;
        self.nodes[node].threshold = threshold;
        self.nodes[node].left = left as u32;
        self.nodes[node].right = right as u32;
        self.nodes[node].is_leaf = false;

        let (idx_left, idx_right) = idx.split_at_mut(split);
        self.build(x, y, idx_left, left, depth + 1, rng);
        self.build(x, y, idx_right, right, depth + 1, rng);
    }

    /// Finds the Gini-optimal `(feature, threshold)` over the (possibly
    /// subsampled) feature set, or `None` when no impurity-reducing split
    /// exists.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[u8],
        idx: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f32)> {
        let n = idx.len() as f32;
        let total_pos: f32 = idx.iter().map(|&i| y[i] as u32 as f32).sum();

        let mut features: Vec<usize> = (0..x.cols()).collect();
        if let Some(m) = self.params.max_features {
            features.shuffle(rng);
            features.truncate(m.max(1).min(x.cols()));
        }

        let parent_gini = gini(total_pos, n);
        let mut best: Option<(f32, usize, f32)> = None;

        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        for &feature in &features {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_by(|&a, &b| {
                x[(a, feature)]
                    .partial_cmp(&x[(b, feature)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            let mut left_pos = 0.0f32;
            for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_pos += y[i] as u32 as f32;
                let v = x[(i, feature)];
                let v_next = x[(order[k + 1], feature)];
                if v == v_next {
                    continue; // can't split between equal values
                }
                let nl = (k + 1) as f32;
                let nr = n - nl;
                let gain = parent_gini
                    - (nl / n) * gini(left_pos, nl)
                    - (nr / n) * gini(total_pos - left_pos, nr);
                if gain > 1e-9 {
                    match best {
                        Some((g, _, _)) if gain <= g => {}
                        _ => best = Some((gain, feature, (v + v_next) / 2.0)),
                    }
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

/// Serializes one fitted node arena (shared by the tree and the forest).
pub(crate) fn write_nodes(w: &mut ByteWriter, nodes: &[Node]) {
    w.put_u32(nodes.len() as u32);
    for n in nodes {
        w.put_u32(n.feature);
        w.put_f32(n.threshold);
        w.put_u32(n.left);
        w.put_u32(n.right);
        w.put_f32(n.value);
        w.put_f32(n.cover);
        w.put_u8(u8::from(n.is_leaf));
    }
}

/// Inverse of [`write_nodes`], validating child indices so a decoded arena
/// can never send `predict_row` out of bounds.
pub(crate) fn read_nodes(r: &mut ByteReader<'_>) -> Result<Vec<Node>, ArtifactError> {
    // 25 bytes per node on the wire; bounding the count by the payload
    // keeps a crafted artifact from forcing a huge pre-allocation.
    let count = checked_u32_count(r, 25, "tree node arena")?;
    if count == 0 {
        // Fitting always produces at least a root leaf; an empty arena
        // would panic the first predict_row.
        return Err(ArtifactError::Corrupt("empty tree node arena".into()));
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(Node {
            feature: r.take_u32()?,
            threshold: r.take_f32()?,
            left: r.take_u32()?,
            right: r.take_u32()?,
            value: r.take_f32()?,
            cover: r.take_f32()?,
            is_leaf: r.take_u8()? != 0,
        });
    }
    for (i, n) in nodes.iter().enumerate() {
        // Children sit strictly deeper in the arena (construction order),
        // which both bounds the indices and rules out traversal cycles.
        if !n.is_leaf
            && (n.left as usize >= count
                || n.right as usize >= count
                || n.left as usize <= i
                || n.right as usize <= i)
        {
            return Err(ArtifactError::Corrupt(format!(
                "tree node {i} has invalid children in a {count}-node arena"
            )));
        }
    }
    Ok(nodes)
}

/// Gini impurity of a node with `pos` positives out of `n`.
fn gini(pos: f32, n: f32) -> f32 {
    if n <= 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.fit_indices(x, y, &indices);
        if self.nodes.is_empty() {
            // Degenerate fallback: predict the prior.
            self.nodes.push(Node {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                value: positive_rate(y),
                cover: y.len() as f32,
                is_leaf: true,
            });
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.nodes.is_empty(), "predict before fit");
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    fn export_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        write_nodes(&mut w, &self.nodes);
        w.into_bytes()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let nodes = read_nodes(&mut r)?;
        r.expect_exhausted("decision tree state")?;
        self.nodes = nodes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn perfectly_separable_data_is_fit_exactly() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.9], vec![1.0]]);
        let y = [0, 0, 1, 1];
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y);
        assert_eq!(tree.predict(&x), y.to_vec());
    }

    #[test]
    fn xor_needs_depth_two() {
        let (x, y) = xor_data(400, 3);
        let mut tree = DecisionTree::new(
            TreeParams {
                max_depth: 4,
                ..TreeParams::default()
            },
            0,
        );
        tree.fit(&x, &y);
        let pred = tree.predict(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f32 / y.len() as f32;
        assert!(acc > 0.95, "accuracy = {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let (x, y) = xor_data(300, 5);
        let mut tree = DecisionTree::new(
            TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
            0,
        );
        tree.fit(&x, &y);
        // Depth-1 tree has at most 3 nodes.
        assert!(tree.nodes().len() <= 3);
    }

    #[test]
    fn single_class_collapses_to_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = [1, 1, 1];
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict_proba(&x), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn constant_features_yield_prior_leaf() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0], vec![5.0]]);
        let y = [0, 1, 0, 1];
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict_proba(&x)[0], 0.5);
    }

    #[test]
    fn covers_are_consistent() {
        let (x, y) = xor_data(200, 9);
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y);
        for node in tree.nodes() {
            if !node.is_leaf {
                let l = &tree.nodes()[node.left as usize];
                let r = &tree.nodes()[node.right as usize];
                assert_eq!(node.cover, l.cover + r.cover);
            }
        }
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = xor_data(100, 13);
        let mut tree = DecisionTree::new(
            TreeParams {
                min_samples_leaf: 20,
                ..TreeParams::default()
            },
            0,
        );
        tree.fit(&x, &y);
        for node in tree.nodes() {
            if node.is_leaf {
                assert!(node.cover >= 20.0 || tree.nodes().len() == 1);
            }
        }
    }
}
