//! Pins the cascade's decode-once guarantee with the process-global
//! decode counter: scoring N fresh contracts through a two-stage cascade
//! — including escalations to a confirmer with a *different* encoding —
//! moves [`decode_count`] by exactly N. Stage 2 re-encodes escalated
//! contracts from stage 1's [`DisasmCache`]s; it never re-decodes.
//!
//! This file deliberately contains exactly one test (the same convention
//! as `tests/evalstore_decode_once.rs`): the counter is process-global,
//! so exact-delta assertions only hold when no sibling test decodes
//! concurrently in the same binary.

use phishinghook::prelude::*;
use phishinghook::EvalProfile;
use phishinghook_evm::{decode_count, Bytecode};

#[test]
fn cascade_scoring_decodes_each_contract_exactly_once() {
    let corpus = generate_corpus(&CorpusConfig::small(42));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    // Forest screens on opcode histograms; ESCORT confirms on its own
    // encoding — so every escalation exercises the re-encode (not
    // re-decode) path across encodings.
    let cascade = CascadeDetector::train(
        &ctx,
        ModelKind::RandomForest,
        ModelKind::Escort,
        &CascadeConfig::default(),
        7,
    );

    let fresh = generate_corpus(&CorpusConfig::small(99));
    let fresh_chain = SimulatedChain::from_corpus(&fresh);
    let codes: Vec<Bytecode> = fresh_chain
        .records()
        .iter()
        .take(24)
        .map(|r| r.bytecode.clone())
        .collect();

    let before = decode_count();
    let verdicts = cascade.score_codes(&codes);
    let after = decode_count();

    assert_eq!(
        after - before,
        codes.len() as u64,
        "cascade must decode each contract exactly once, escalated or not"
    );
    let escalations = verdicts.iter().filter(|v| v.escalated).count();
    assert!(
        escalations > 0,
        "no contract escalated; the stage-2 no-decode path was never exercised"
    );
}
