//! The online-adaptation loop: replay the chain in time order against the
//! live model, watch for calibration drift, retrain on a sliding window
//! when it fires, and republish the artifact atomically.

use phishinghook::drift::{DriftConfig, DriftSignal, DriftWatcher};
use phishinghook::{Dataset, Detector, EvalContext, EvalProfile, ModelKind, Sample};
use phishinghook_artifact::publish::{ArtifactPublisher, PublishedArtifact};
use phishinghook_artifact::ArtifactError;
use std::collections::VecDeque;
use std::sync::Arc;

/// Knobs of one [`OnlinePipeline`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Drift-watch configuration (rolling window + Brier margin).
    pub drift: DriftConfig,
    /// Samples kept in the sliding retrain window; a retrain sees at most
    /// this many of the most recent contracts.
    pub retrain_window: usize,
    /// Model retrained on drift.
    pub kind: ModelKind,
    /// Featurization/evaluation profile used by retrains.
    pub profile: EvalProfile,
    /// Retrain seed.
    pub seed: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            drift: DriftConfig::default(),
            retrain_window: 256,
            kind: ModelKind::LogisticRegression,
            profile: EvalProfile::quick(),
            seed: 7,
        }
    }
}

/// One completed drift → retrain → republish cycle.
#[derive(Debug, Clone)]
pub struct RetrainEvent {
    /// The signal that triggered the cycle.
    pub signal: DriftSignal,
    /// The atomically published artifact of the retrained model.
    pub published: PublishedArtifact,
    /// Samples the retrain saw (the sliding window's length at the trip).
    pub window_len: usize,
}

/// Lifetime counters of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Samples replayed through the pipeline.
    pub streamed: usize,
    /// Every drift signal observed, in order.
    pub signals: Vec<DriftSignal>,
    /// Drift signals that led to a retrain + republish (a signal with a
    /// single-class window rearms without retraining).
    pub retrains: usize,
    /// Generations published, in order.
    pub generations: Vec<u64>,
}

/// The rolling-retrain pipeline: scores each incoming sample with the
/// live model, feeds the drift watcher, and on a [`DriftSignal`] retrains
/// on the sliding window, publishes the new artifact through an
/// [`ArtifactPublisher`], swaps its own live model, and rearms the watch.
///
/// The serving hand-off is the caller's: a [`RetrainEvent`] names the
/// published generation, and [`OnlinePipeline::detector`] is the decoded
/// model ready for `Server::install`.
pub struct OnlinePipeline {
    config: IngestConfig,
    watcher: DriftWatcher,
    window: VecDeque<Sample>,
    detector: Arc<Detector>,
    report: IngestReport,
}

impl OnlinePipeline {
    /// A pipeline scoring through `initial` until the first retrain.
    ///
    /// # Panics
    ///
    /// Panics when `config.retrain_window` or `config.drift.window` is 0.
    pub fn new(initial: Arc<Detector>, config: IngestConfig) -> Self {
        assert!(config.retrain_window > 0, "retrain window must be positive");
        OnlinePipeline {
            watcher: DriftWatcher::new(config.drift),
            window: VecDeque::with_capacity(config.retrain_window),
            detector: initial,
            config,
            report: IngestReport::default(),
        }
    }

    /// The live model (the latest retrain's, once one has happened).
    pub fn detector(&self) -> Arc<Detector> {
        Arc::clone(&self.detector)
    }

    /// The drift watcher's state.
    pub fn watcher(&self) -> &DriftWatcher {
        &self.watcher
    }

    /// Counters so far.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Feeds one sample in chain order: score → window → drift watch →
    /// (on signal) retrain, publish, swap, rearm. Returns the completed
    /// [`RetrainEvent`] when this sample tripped a retrain.
    ///
    /// A signal caught while the sliding window holds a single class
    /// cannot retrain a classifier; it rearms the watcher and is counted
    /// in [`IngestReport::signals`] only.
    ///
    /// # Errors
    ///
    /// Publisher I/O failures, as [`ArtifactError::Io`].
    pub fn observe(
        &mut self,
        sample: Sample,
        publisher: &mut ArtifactPublisher,
    ) -> Result<Option<RetrainEvent>, ArtifactError> {
        let prob = self.detector.score_code(&sample.bytecode);
        self.report.streamed += 1;
        if self.window.len() == self.config.retrain_window {
            self.window.pop_front();
        }
        let (label, month) = (sample.label, sample.month);
        self.window.push_back(sample);
        let Some(signal) = self.watcher.observe(prob, label, month) else {
            return Ok(None);
        };
        self.report.signals.push(signal);
        let positives = self.window.iter().filter(|s| s.label == 1).count();
        if positives == 0 || positives == self.window.len() {
            self.watcher.rearm();
            return Ok(None);
        }
        let dataset = Dataset::new(self.window.iter().cloned().collect());
        let ctx = EvalContext::new(&dataset, &self.config.profile);
        let retrained = Detector::train(&ctx, self.config.kind, self.config.seed);
        let published = publisher.publish(retrained.to_bytes())?;
        self.detector = Arc::new(retrained);
        self.watcher.rearm();
        self.report.retrains += 1;
        self.report.generations.push(published.generation);
        Ok(Some(RetrainEvent {
            signal,
            published,
            window_len: dataset.len(),
        }))
    }

    /// Drains `samples` through [`OnlinePipeline::observe`], invoking
    /// `on_retrain` with each completed cycle and the freshly retrained
    /// model (ready for `Server::install`). Returns the final counters.
    ///
    /// # Errors
    ///
    /// Publisher I/O failures, as [`ArtifactError::Io`].
    pub fn run<I, F>(
        &mut self,
        samples: I,
        publisher: &mut ArtifactPublisher,
        mut on_retrain: F,
    ) -> Result<IngestReport, ArtifactError>
    where
        I: IntoIterator<Item = Sample>,
        F: FnMut(&RetrainEvent, &Arc<Detector>),
    {
        for sample in samples {
            if let Some(event) = self.observe(sample, publisher)? {
                on_retrain(&event, &self.detector);
            }
        }
        Ok(self.report.clone())
    }
}
