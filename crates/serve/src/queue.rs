//! The dynamic micro-batching queue: the piece that turns concurrent
//! single-contract requests into the batched scoring calls PR 5/6 made
//! fast.
//!
//! Producers (HTTP connection handlers, bench clients) push
//! `(bytecode, reply-slot)` jobs into one bounded queue; a small pool of
//! warm workers — each holding a clone of one shared
//! [`Arc`]`<`[`CodeScorer`]`>` — drains up to
//! [`QueueConfig::max_batch`] jobs per wake and scores them in **one**
//! `score_many` call (`Detector::score_codes` /
//! `ModelZoo::score_codes` → `predict_proba_batch` underneath). Scores
//! are delivered back through each job's private reply slot, in input
//! order within the batch.
//!
//! Three timing/pressure rules shape the hot path:
//!
//! * **A lone request is never stalled**: a worker that wakes with fewer
//!   than `max_batch` jobs waits at most [`QueueConfig::batch_wait`]
//!   (default 200 µs, `PHISHINGHOOK_BATCH_WAIT_US`) for batch-mates
//!   before scoring what it has.
//! * **Backpressure is explicit**: a push that would exceed
//!   [`QueueConfig::capacity`] fails *immediately* with
//!   [`SubmitError::QueueFull`] — the HTTP layer turns that into a 429
//!   with a `Retry-After` hint instead of letting latency collapse.
//! * **Shutdown drains**: [`MicroBatcher::shutdown`] stops new
//!   submissions, then workers keep scoring until the queue is empty, so
//!   every accepted request gets its score.
//!
//! Because the scorer's batched path is bit-identical to its solo path
//! (the [`CodeScorer`] contract), coalescing is invisible to callers:
//! whatever requests a job shares a batch with, its score equals a solo
//! `score_code` call.

use phishinghook::CodeScorer;
use phishinghook_evm::Bytecode;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default cap on jobs scored per worker wake (`PHISHINGHOOK_MAX_BATCH`).
pub const DEFAULT_MAX_BATCH: usize = 64;

/// Default time a worker waits for batch-mates, in microseconds
/// (`PHISHINGHOOK_BATCH_WAIT_US`).
pub const DEFAULT_BATCH_WAIT_US: u64 = 200;

/// Default bounded queue capacity (`PHISHINGHOOK_QUEUE_CAP`).
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Reads a positive integer environment knob, falling back on unset or
/// unparsable values.
fn env_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Tuning knobs for one [`MicroBatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Most jobs a worker drains per wake — the coalescing ceiling and
    /// the batch size `predict_proba_batch` sees under saturation.
    pub max_batch: usize,
    /// How long a worker holding fewer than `max_batch` jobs waits for
    /// batch-mates before scoring. Zero disables the wait entirely.
    pub batch_wait: Duration,
    /// Bounded queue depth; a push beyond it fails fast with
    /// [`SubmitError::QueueFull`].
    pub capacity: usize,
    /// Warm scorer workers draining the queue. Scoring itself fans out on
    /// the linalg worker pool, so one or two queue workers saturate a
    /// host; more only help when batches interleave with I/O.
    pub workers: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_batch: DEFAULT_MAX_BATCH,
            batch_wait: Duration::from_micros(DEFAULT_BATCH_WAIT_US),
            capacity: DEFAULT_QUEUE_CAP,
            workers: 1,
        }
    }
}

impl QueueConfig {
    /// The serving defaults with every `PHISHINGHOOK_*` environment
    /// override applied: `PHISHINGHOOK_MAX_BATCH`,
    /// `PHISHINGHOOK_BATCH_WAIT_US`, `PHISHINGHOOK_QUEUE_CAP`,
    /// `PHISHINGHOOK_SERVE_WORKERS`.
    pub fn from_env() -> Self {
        let hw = std::thread::available_parallelism().map_or(1, usize::from);
        QueueConfig {
            max_batch: env_knob("PHISHINGHOOK_MAX_BATCH", DEFAULT_MAX_BATCH as u64) as usize,
            batch_wait: Duration::from_micros(env_knob(
                "PHISHINGHOOK_BATCH_WAIT_US",
                DEFAULT_BATCH_WAIT_US,
            )),
            capacity: env_knob("PHISHINGHOOK_QUEUE_CAP", DEFAULT_QUEUE_CAP as u64) as usize,
            workers: env_knob("PHISHINGHOOK_SERVE_WORKERS", if hw >= 4 { 2 } else { 1 }) as usize,
        }
    }
}

/// Why a submission was rejected. Every variant is immediate — submission
/// never blocks on a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry after a batch drains.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The batcher is shutting down and accepts no new work.
    Closed,
    /// A worker died (scorer panic) before delivering this job's score.
    WorkerLost,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs in flight)")
            }
            SubmitError::Closed => write!(f, "serving queue is shut down"),
            SubmitError::WorkerLost => write!(f, "scoring worker lost"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counters a batcher accumulates over its lifetime — the observable
/// evidence that coalescing happens (`scored > batches`) and how big the
/// dynamic batches actually got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// `score_many` calls issued.
    pub batches: u64,
    /// Jobs scored across all batches.
    pub scored: u64,
    /// Largest single batch observed.
    pub max_batch_seen: usize,
}

/// A shared observer callback taking the absorbed panic message.
pub type PanicHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Optional observers the health layer hangs off the worker loop:
/// `on_panic` fires with the payload message each time a scorer panic is
/// absorbed, `on_batch` after each cleanly scored batch. Both run on the
/// worker thread and must be cheap.
#[derive(Clone, Default)]
pub struct QueueHooks {
    /// Called with the panic message when a scoring call panics.
    pub on_panic: Option<PanicHook>,
    /// Called after each batch scores cleanly.
    pub on_batch: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for QueueHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueHooks")
            .field("on_panic", &self.on_panic.is_some())
            .field("on_batch", &self.on_batch.is_some())
            .finish()
    }
}

/// Best-effort panic payload → message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "scorer panicked (non-string payload)"
    }
}

/// One queued unit of work: the contract to score and the slot its
/// submitter blocks on.
struct Job<O> {
    code: Bytecode,
    reply: SyncSender<O>,
}

struct QueueState<O> {
    jobs: VecDeque<Job<O>>,
    closed: bool,
}

struct Shared<S: CodeScorer> {
    scorer: S,
    state: Mutex<QueueState<S::Output>>,
    /// Signals producers→workers (new job) and shutdown.
    wake: Condvar,
    cfg: QueueConfig,
    hooks: QueueHooks,
    batches: AtomicU64,
    scored: AtomicU64,
    max_batch_seen: AtomicUsize,
}

/// A running micro-batching queue over one shared warm scorer.
///
/// Dropping the batcher shuts it down (draining queued jobs first), so a
/// test or bench that lets it fall out of scope never leaks workers.
pub struct MicroBatcher<S: CodeScorer> {
    shared: Arc<Shared<S>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<S: CodeScorer + 'static> MicroBatcher<S> {
    /// Spawns `cfg.workers` warm workers over `scorer` and starts
    /// accepting jobs. The scorer is typically an `Arc<Detector>` or
    /// `Arc<ModelZoo>` — every worker scores through the *same* loaded
    /// artifact, which is what makes the pool cheap to widen.
    ///
    /// # Panics
    ///
    /// Panics on a zero `max_batch`, `capacity`, or `workers` count — a
    /// queue that can hold or score nothing is a configuration bug.
    pub fn start(scorer: S, cfg: QueueConfig) -> MicroBatcher<S> {
        Self::start_with_hooks(scorer, cfg, QueueHooks::default())
    }

    /// [`MicroBatcher::start`] with health observers attached to the
    /// worker loop (see [`QueueHooks`]).
    ///
    /// # Panics
    ///
    /// As [`MicroBatcher::start`].
    pub fn start_with_hooks(scorer: S, cfg: QueueConfig, hooks: QueueHooks) -> MicroBatcher<S> {
        assert!(cfg.max_batch > 0, "max_batch must be at least 1");
        assert!(cfg.capacity > 0, "queue capacity must be at least 1");
        assert!(cfg.workers > 0, "worker pool must hold at least 1 worker");
        let shared = Arc::new(Shared {
            scorer,
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(cfg.capacity.min(4096)),
                closed: false,
            }),
            wake: Condvar::new(),
            cfg,
            hooks,
            batches: AtomicU64::new(0),
            scored: AtomicU64::new(0),
            max_batch_seen: AtomicUsize::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phk-score-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scoring worker")
            })
            .collect();
        MicroBatcher { shared, workers }
    }

    /// The configuration the batcher runs under.
    pub fn config(&self) -> &QueueConfig {
        &self.shared.cfg
    }

    /// The shared warm scorer (useful for inspecting a test double).
    pub fn scorer(&self) -> &S {
        &self.shared.scorer
    }

    /// Stops accepting new jobs *without* blocking: jobs already admitted
    /// still drain and deliver. [`MicroBatcher::shutdown`] additionally
    /// waits for the drain and joins the workers.
    pub fn close(&self) {
        self.shared.state.lock().unwrap().closed = true;
        self.shared.wake.notify_all();
    }

    /// Lifetime coalescing counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            batches: self.shared.batches.load(Ordering::Relaxed),
            scored: self.shared.scored.load(Ordering::Relaxed),
            max_batch_seen: self.shared.max_batch_seen.load(Ordering::Relaxed),
        }
    }

    /// Current queue depth (jobs accepted, not yet handed to a worker).
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().jobs.len()
    }

    /// Scores one contract through the queue, blocking until a worker
    /// delivers the result.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] immediately when the bounded queue is at
    /// capacity, [`SubmitError::Closed`] after shutdown began, and
    /// [`SubmitError::WorkerLost`] if the scoring worker died.
    pub fn submit(&self, code: Bytecode) -> Result<S::Output, SubmitError> {
        let mut out = self.submit_many(vec![code])?;
        debug_assert_eq!(out.len(), 1);
        out.pop().ok_or(SubmitError::WorkerLost)
    }

    /// Scores a batch of contracts through the queue: all jobs are
    /// enqueued atomically (all admitted or none), then the call blocks
    /// until every score arrives, returned in input order.
    ///
    /// # Errors
    ///
    /// As [`MicroBatcher::submit`]; `QueueFull` when the *whole* batch
    /// does not fit.
    pub fn submit_many(&self, codes: Vec<Bytecode>) -> Result<Vec<S::Output>, SubmitError> {
        if codes.is_empty() {
            return Ok(Vec::new());
        }
        let receivers: Vec<Receiver<S::Output>> = {
            let mut st = self.shared.state.lock().unwrap();
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.jobs.len() + codes.len() > self.shared.cfg.capacity {
                return Err(SubmitError::QueueFull {
                    capacity: self.shared.cfg.capacity,
                });
            }
            codes
                .into_iter()
                .map(|code| {
                    let (reply, rx) = sync_channel(1);
                    st.jobs.push_back(Job { code, reply });
                    rx
                })
                .collect()
        };
        // Wake every worker: one may be mid-coalesce (waiting for
        // batch-mates) while another sits idle; notify_one could land on
        // the wrong sleeper.
        self.shared.wake.notify_all();
        receivers
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| SubmitError::WorkerLost))
            .collect()
    }

    /// Stops accepting new jobs, drains everything already queued, and
    /// joins the workers. Every job admitted before the call still gets
    /// scored and delivered.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.state.lock().unwrap().closed = true;
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<S: CodeScorer> Drop for MicroBatcher<S> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().closed = true;
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One warm worker: wake on work, coalesce up to `max_batch` jobs within
/// `batch_wait`, score them in one call, deliver, repeat. Exits when the
/// queue is closed *and* empty — the drain half of the shutdown contract.
fn worker_loop<S: CodeScorer>(shared: &Shared<S>) {
    loop {
        let batch: Vec<Job<S::Output>> = {
            let mut st = shared.state.lock().unwrap();
            // Sleep until there is work (or a drained shutdown).
            loop {
                if !st.jobs.is_empty() {
                    break;
                }
                if st.closed {
                    return;
                }
                st = shared.wake.wait(st).unwrap();
            }
            // Dynamic coalescing: give batch-mates `batch_wait` to arrive,
            // but never hold a full batch or stall a drain.
            if st.jobs.len() < shared.cfg.max_batch
                && !st.closed
                && !shared.cfg.batch_wait.is_zero()
            {
                let deadline = Instant::now() + shared.cfg.batch_wait;
                while st.jobs.len() < shared.cfg.max_batch && !st.closed {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        break;
                    };
                    let (guard, timeout) = shared.wake.wait_timeout(st, remaining).unwrap();
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let take = st.jobs.len().min(shared.cfg.max_batch);
            st.jobs.drain(..take).collect()
        };

        let (codes, replies): (Vec<Bytecode>, Vec<SyncSender<S::Output>>) =
            batch.into_iter().map(|j| (j.code, j.reply)).unzip();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .scored
            .fetch_add(codes.len() as u64, Ordering::Relaxed);
        shared
            .max_batch_seen
            .fetch_max(codes.len(), Ordering::Relaxed);

        // A panicking scorer must not take the worker (and with it the
        // whole queue) down: the batch's submitters see WorkerLost via
        // their dropped reply slots and the worker lives on.
        let scores = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.scorer.score_many(&codes)
        }));
        match scores {
            Ok(scores) => {
                debug_assert_eq!(scores.len(), replies.len());
                for (reply, score) in replies.into_iter().zip(scores) {
                    // A submitter that vanished just drops its receiver;
                    // nobody else cares about this score.
                    let _ = reply.send(score);
                }
                if let Some(on_batch) = &shared.hooks.on_batch {
                    on_batch();
                }
            }
            Err(payload) => {
                if let Some(on_panic) = &shared.hooks.on_panic {
                    on_panic(panic_message(payload.as_ref()));
                }
                drop(replies);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic test scorer: output = first byte of the code.
    struct ByteScorer;
    impl CodeScorer for ByteScorer {
        type Output = u8;
        fn score_many(&self, codes: &[Bytecode]) -> Vec<u8> {
            codes
                .iter()
                .map(|c| c.as_bytes().first().copied().unwrap_or(0))
                .collect()
        }
    }

    fn code(b: u8) -> Bytecode {
        Bytecode::new(vec![b, 0x00])
    }

    #[test]
    fn submit_returns_the_scorer_output() {
        let q = MicroBatcher::start(ByteScorer, QueueConfig::default());
        assert_eq!(q.submit(code(7)).unwrap(), 7);
        assert_eq!(q.submit_many(vec![code(1), code(2)]).unwrap(), vec![1, 2]);
        let stats = q.stats();
        assert_eq!(stats.scored, 3);
        assert!(stats.batches >= 1);
        q.shutdown();
    }

    #[test]
    fn zero_worker_config_is_rejected() {
        let cfg = QueueConfig {
            workers: 0,
            ..QueueConfig::default()
        };
        assert!(std::panic::catch_unwind(|| MicroBatcher::start(ByteScorer, cfg)).is_err());
    }

    #[test]
    fn closed_queue_rejects_new_work_without_blocking() {
        let q = MicroBatcher::start(ByteScorer, QueueConfig::default());
        q.close();
        assert_eq!(q.submit(code(1)), Err(SubmitError::Closed));
    }

    #[test]
    fn env_knob_parses_and_falls_back() {
        assert_eq!(env_knob("PHK_TEST_KNOB_UNSET_XYZ", 42), 42);
        std::env::set_var("PHK_TEST_KNOB_SET_XYZ", "17");
        assert_eq!(env_knob("PHK_TEST_KNOB_SET_XYZ", 42), 17);
        std::env::set_var("PHK_TEST_KNOB_SET_XYZ", "zero?");
        assert_eq!(env_knob("PHK_TEST_KNOB_SET_XYZ", 42), 42);
        std::env::remove_var("PHK_TEST_KNOB_SET_XYZ");
    }

    #[test]
    fn scorer_panic_is_worker_lost_not_a_hang() {
        struct Bomb;
        impl CodeScorer for Bomb {
            type Output = u8;
            fn score_many(&self, codes: &[Bytecode]) -> Vec<u8> {
                if codes[0].as_bytes()[0] == 0xBB {
                    panic!("boom");
                }
                vec![1; codes.len()]
            }
        }
        let q = MicroBatcher::start(
            Bomb,
            QueueConfig {
                workers: 1,
                ..QueueConfig::default()
            },
        );
        assert_eq!(q.submit(code(0xBB)), Err(SubmitError::WorkerLost));
        // The worker survived the panic and keeps scoring.
        assert_eq!(q.submit(code(0x01)).unwrap(), 1);
        q.shutdown();
    }
}
