//! Criterion bench: the persistence layer's cold-start story. A saved
//! detector artifact must make "time to first score in a fresh process"
//! dramatically cheaper than retraining from raw bytecode — that gap is
//! the whole point of the train-once / serve-many artifact.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! baseline — `BENCH_artifact.json` (artifact size, save/load time, time
//! to first score from the artifact vs. retraining) — and asserts the
//! acceptance bar: cold start from the artifact is at least 5× faster
//! than retraining on the quick profile. `PHISHINGHOOK_BENCH_SMOKE=1`
//! shrinks the corpus to CI size; the assertion holds in both modes.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook::prelude::*;
use phishinghook_bench::json::Value;
use phishinghook_evm::Bytecode;
use phishinghook_synth::{generate_contract, Difficulty, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("PHISHINGHOOK_BENCH_SMOKE").is_some()
}

fn corpus_seed_size() -> u64 {
    if smoke_mode() {
        24
    } else {
        42
    }
}

fn timing_samples() -> usize {
    if smoke_mode() {
        5
    } else {
        10
    }
}

/// The acceptance bar: first score from a saved artifact beats
/// retrain-from-scratch by at least this factor.
const MIN_COLD_SPEEDUP: f64 = 5.0;

fn dataset() -> Dataset {
    let corpus = generate_corpus(&CorpusConfig::small(corpus_seed_size()));
    let chain = SimulatedChain::from_corpus(&corpus);
    extract_dataset(&chain, &BemConfig::default()).0
}

fn fresh_contract() -> Bytecode {
    let mut rng = StdRng::seed_from_u64(0xC01D);
    generate_contract(Family::ALL[0], Month(6), &Difficulty::default(), &mut rng)
}

/// The warm path a vendor pays once: decode + featurize + train.
fn retrain_first_score(data: &Dataset, contract: &Bytecode) -> (f64, f32) {
    let t0 = Instant::now();
    let ctx = EvalContext::new(data, &EvalProfile::quick());
    let detector = Detector::train(&ctx, ModelKind::RandomForest, 7);
    let score = detector.score_code(contract);
    (t0.elapsed().as_secs_f64() * 1e3, score)
}

/// The cold path every serving process pays instead: read + parse + score.
fn coldstart_first_score(path: &std::path::Path, contract: &Bytecode) -> (f64, f32) {
    let t0 = Instant::now();
    let detector = Detector::load(path).expect("load artifact");
    let score = detector.score_code(contract);
    (t0.elapsed().as_secs_f64() * 1e3, score)
}

fn write_baseline(c: &mut Criterion) {
    let data = dataset();
    let contract = fresh_contract();
    let dir = std::env::temp_dir().join(format!("phk_coldstart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("detector.phk");

    // Train once and persist; measure the save while we are at it.
    let ctx = EvalContext::new(&data, &EvalProfile::quick());
    let detector = Detector::train(&ctx, ModelKind::RandomForest, 7);
    let t_save = Instant::now();
    detector.save(&path).expect("save artifact");
    let save_ms = t_save.elapsed().as_secs_f64() * 1e3;
    let artifact_bytes = std::fs::metadata(&path).expect("stat").len();

    // Best-of-N timings for both paths.
    let (mut retrain_ms, mut cold_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut warm_score, mut cold_score) = (0.0f32, 0.0f32);
    let mut load_ms = f64::INFINITY;
    for _ in 0..timing_samples() {
        let (ms, score) = retrain_first_score(&data, &contract);
        retrain_ms = retrain_ms.min(ms);
        warm_score = score;
        let t_load = Instant::now();
        let _ = Detector::load(&path).expect("load artifact");
        load_ms = load_ms.min(t_load.elapsed().as_secs_f64() * 1e3);
        let (ms, score) = coldstart_first_score(&path, &contract);
        cold_ms = cold_ms.min(ms);
        cold_score = score;
    }
    assert_eq!(
        warm_score.to_bits(),
        cold_score.to_bits(),
        "cold-start score must be bit-identical to the training process"
    );
    let speedup = retrain_ms / cold_ms;
    assert!(
        speedup >= MIN_COLD_SPEEDUP,
        "cold-start regression: artifact first-score {cold_ms:.2} ms is only {speedup:.1}x \
         faster than retraining ({retrain_ms:.2} ms); bar is {MIN_COLD_SPEEDUP}x"
    );

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("artifact_coldstart".into())),
        ("model".into(), Value::Str(detector.kind().id().into())),
        (
            "trained_on".into(),
            Value::Num(detector.trained_on() as f64),
        ),
        ("artifact_bytes".into(), Value::Num(artifact_bytes as f64)),
        ("save_ms".into(), Value::Num(save_ms)),
        ("load_ms".into(), Value::Num(load_ms)),
        ("first_score_from_artifact_ms".into(), Value::Num(cold_ms)),
        ("first_score_via_retrain_ms".into(), Value::Num(retrain_ms)),
        ("coldstart_speedup".into(), Value::Num(speedup)),
    ]);
    if !smoke_mode() {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_artifact.json");
        std::fs::write(out, doc.render()).expect("write BENCH_artifact.json");
    }
    println!(
        "  baseline: artifact {artifact_bytes} B, first score {cold_ms:.2} ms cold vs \
         {retrain_ms:.2} ms retrain ({speedup:.1}x) -> BENCH_artifact.json"
    );

    let mut group = c.benchmark_group("artifact_coldstart");
    group.bench_function("load_and_first_score", |b| {
        b.iter(|| coldstart_first_score(&path, &contract))
    });
    group.bench_function("save", |b| b.iter(|| detector.save(&path).unwrap()));
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = write_baseline
}
criterion_main!(benches);
