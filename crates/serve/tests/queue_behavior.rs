//! Queue semantics under contention: coalescing is observable in batch
//! sizes (but invisible in results), a full queue fails fast, a closing
//! queue rejects new work yet drains everything already admitted.

use phishinghook::CodeScorer;
use phishinghook_evm::Bytecode;
use phishinghook_serve::{MicroBatcher, QueueConfig, SubmitError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scores a contract as its first byte, records every batch size, and
/// holds each `score_many` call at a gate until the test opens it —
/// which lets a test pin the worker mid-batch and control exactly what
/// has accumulated in the queue before the next drain.
struct GatedScorer {
    open: Mutex<bool>,
    cv: Condvar,
    batches: Mutex<Vec<usize>>,
    entered: AtomicUsize,
}

impl GatedScorer {
    fn new(open: bool) -> GatedScorer {
        GatedScorer {
            open: Mutex::new(open),
            cv: Condvar::new(),
            batches: Mutex::new(Vec::new()),
            entered: AtomicUsize::new(0),
        }
    }

    fn open_gate(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Spin until `n` `score_many` calls have started (i.e. a worker is
    /// parked at the gate), or panic after a generous timeout.
    fn await_entered(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(Instant::now() < deadline, "worker never reached the gate");
            std::thread::yield_now();
        }
    }
}

impl CodeScorer for GatedScorer {
    type Output = f32;

    fn score_many(&self, codes: &[Bytecode]) -> Vec<f32> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        drop(open);
        self.batches.lock().unwrap().push(codes.len());
        codes
            .iter()
            .map(|c| f32::from(c.as_bytes().first().copied().unwrap_or(0)))
            .collect()
    }
}

fn code(b: u8) -> Bytecode {
    Bytecode::new(vec![b, 0x00])
}

/// Spin until the queue holds exactly `n` jobs.
fn await_depth<S: CodeScorer + 'static>(batcher: &MicroBatcher<S>, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while batcher.depth() != n {
        assert!(Instant::now() < deadline, "queue never reached depth {n}");
        std::thread::yield_now();
    }
}

#[test]
fn concurrent_submitters_coalesce_into_one_batch() {
    // Worker 1 takes the first job and parks at the gate; seven more
    // submitters pile up behind it. When the gate opens, the second
    // drain must take all seven in ONE score_many call — and every
    // submitter still gets its own score.
    let cfg = QueueConfig {
        max_batch: 8,
        batch_wait: Duration::from_micros(50),
        capacity: 64,
        workers: 1,
    };
    let batcher = MicroBatcher::start(GatedScorer::new(false), cfg);
    let q = &batcher;
    std::thread::scope(|s| {
        let first = s.spawn(move || q.submit(code(0)));
        q.scorer().await_entered(1); // worker holds job 0 at the gate
        let rest: Vec<_> = (1u8..8)
            .map(|b| s.spawn(move || (b, q.submit(code(b)))))
            .collect();
        await_depth(&batcher, 7);
        batcher.scorer().open_gate();
        assert_eq!(first.join().unwrap(), Ok(0.0));
        for h in rest {
            let (b, got) = h.join().unwrap();
            assert_eq!(
                got,
                Ok(f32::from(b)),
                "submitter {b} got someone else's score"
            );
        }
    });
    let batches = batcher.scorer().batches.lock().unwrap().clone();
    assert_eq!(
        batches,
        vec![1, 7],
        "seven waiting jobs must coalesce into one batched call"
    );
    let stats = batcher.stats();
    assert_eq!(
        (stats.batches, stats.scored, stats.max_batch_seen),
        (2, 8, 7)
    );
    batcher.shutdown();
}

#[test]
fn full_queue_fails_fast_and_recovers() {
    let cfg = QueueConfig {
        max_batch: 4,
        batch_wait: Duration::from_micros(50),
        capacity: 2,
        workers: 1,
    };
    let batcher = MicroBatcher::start(GatedScorer::new(false), cfg);
    let q = &batcher;
    std::thread::scope(|s| {
        let held = s.spawn(move || q.submit(code(9)));
        q.scorer().await_entered(1); // worker busy, queue empty again
        let queued: Vec<_> = (1u8..=2)
            .map(|b| s.spawn(move || q.submit(code(b))))
            .collect();
        await_depth(&batcher, 2);

        // Admission control: overflow is an explicit, immediate error...
        assert_eq!(
            batcher.submit(code(7)),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        // ...and batch admission is atomic: no partial enqueue.
        assert_eq!(
            batcher.submit_many(vec![code(7), code(8)]),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(batcher.depth(), 2, "rejected jobs must not occupy slots");

        // Nothing admitted was lost: once the worker resumes, every
        // accepted job resolves.
        batcher.scorer().open_gate();
        assert_eq!(held.join().unwrap(), Ok(9.0));
        for (b, h) in (1u8..=2).zip(queued) {
            assert_eq!(h.join().unwrap(), Ok(f32::from(b)));
        }
    });
    // Queue turned over: new work is accepted again.
    assert_eq!(batcher.submit(code(5)), Ok(5.0));
    batcher.shutdown();
}

#[test]
fn shutdown_rejects_new_work_but_drains_admitted_jobs() {
    let cfg = QueueConfig {
        max_batch: 4,
        batch_wait: Duration::from_micros(50),
        capacity: 64,
        workers: 1,
    };
    let batcher = MicroBatcher::start(GatedScorer::new(false), cfg);
    let q = &batcher;
    let (queued, late) = std::thread::scope(|s| {
        let held = s.spawn(move || q.submit(code(1)));
        q.scorer().await_entered(1);
        let queued: Vec<_> = (2u8..=4)
            .map(|b| s.spawn(move || q.submit(code(b))))
            .collect();
        await_depth(&batcher, 3);

        // Close while three jobs are queued and one is in flight: the
        // gate opens only afterwards, so the drain provably runs with
        // the queue already closed.
        let closer = s.spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            q.scorer().open_gate();
        });

        q.close();
        let late = q.submit(code(9));
        closer.join().unwrap();
        let results: Vec<_> = queued.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(held.join().unwrap(), Ok(1.0));
        (results, late)
    });
    // New work after close is refused outright...
    assert_eq!(late, Err(SubmitError::Closed));
    // ...but every job admitted before close still got its exact score.
    assert_eq!(queued, vec![Ok(2.0), Ok(3.0), Ok(4.0)]);
    let stats = batcher.stats();
    assert_eq!(stats.scored, 4, "drain must score all admitted jobs");
    batcher.shutdown();
}
