//! Deterministic drift scenarios: a simulated chain whose late months
//! break the early-month feature↔label relationship, plus the baseline
//! model trained before the break.
//!
//! The injection is a *label shift*: after [`DriftScenario::drift_from`],
//! freshly generated contracts from the **benign** families are deployed
//! carrying the explorer's `Phish/Hack` flag — the shape of campaign
//! rotation, where new scams adopt the idioms of legitimate code. A model
//! trained on the early months confidently scores them benign, its
//! rolling Brier score collapses, and the drift watcher fires
//! deterministically.

use phishinghook::{extract_dataset, BemConfig};
use phishinghook::{Detector, EvalContext, EvalProfile, ModelKind};
use phishinghook_chain::{Address, DeploymentRecord, SimulatedChain};
use phishinghook_synth::{
    generate_contract, generate_corpus, ContractClass, CorpusConfig, Difficulty, Family, Month,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Nonce offset for injected deployments, far above any corpus nonce.
const DRIFT_NONCE_BASE: u64 = 1 << 40;

/// A reproducible drifted-chain recipe.
#[derive(Debug, Clone)]
pub struct DriftScenario {
    /// Base corpus deployed first (the calm months).
    pub corpus: CorpusConfig,
    /// First month of the injected shift.
    pub drift_from: Month,
    /// Injected flagged-but-benign-shaped deployments.
    pub drift_count: usize,
    /// Seed for the injected contracts.
    pub seed: u64,
}

impl DriftScenario {
    /// A small, fast scenario for tests and benches.
    pub fn small(seed: u64) -> Self {
        DriftScenario {
            corpus: CorpusConfig::small(seed),
            drift_from: Month(8),
            drift_count: 120,
            seed,
        }
    }

    /// Deploys the base corpus, then appends the drift injection so a
    /// chain replay hits the shift after the calm phase.
    pub fn build(&self) -> SimulatedChain {
        let mut chain = SimulatedChain::from_corpus(&generate_corpus(&self.corpus));
        let benign: Vec<Family> = Family::ALL
            .iter()
            .copied()
            .filter(|f| f.class() == ContractClass::Benign)
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD21F7);
        let span = (Month::LAST.0 - self.drift_from.0) as usize + 1;
        for i in 0..self.drift_count {
            let family = benign[i % benign.len()];
            let month = Month(self.drift_from.0 + (i % span) as u8);
            let bytecode = generate_contract(family, month, &Difficulty::default(), &mut rng);
            chain.deploy(DeploymentRecord {
                address: Address::derived(DRIFT_NONCE_BASE + i as u64),
                bytecode,
                month,
                family,
                flagged: true,
            });
        }
        chain
    }
}

/// Trains the pre-drift baseline the paper's temporal split would keep:
/// a detector fitted on the chain's training window (months 0–3) only.
pub fn baseline_detector(
    chain: &SimulatedChain,
    kind: ModelKind,
    profile: &EvalProfile,
    seed: u64,
) -> Arc<Detector> {
    let cfg = BemConfig {
        from: Month::FIRST,
        to: Month(3),
        balance: true,
        seed,
    };
    let (dataset, _) = extract_dataset(chain, &cfg);
    let ctx = EvalContext::new(&dataset, profile);
    Arc::new(Detector::train(&ctx, kind, seed))
}
