//! Opcode-occurrence histograms — the HSC representation.
//!
//! "For each contract bytecode, a histogram of the occurrences of opcodes is
//! created. It builds a vector of length equal to the number of unique
//! opcodes inside the training set. The vector is directly served as input
//! (i.e., without normalized nor standardized steps)." (§IV-B)

use phishinghook_evm::disasm::Disassembler;
use phishinghook_evm::Bytecode;
use std::collections::HashMap;

/// Histogram encoder over a vocabulary fitted on the training set.
///
/// # Examples
///
/// ```
/// use phishinghook_evm::Bytecode;
/// use phishinghook_features::HistogramEncoder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let train = vec![Bytecode::from_hex("0x6080604052")?];
/// let encoder = HistogramEncoder::fit(&train);
/// // Vocabulary: PUSH1 and MSTORE.
/// assert_eq!(encoder.vocabulary().len(), 2);
/// let features = encoder.encode(&train[0]);
/// assert_eq!(features.iter().sum::<f32>(), 3.0); // raw counts
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HistogramEncoder {
    vocabulary: Vec<String>,
    index: HashMap<String, usize>,
}

impl HistogramEncoder {
    /// Builds the vocabulary from the unique mnemonics observed in the
    /// training bytecodes, in order of first appearance.
    pub fn fit(training: &[Bytecode]) -> Self {
        let mut vocabulary = Vec::new();
        let mut index = HashMap::new();
        for code in training {
            for instr in Disassembler::new(code.as_bytes()) {
                let name = instr.mnemonic.name().into_owned();
                if !index.contains_key(&name) {
                    index.insert(name.clone(), vocabulary.len());
                    vocabulary.push(name);
                }
            }
        }
        HistogramEncoder { vocabulary, index }
    }

    /// The fitted vocabulary (unique mnemonics in the training set).
    pub fn vocabulary(&self) -> &[String] {
        &self.vocabulary
    }

    /// Encodes one bytecode as raw opcode counts over the vocabulary.
    /// Mnemonics unseen at fit time are ignored, as with any fixed
    /// vocabulary.
    pub fn encode(&self, code: &Bytecode) -> Vec<f32> {
        let mut hist = vec![0.0f32; self.vocabulary.len()];
        for instr in Disassembler::new(code.as_bytes()) {
            if let Some(&i) = self.index.get(instr.mnemonic.name().as_ref()) {
                hist[i] += 1.0;
            }
        }
        hist
    }

    /// Encodes a batch into row-major `(n, vocab)` features.
    pub fn encode_batch(&self, codes: &[Bytecode]) -> Vec<Vec<f32>> {
        codes.iter().map(|c| self.encode(c)).collect()
    }

    /// Index of a mnemonic in the feature vector, if in vocabulary.
    pub fn feature_index(&self, mnemonic: &str) -> Option<usize> {
        self.index.get(mnemonic).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(hex: &str) -> Bytecode {
        Bytecode::from_hex(hex).unwrap()
    }

    #[test]
    fn counts_are_raw_not_normalized() {
        let train = vec![code("0x60806040526080")]; // PUSH1 x3, MSTORE
        let enc = HistogramEncoder::fit(&train);
        let h = enc.encode(&train[0]);
        let push1 = enc.feature_index("PUSH1").unwrap();
        let mstore = enc.feature_index("MSTORE").unwrap();
        assert_eq!(h[push1], 3.0);
        assert_eq!(h[mstore], 1.0);
    }

    #[test]
    fn unseen_mnemonics_are_ignored() {
        let train = vec![code("0x6080")]; // only PUSH1
        let enc = HistogramEncoder::fit(&train);
        let h = enc.encode(&code("0x01")); // ADD, not in vocab
        assert_eq!(h, vec![0.0]);
    }

    #[test]
    fn vocabulary_is_deduplicated_first_seen_order() {
        let train = vec![code("0x6080604052"), code("0x52020202")];
        let enc = HistogramEncoder::fit(&train);
        assert_eq!(enc.vocabulary(), &["PUSH1".to_string(), "MSTORE".to_string(), "MUL".to_string()]);
    }

    #[test]
    fn empty_bytecode_gives_zero_vector() {
        let train = vec![code("0x6080")];
        let enc = HistogramEncoder::fit(&train);
        assert_eq!(enc.encode(&code("0x")), vec![0.0]);
    }

    #[test]
    fn batch_matches_single() {
        let train = vec![code("0x6080604052"), code("0x0102")];
        let enc = HistogramEncoder::fit(&train);
        let batch = enc.encode_batch(&train);
        assert_eq!(batch[0], enc.encode(&train[0]));
        assert_eq!(batch[1], enc.encode(&train[1]));
    }
}
