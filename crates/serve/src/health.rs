//! The supervised degraded-mode state machine behind `GET /healthz`.
//!
//! A serving replica must never crash-loop its way out of the fleet: when
//! scoring workers keep panicking or artifact reloads keep failing, the
//! replica *stays up* on its last good model and flips `/healthz` to
//! `"degraded"` so the fleet's balancer (and an operator) can see it.
//! [`HealthState`] is that breaker: two independent failure streaks —
//! worker panics and reload failures — each trip it at the configured
//! threshold, and the corresponding success (a clean scored batch, a
//! clean reload) re-arms its streak. The replica reports `"ok"` again
//! only when *no* streak is tripped, and every recovery is counted.
//!
//! The monotone counters (`reload_attempts`, `reload_failures`,
//! `worker_panics`, `drift_signals`, `retrains`, `recoveries`) are the
//! observability the ROADMAP's fleet item asks for; they only ever grow.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default consecutive-failure threshold that trips the breaker
/// (`PHISHINGHOOK_BREAKER_THRESHOLD`).
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;

#[derive(Debug, Default)]
struct Streaks {
    worker_panics: u32,
    reload_failures: u32,
    last_error: Option<String>,
}

/// The crash-loop breaker and monotone health counters one server carries.
#[derive(Debug)]
pub struct HealthState {
    threshold: u32,
    streaks: Mutex<Streaks>,
    reload_attempts: AtomicU64,
    reload_failures: AtomicU64,
    worker_panics: AtomicU64,
    recoveries: AtomicU64,
    drift_signals: AtomicU64,
    retrains: AtomicU64,
}

/// A point-in-time copy of the health state, as `/healthz` reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// True when either failure streak has tripped the breaker.
    pub degraded: bool,
    /// The most recent failure's description (sticky until overwritten;
    /// survives recovery as a post-mortem breadcrumb).
    pub last_error: Option<String>,
    /// Artifact reloads attempted.
    pub reload_attempts: u64,
    /// Artifact reloads that failed (validation, decode, or engine
    /// mismatch).
    pub reload_failures: u64,
    /// Scoring-worker panics absorbed.
    pub worker_panics: u64,
    /// Degraded → ok transitions.
    pub recoveries: u64,
    /// Drift signals observed by the co-located ingest loop.
    pub drift_signals: u64,
    /// Retrains completed by the co-located ingest loop.
    pub retrains: u64,
}

impl HealthState {
    /// A breaker tripping after `threshold` consecutive failures of
    /// either kind (clamped to at least 1).
    pub fn new(threshold: u32) -> Self {
        HealthState {
            threshold: threshold.max(1),
            streaks: Mutex::new(Streaks::default()),
            reload_attempts: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            drift_signals: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
        }
    }

    /// [`HealthState::new`] with the `PHISHINGHOOK_BREAKER_THRESHOLD`
    /// environment override applied.
    pub fn from_env() -> Self {
        let threshold = std::env::var("PHISHINGHOOK_BREAKER_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_BREAKER_THRESHOLD);
        HealthState::new(threshold)
    }

    /// The configured breaker threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn tripped(&self, streaks: &Streaks) -> bool {
        streaks.worker_panics >= self.threshold || streaks.reload_failures >= self.threshold
    }

    /// Runs `mutate` on the streaks and counts a recovery when it flips
    /// the breaker from tripped to clear.
    fn update(&self, mutate: impl FnOnce(&mut Streaks)) {
        let mut streaks = self.streaks.lock().unwrap();
        let was_degraded = self.tripped(&streaks);
        mutate(&mut streaks);
        if was_degraded && !self.tripped(&streaks) {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A scoring worker panicked (the queue absorbed it). Extends the
    /// panic streak; at the threshold the breaker trips.
    pub fn record_worker_panic(&self, message: &str) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
        self.update(|s| {
            s.worker_panics = s.worker_panics.saturating_add(1);
            s.last_error = Some(format!("scoring worker panicked: {message}"));
        });
    }

    /// A batch scored cleanly. Clears only the panic streak — scoring
    /// traffic flowing must not mask a reload crash loop.
    pub fn record_batch_success(&self) {
        self.update(|s| s.worker_panics = 0);
    }

    /// An artifact reload is starting.
    pub fn record_reload_attempt(&self) {
        self.reload_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// An artifact reload failed (invalid candidate, decode error, or
    /// engine mismatch). Extends the reload streak.
    pub fn record_reload_failure(&self, message: &str) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
        self.update(|s| {
            s.reload_failures = s.reload_failures.saturating_add(1);
            s.last_error = Some(format!("artifact reload failed: {message}"));
        });
    }

    /// An artifact reload installed cleanly. Clears only the reload
    /// streak.
    pub fn record_reload_success(&self) {
        self.update(|s| s.reload_failures = 0);
    }

    /// The co-located ingest loop observed a drift signal.
    pub fn record_drift(&self) {
        self.drift_signals.fetch_add(1, Ordering::Relaxed);
    }

    /// The co-located ingest loop completed a retrain.
    pub fn record_retrain(&self) {
        self.retrains.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the breaker is currently tripped.
    pub fn is_degraded(&self) -> bool {
        self.tripped(&self.streaks.lock().unwrap())
    }

    /// A consistent point-in-time copy for `/healthz`.
    pub fn snapshot(&self) -> HealthSnapshot {
        let streaks = self.streaks.lock().unwrap();
        HealthSnapshot {
            degraded: self.tripped(&streaks),
            last_error: streaks.last_error.clone(),
            reload_attempts: self.reload_attempts.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            drift_signals: self.drift_signals.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_streak_trips_and_success_rearms() {
        let health = HealthState::new(2);
        assert!(!health.is_degraded());
        health.record_worker_panic("boom");
        assert!(!health.is_degraded());
        health.record_worker_panic("boom again");
        assert!(health.is_degraded());
        let snap = health.snapshot();
        assert_eq!(snap.worker_panics, 2);
        assert!(snap.last_error.unwrap().contains("boom again"));
        health.record_batch_success();
        assert!(!health.is_degraded());
        assert_eq!(health.snapshot().recoveries, 1);
        // Monotone counter is untouched by recovery.
        assert_eq!(health.snapshot().worker_panics, 2);
    }

    #[test]
    fn reload_streak_is_independent_of_scoring_traffic() {
        let health = HealthState::new(2);
        health.record_reload_attempt();
        health.record_reload_failure("bad gen 7");
        health.record_reload_attempt();
        health.record_reload_failure("bad gen 7 again");
        assert!(health.is_degraded());
        // Scoring traffic flowing does NOT clear a reload crash loop.
        health.record_batch_success();
        assert!(health.is_degraded());
        health.record_reload_success();
        assert!(!health.is_degraded());
        let snap = health.snapshot();
        assert_eq!((snap.reload_attempts, snap.reload_failures), (2, 2));
        assert_eq!(snap.recoveries, 1);
    }

    #[test]
    fn both_streaks_must_clear_before_recovery() {
        let health = HealthState::new(1);
        health.record_worker_panic("p");
        health.record_reload_failure("r");
        assert!(health.is_degraded());
        health.record_batch_success();
        // Reload streak still tripped.
        assert!(health.is_degraded());
        assert_eq!(health.snapshot().recoveries, 0);
        health.record_reload_success();
        assert!(!health.is_degraded());
        assert_eq!(health.snapshot().recoveries, 1);
    }

    #[test]
    fn drift_and_retrain_counters_accumulate() {
        let health = HealthState::new(3);
        health.record_drift();
        health.record_drift();
        health.record_retrain();
        let snap = health.snapshot();
        assert_eq!((snap.drift_signals, snap.retrains), (2, 1));
        assert!(!snap.degraded);
    }
}
