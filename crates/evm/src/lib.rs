//! EVM substrate for PhishingHook: the Shanghai opcode registry, contract
//! bytecode representation and a total disassembler.
//!
//! This crate reproduces two pieces of the paper's infrastructure:
//!
//! * **Table I** — the complete Shanghai-fork opcode table (144 opcodes with
//!   byte value, mnemonic, static gas cost and description), in
//!   [`opcodes`]; and
//! * the **Bytecode Disassembler Module (BDM)** — the enhanced `evmdasm`
//!   equivalent that turns deployed bytecode into `(mnemonic, operand, gas)`
//!   triples, in [`disasm`], including the `PUSH0`/`INVALID` additions the
//!   authors contributed.
//!
//! # Examples
//!
//! ```
//! use phishinghook_evm::{disasm::disassemble, opcodes::op, Bytecode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the canonical Solidity prologue and inspect it.
//! let code = Bytecode::new(vec![op::PUSH1, 0x80, op::PUSH1, 0x40, op::MSTORE]);
//! let instrs = disassemble(code.as_bytes());
//! assert_eq!(instrs.len(), 3);
//! assert_eq!(instrs[2].mnemonic.name(), "MSTORE");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod bytecode;
pub mod cache;
pub mod disasm;
pub mod opcodes;
pub mod opid;
pub mod stream;

pub use batch::CacheBatch;
pub use bytecode::{Bytecode, ParseBytecodeError};
pub use cache::{decode_count, DisasmCache};
pub use disasm::{
    disassemble, disassemble_bytecode, Disassembler, Instruction, Mnemonic, OpcodeStream, StreamOp,
};
pub use opcodes::{
    opcode_by_mnemonic, opcode_info, OpCategory, OpcodeInfo, SHANGHAI_OPCODES,
    SHANGHAI_OPCODE_COUNT,
};
pub use opid::OpId;
pub use stream::{
    CodeLogCursor, CodeLogEntry, CodeLogError, CodeLogTailer, CodeLogWriter, RecordMeta,
    TailConfig, TailEvent,
};

#[cfg(test)]
mod proptests {
    use crate::disasm::{disassemble, to_csv};
    use crate::Bytecode;
    use proptest::prelude::*;

    proptest! {
        /// The disassembler is total: any byte soup decodes without panicking
        /// and the decoded sizes tile the input exactly.
        #[test]
        fn disassembly_tiles_input(code in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let instrs = disassemble(&code);
            let mut expected = 0usize;
            for instr in &instrs {
                prop_assert_eq!(instr.offset, expected);
                expected += instr.size();
            }
            prop_assert_eq!(expected, code.len());
        }

        /// Only the final instruction may be truncated.
        #[test]
        fn truncation_only_at_tail(code in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let instrs = disassemble(&code);
            for (i, instr) in instrs.iter().enumerate() {
                if instr.truncated {
                    prop_assert_eq!(i, instrs.len() - 1);
                }
            }
        }

        /// Hex round trip: parse(to_hex(x)) == x.
        #[test]
        fn hex_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let code = Bytecode::new(bytes);
            let parsed = Bytecode::from_hex(&code.to_hex()).unwrap();
            prop_assert_eq!(code, parsed);
        }

        /// CSV always has exactly one row per instruction plus a header.
        #[test]
        fn csv_row_count(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let instrs = disassemble(&code);
            let csv = to_csv(&instrs);
            prop_assert_eq!(csv.lines().count(), instrs.len() + 1);
        }
    }
}
