//! The replica side of the publish seam: watch a publish directory's
//! `CURRENT` pointer and install new generations — but only after full
//! validation, and never backwards.
//!
//! [`ArtifactWatcher`] is the safety contract a serving replica relies
//! on: every candidate generation is read completely and checksum-
//! validated ([`OwnedArtifact::from_vec`]) *before* it is reported as
//! [`WatchOutcome::Installed`]. A torn or bit-flipped publish surfaces as
//! [`WatchOutcome::Rejected`] — the replica keeps serving its last good
//! generation and the watcher retries with jittered exponential backoff
//! until a newer valid generation appears. A bad publish can never take
//! down or roll back a replica.
//!
//! # Examples
//!
//! ```
//! use phishinghook_artifact::publish::ArtifactPublisher;
//! use phishinghook_artifact::watch::{ArtifactWatcher, WatchConfig, WatchOutcome};
//! use phishinghook_artifact::ArtifactWriter;
//!
//! # fn main() -> Result<(), phishinghook_artifact::ArtifactError> {
//! let dir = std::env::temp_dir().join(format!("phk_watch_doc_{}", std::process::id()));
//! let mut publisher = ArtifactPublisher::open(&dir)?;
//! let mut artifact = ArtifactWriter::new();
//! artifact.section("meta", b"v1".to_vec());
//! publisher.publish(artifact.into_bytes())?;
//!
//! let mut watcher = ArtifactWatcher::new(&dir, WatchConfig::default());
//! match watcher.poll_once() {
//!     WatchOutcome::Installed(valid) => assert_eq!(valid.generation, 1),
//!     other => panic!("expected an install, got {other:?}"),
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use crate::publish::ArtifactPublisher;
use crate::{ArtifactError, OwnedArtifact};
use phishinghook_retry::policy::{Backoff, Clock, RetryPolicy};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Tuning for an [`ArtifactWatcher`].
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Steady-state delay between polls when nothing has changed.
    pub poll: Duration,
    /// Backoff policy applied while the current publish is invalid.
    pub backoff: RetryPolicy,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            poll: Duration::from_millis(200),
            backoff: RetryPolicy::new(Duration::from_millis(50), Duration::from_secs(2)),
            seed: 0x5eed,
        }
    }
}

impl WatchConfig {
    /// Reads overrides from the environment: `PHISHINGHOOK_WATCH_POLL_MS`
    /// (steady-state poll) and `PHISHINGHOOK_RELOAD_BACKOFF_MS` (initial
    /// backoff while a publish is invalid).
    pub fn from_env() -> Self {
        let mut cfg = WatchConfig::default();
        if let Some(poll) = env_ms("PHISHINGHOOK_WATCH_POLL_MS") {
            cfg.poll = poll.max(Duration::from_millis(1));
        }
        if let Some(initial) = env_ms("PHISHINGHOOK_RELOAD_BACKOFF_MS") {
            cfg.backoff.initial = initial.max(Duration::from_millis(1));
            cfg.backoff.max_delay = cfg.backoff.max_delay.max(cfg.backoff.initial);
        }
        cfg
    }
}

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// A fully validated artifact generation, safe to swap into a serving
/// slot.
#[derive(Debug, Clone)]
pub struct ValidArtifact {
    /// The generation number `CURRENT` named.
    pub generation: u64,
    /// The immutable `gen-<N>.phk` path the bytes came from.
    pub path: PathBuf,
    /// The validated, zero-copy-sectioned artifact.
    pub artifact: OwnedArtifact,
}

/// What one watcher poll observed.
#[derive(Debug)]
pub enum WatchOutcome {
    /// No newer generation than the installed one (or nothing published
    /// yet).
    Unchanged,
    /// A newer generation validated completely and is now the installed
    /// one.
    Installed(ValidArtifact),
    /// The directory points at something invalid — an unreadable or
    /// corrupt `CURRENT`, or a candidate artifact that failed validation.
    /// The installed generation is untouched.
    Rejected {
        /// The candidate generation, when `CURRENT` itself was readable.
        generation: Option<u64>,
        /// Why it was rejected.
        error: ArtifactError,
    },
}

/// Cumulative counters for one watcher's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchStats {
    /// Total polls.
    pub polls: u64,
    /// Generations installed.
    pub installs: u64,
    /// Candidate generations rejected as invalid.
    pub rejects: u64,
}

/// Polls a publish directory and installs only fully valid, strictly
/// newer generations. See the module docs for the safety contract.
#[derive(Debug)]
pub struct ArtifactWatcher {
    dir: PathBuf,
    config: WatchConfig,
    /// Highest generation validated and installed; 0 = none yet.
    installed: u64,
    backoff: Backoff,
    stats: WatchStats,
}

impl ArtifactWatcher {
    /// Watches `dir` with nothing installed yet.
    pub fn new(dir: impl AsRef<Path>, config: WatchConfig) -> Self {
        Self::with_installed(dir, config, 0)
    }

    /// Watches `dir` with `generation` already installed (a replica that
    /// loaded its first artifact out-of-band); 0 means none.
    pub fn with_installed(dir: impl AsRef<Path>, config: WatchConfig, generation: u64) -> Self {
        let backoff = Backoff::new(config.backoff.with_jitter(0.2), config.seed);
        ArtifactWatcher {
            dir: dir.as_ref().to_path_buf(),
            config,
            installed: generation,
            backoff,
            stats: WatchStats::default(),
        }
    }

    /// The watched publish directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The installed generation, if any.
    pub fn installed_generation(&self) -> Option<u64> {
        (self.installed > 0).then_some(self.installed)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WatchStats {
        self.stats
    }

    /// The delay to sleep before the next poll, given the last outcome:
    /// the steady poll interval after `Unchanged`/`Installed`, the next
    /// backed-off delay after `Rejected`.
    pub fn next_delay(&mut self, last: &WatchOutcome) -> Duration {
        match last {
            WatchOutcome::Rejected { .. } => self.backoff.next_delay(),
            _ => {
                self.backoff.reset();
                self.config.poll
            }
        }
    }

    /// One poll: resolve `CURRENT`, and if it names a strictly newer
    /// generation, read and fully validate it before reporting an
    /// install. Never mutates the installed generation on any failure.
    pub fn poll_once(&mut self) -> WatchOutcome {
        self.stats.polls += 1;
        let current = match ArtifactPublisher::current(&self.dir) {
            Ok(Some(current)) => current,
            Ok(None) => return WatchOutcome::Unchanged,
            Err(error) => {
                self.stats.rejects += 1;
                return WatchOutcome::Rejected {
                    generation: None,
                    error,
                };
            }
        };
        if current.generation <= self.installed {
            return WatchOutcome::Unchanged;
        }
        let validated = std::fs::read(&current.path)
            .map_err(ArtifactError::from)
            .and_then(OwnedArtifact::from_vec);
        match validated {
            Ok(artifact) => {
                self.installed = current.generation;
                self.stats.installs += 1;
                WatchOutcome::Installed(ValidArtifact {
                    generation: current.generation,
                    path: current.path,
                    artifact,
                })
            }
            Err(error) => {
                self.stats.rejects += 1;
                WatchOutcome::Rejected {
                    generation: Some(current.generation),
                    error,
                }
            }
        }
    }

    /// Polls (sleeping on `clock` between attempts) until a newer valid
    /// generation installs or `deadline` elapses.
    ///
    /// # Errors
    ///
    /// The last rejection's error when the deadline passes — or a
    /// [`ArtifactError::MissingSection`]-free placeholder
    /// [`ArtifactError::Corrupt`] when nothing was ever published.
    pub fn wait_for_update(
        &mut self,
        clock: &impl Clock,
        deadline: Duration,
    ) -> Result<ValidArtifact, ArtifactError> {
        let started = clock.now();
        let mut last_error: Option<ArtifactError> = None;
        loop {
            let outcome = self.poll_once();
            match outcome {
                WatchOutcome::Installed(valid) => return Ok(valid),
                WatchOutcome::Unchanged => {}
                WatchOutcome::Rejected { ref error, .. } => {
                    last_error = Some(match error {
                        ArtifactError::Io(e) => {
                            ArtifactError::Io(std::io::Error::new(e.kind(), e.to_string()))
                        }
                        other => ArtifactError::Corrupt(other.to_string()),
                    });
                }
            }
            if clock.now().duration_since(started) >= deadline {
                return Err(last_error.unwrap_or_else(|| {
                    ArtifactError::Corrupt(format!(
                        "no valid artifact appeared in {} within {deadline:?}",
                        self.dir.display()
                    ))
                }));
            }
            let delay = self.next_delay(&outcome);
            clock.sleep(delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArtifactWriter;
    use phishinghook_retry::{policy::FakeClock, FaultPlan};

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join("phk_watch_tests")
            .join(format!("{tag}_{}", std::process::id()))
    }

    /// A small but real artifact whose payload depends on `marker`, so
    /// each generation has distinct, recognisable bytes.
    fn valid_artifact(marker: u64) -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.section("meta", marker.to_le_bytes().to_vec());
        w.section(
            "payload",
            (0..64u8)
                .map(|i| i.wrapping_mul(marker as u8 | 1))
                .collect(),
        );
        w.into_bytes()
    }

    fn fast_config() -> WatchConfig {
        WatchConfig {
            poll: Duration::from_millis(1),
            backoff: RetryPolicy::new(Duration::from_millis(1), Duration::from_millis(8)),
            seed: 3,
        }
    }

    #[test]
    fn installs_only_newer_generations() {
        let dir = temp_dir("newer");
        std::fs::remove_dir_all(&dir).ok();
        let mut publisher = ArtifactPublisher::open(&dir).unwrap();
        let mut watcher = ArtifactWatcher::new(&dir, fast_config());
        assert!(matches!(watcher.poll_once(), WatchOutcome::Unchanged));
        publisher.publish(valid_artifact(1)).unwrap();
        match watcher.poll_once() {
            WatchOutcome::Installed(valid) => {
                assert_eq!(valid.generation, 1);
                assert_eq!(valid.artifact.section("meta").unwrap(), 1u64.to_le_bytes());
            }
            other => panic!("expected install, got {other:?}"),
        }
        // Same generation again: no churn.
        assert!(matches!(watcher.poll_once(), WatchOutcome::Unchanged));
        publisher.publish(valid_artifact(2)).unwrap();
        publisher.publish(valid_artifact(3)).unwrap();
        // The watcher jumps straight to the newest generation.
        match watcher.poll_once() {
            WatchOutcome::Installed(valid) => assert_eq!(valid.generation, 3),
            other => panic!("expected install, got {other:?}"),
        }
        assert_eq!(watcher.stats().installs, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_publish_is_rejected_without_rollback() {
        let dir = temp_dir("reject");
        std::fs::remove_dir_all(&dir).ok();
        let mut publisher = ArtifactPublisher::open(&dir).unwrap();
        publisher.publish(valid_artifact(1)).unwrap();
        let mut watcher = ArtifactWatcher::new(&dir, fast_config());
        assert!(matches!(watcher.poll_once(), WatchOutcome::Installed(_)));
        // A "publish" that bypasses validation: gen-2 exists but is
        // bit-flipped garbage, and CURRENT points at it.
        let mut bad = valid_artifact(2);
        let tail = bad.len() - 32;
        FaultPlan::new(11).bit_flip(&mut bad[tail..]);
        std::fs::write(dir.join("gen-2.phk"), &bad).unwrap();
        std::fs::write(dir.join("CURRENT"), "gen-2.phk").unwrap();
        match watcher.poll_once() {
            WatchOutcome::Rejected { generation, .. } => assert_eq!(generation, Some(2)),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Still on generation 1; rejection backs off, steady poll resets.
        assert_eq!(watcher.installed_generation(), Some(1));
        let rejected = watcher.poll_once();
        assert!(matches!(rejected, WatchOutcome::Rejected { .. }));
        let backoff_delay = watcher.next_delay(&rejected);
        assert!(backoff_delay <= Duration::from_millis(8));
        // Recovery: a *newer* valid generation (never a rollback).
        std::fs::remove_file(dir.join("gen-2.phk")).unwrap();
        std::fs::write(dir.join("CURRENT"), "gen-1.phk").unwrap();
        let mut publisher = ArtifactPublisher::open(&dir).unwrap();
        // The counter resumed past the damaged generation.
        let published = publisher.publish(valid_artifact(3)).unwrap();
        match watcher.poll_once() {
            WatchOutcome::Installed(valid) => {
                assert_eq!(valid.generation, published.generation)
            }
            other => panic!("expected install, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wait_for_update_times_out_on_the_fake_clock() {
        let dir = temp_dir("timeout");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let clock = FakeClock::new();
        let mut watcher = ArtifactWatcher::new(&dir, fast_config());
        let err = watcher
            .wait_for_update(&clock, Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, ArtifactError::Corrupt(_)));
        assert!(clock.total_slept() >= Duration::from_millis(20));
        std::fs::remove_dir_all(&dir).ok();
    }

    use proptest::prelude::*;

    proptest! {
        /// The satellite proptest: drive a watcher through a seeded storm
        /// of valid publishes interleaved with torn / bit-flipped /
        /// garbage states. Invariants: it never installs invalid bytes,
        /// never regresses to an older generation, and converges to the
        /// newest valid generation once the storm ends.
        #[test]
        fn watcher_never_installs_invalid(seed in any::<u64>()) {
            corruption_storm(seed);
        }
    }

    fn corruption_storm(seed: u64) {
        let dir = temp_dir(&format!("storm_{seed:x}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut plan = FaultPlan::new(seed);
        let mut publisher = ArtifactPublisher::open(&dir).unwrap();
        let mut watcher = ArtifactWatcher::new(&dir, fast_config());
        // generation -> the exact bytes that generation validly holds.
        let mut valid_gens: std::collections::HashMap<u64, Vec<u8>> =
            std::collections::HashMap::new();
        let mut last_installed = 0u64;

        let check = |outcome: WatchOutcome,
                     valid_gens: &std::collections::HashMap<u64, Vec<u8>>,
                     last_installed: &mut u64| {
            match outcome {
                WatchOutcome::Installed(valid) => {
                    assert!(
                        valid.generation > *last_installed,
                        "regressed from {last_installed} to {}",
                        valid.generation
                    );
                    let expected = valid_gens.get(&valid.generation).unwrap_or_else(|| {
                        panic!("installed unpublished gen {}", valid.generation)
                    });
                    assert_eq!(
                        &valid.artifact.bytes()[..],
                        &expected[..],
                        "installed bytes differ from the valid publish"
                    );
                    *last_installed = valid.generation;
                }
                WatchOutcome::Unchanged | WatchOutcome::Rejected { .. } => {}
            }
        };

        for step in 0..24u64 {
            match plan.choice(5) {
                // A clean publish.
                0 | 1 => {
                    let bytes = valid_artifact(seed ^ step);
                    let published = publisher.publish(bytes.clone()).unwrap();
                    valid_gens.insert(published.generation, bytes);
                }
                // A bit-flipped artifact installed behind CURRENT's back.
                // The flip targets the trailing section payload — bytes
                // the per-section checksum is guaranteed to cover (a flip
                // in un-checksummed container metadata, like a section
                // name, can legitimately still validate).
                2 => {
                    let generation = publisher.next_generation();
                    let mut bad = valid_artifact(seed ^ step ^ 0xbad);
                    let tail = bad.len() - 32;
                    plan.bit_flip(&mut bad[tail..]);
                    std::fs::write(dir.join(format!("gen-{generation}.phk")), &bad).unwrap();
                    std::fs::write(dir.join("CURRENT"), format!("gen-{generation}.phk")).unwrap();
                    // Skip the damaged number so later publishes are newer.
                    publisher = reopened_past(&dir, generation);
                }
                // A torn (truncated) artifact.
                3 => {
                    let generation = publisher.next_generation();
                    let full = valid_artifact(seed ^ step ^ 0x7ea5);
                    let torn = plan.tear(&full);
                    std::fs::write(dir.join(format!("gen-{generation}.phk")), &torn).unwrap();
                    std::fs::write(dir.join("CURRENT"), format!("gen-{generation}.phk")).unwrap();
                    publisher = reopened_past(&dir, generation);
                }
                // CURRENT itself replaced mid-write with garbage.
                _ => {
                    std::fs::write(dir.join("CURRENT"), b"gen-.phk.tmp garbage").unwrap();
                }
            }
            // A few polls per step, as a replica would.
            for _ in 0..2 {
                check(watcher.poll_once(), &valid_gens, &mut last_installed);
            }
        }

        // The storm ends with one final clean publish: the watcher must
        // converge to it.
        let final_bytes = valid_artifact(seed ^ 0xf17a1);
        let published = publisher.publish(final_bytes.clone()).unwrap();
        valid_gens.insert(published.generation, final_bytes);
        check(watcher.poll_once(), &valid_gens, &mut last_installed);
        assert_eq!(
            watcher.installed_generation(),
            Some(published.generation),
            "watcher failed to converge to the newest valid generation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Re-opens the publisher so its counter continues past a generation
    /// number the storm burned on a corrupt file.
    fn reopened_past(dir: &Path, burned: u64) -> ArtifactPublisher {
        let publisher = ArtifactPublisher::open(dir).unwrap();
        assert!(publisher.next_generation() > burned);
        publisher
    }
}
