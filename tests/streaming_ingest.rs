//! End-to-end streaming ingestion & online adaptation: the injected
//! drift scenario runs shift → `DriftSignal` → sliding-window retrain →
//! atomic republish → live hot-swap, with client traffic in flight the
//! whole time and zero dropped requests; plus property tests pinning the
//! bounded-RAM streaming store build bit-identical to the batch build
//! across random corpora and budgets.

use phishinghook::drift::DriftConfig;
use phishinghook::json::Value;
use phishinghook::prelude::*;
use phishinghook::EvalProfile;
use phishinghook_artifact::publish::ArtifactPublisher;
use phishinghook_evm::DisasmCache;
use phishinghook_features::{
    Encoding, FeatureStore, SequentialExecutor, SpillConfig, StoreConfig, StreamBudget,
};
use phishinghook_ingest::{baseline_detector, DriftScenario, IngestConfig, OnlinePipeline};
use phishinghook_serve::{Server, ServerConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join("phk_streaming_ingest")
        .join(format!("{tag}_{}", std::process::id()))
}

/// Reads one HTTP response off `r`: status code and body text.
fn read_response(r: &mut impl BufRead) -> (u16, String) {
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length value");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One-shot request on a fresh connection.
fn send(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(raw).expect("send request");
    read_response(&mut BufReader::new(stream))
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: ingest-e2e\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    send(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: ingest-e2e\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn json_num(body: &str, field: &str) -> f64 {
    phishinghook::json::parse(body)
        .expect("JSON body")
        .get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing {field:?} in {body}"))
}

#[test]
fn drift_retrain_republish_hot_swap_with_zero_dropped_requests() {
    let scenario = DriftScenario::small(42);
    let chain = scenario.build();
    let kind = ModelKind::LogisticRegression;
    let initial = baseline_detector(&chain, kind, &EvalProfile::quick(), 7);

    let dir = temp_dir("e2e");
    std::fs::remove_dir_all(&dir).ok();
    let mut publisher = ArtifactPublisher::open(&dir).unwrap();
    let first = publisher.publish(initial.to_bytes()).unwrap();
    assert_eq!(first.generation, 1);

    let server = Arc::new(
        Server::start_with_generation(
            Arc::clone(&initial),
            first.generation,
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap(),
    );
    let addr = server.local_addr();

    // Satellite: /healthz reports generation, model kind, and uptime.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(json_num(&body, "generation"), 1.0);
    assert!(json_num(&body, "uptime_seconds") >= 0.0);
    assert!(
        body.contains(&format!("\"model\":\"{}\"", kind.id())),
        "{body}"
    );

    // Client traffic stays in flight across every swap.
    let stop = Arc::new(AtomicBool::new(false));
    let attempts = Arc::new(AtomicUsize::new(0));
    let delivered = Arc::new(AtomicUsize::new(0));
    let probe_hex = chain.records()[0].bytecode.to_hex();
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let (stop, attempts, delivered) = (
                Arc::clone(&stop),
                Arc::clone(&attempts),
                Arc::clone(&delivered),
            );
            let request = format!("{{\"bytecode\":\"{probe_hex}\"}}");
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    let (status, body) = post(addr, "/predict", &request);
                    assert_eq!(status, 200, "in-flight request failed: {body}");
                    delivered.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    // Replay the drifted chain; each retrain republishes atomically and
    // the server picks the new generation up FROM DISK — the full seam.
    let mut pipeline = OnlinePipeline::new(
        Arc::clone(&initial),
        IngestConfig {
            drift: DriftConfig {
                window: 64,
                brier_margin: 0.15,
            },
            retrain_window: 256,
            kind,
            profile: EvalProfile::quick(),
            seed: 7,
        },
    );
    let stream = ExtractionStream::new(&chain, Month::FIRST, Month::LAST);
    let installer = Arc::clone(&server);
    let report = pipeline
        .run(stream, &mut publisher, |event, _| {
            let bytes = std::fs::read(&event.published.path).unwrap();
            let decoded = Arc::new(Detector::from_bytes(&bytes).unwrap());
            let replaced = installer.install(decoded, event.published.generation);
            assert!(replaced < event.published.generation, "monotone swap");
        })
        .unwrap();
    assert!(
        report.retrains >= 1,
        "injected shift must retrain: {report:?}"
    );

    stop.store(true, Ordering::SeqCst);
    for c in clients {
        c.join().unwrap();
    }
    drop(installer);
    // Zero dropped: every request issued across the swaps was answered.
    let (attempted, answered) = (
        attempts.load(Ordering::SeqCst),
        delivered.load(Ordering::SeqCst),
    );
    assert!(attempted > 0);
    assert_eq!(attempted, answered, "dropped in-flight requests");

    // The live generation is the publish directory's CURRENT pointer.
    let current = ArtifactPublisher::current(&dir).unwrap().unwrap();
    assert_eq!(server.generation(), current.generation);
    assert_eq!(current.generation, *report.generations.last().unwrap());
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(json_num(&body, "generation"), current.generation as f64);

    // Bit parity within the live generation: a served score equals the
    // decoded artifact's solo score exactly.
    let probe = &chain.records()[0].bytecode;
    let (status, body) = post(
        addr,
        "/predict",
        &format!("{{\"bytecode\":\"{probe_hex}\"}}"),
    );
    assert_eq!(status, 200);
    let served = json_num(&body, "probability") as f32;
    let solo = Detector::from_bytes(&std::fs::read(&current.path).unwrap())
        .unwrap()
        .score_code(probe);
    assert_eq!(served.to_bits(), solo.to_bits());

    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("server still shared"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(8))]

    /// Satellite: across random corpora, spill thresholds, and resident
    /// budgets, the streaming store build is bit-identical to the batch
    /// build and never holds more than the budgeted rows resident.
    #[test]
    fn streaming_store_build_matches_batch_for_any_budget(
        codes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..160), 2..10),
        resident_rows in 1usize..8,
        threshold_sel in 0usize..2,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let caches: Vec<DisasmCache> = codes
            .iter()
            .map(|bytes| DisasmCache::build(&phishinghook_evm::Bytecode::new(bytes.clone())))
            .collect();
        let cfg = StoreConfig {
            image_side: 8,
            context: 16,
            bigram_vocab: 32,
            bigram_len: 16,
            escort_dim: 8,
        };
        let threshold = if threshold_sel == 0 { 0 } else { usize::MAX };
        let batch_dir = temp_dir(&format!("prop_batch_{case}"));
        let stream_dir = temp_dir(&format!("prop_stream_{case}"));
        std::fs::remove_dir_all(&batch_dir).ok();
        std::fs::remove_dir_all(&stream_dir).ok();

        let batch = FeatureStore::build_spilled_with(
            &caches,
            &caches,
            &cfg,
            &SequentialExecutor,
            &SpillConfig { dir: batch_dir.clone(), threshold_bytes: threshold },
        )
        .unwrap();
        let (streamed, stream_report) = FeatureStore::build_streaming(
            &caches,
            &caches,
            &cfg,
            &SequentialExecutor,
            &StreamBudget {
                spill: SpillConfig { dir: stream_dir.clone(), threshold_bytes: threshold },
                resident_rows,
            },
        )
        .unwrap();

        // The RAM bound holds at any corpus length.
        prop_assert!(
            stream_report.peak_resident_rows <= resident_rows,
            "peak {} > budget {}", stream_report.peak_resident_rows, resident_rows
        );
        // Every encoding gathers identically.
        let idx: Vec<usize> = (0..caches.len()).collect();
        for encoding in Encoding::ALL {
            prop_assert_eq!(
                streamed.matrix(encoding).gather(&idx).rows(),
                batch.matrix(encoding).gather(&idx).rows(),
                "encoding {:?}", encoding
            );
        }
        // Identical spill decisions, and byte-identical spill files.
        prop_assert_eq!(streamed.spilled_encodings(), batch.spilled_encodings());
        for encoding in streamed.spilled_encodings() {
            prop_assert_eq!(
                std::fs::read(streamed.matrix(encoding).spill_path().unwrap()).unwrap(),
                std::fs::read(batch.matrix(encoding).spill_path().unwrap()).unwrap(),
                "spill bytes {:?}", encoding
            );
        }
        std::fs::remove_dir_all(&batch_dir).ok();
        std::fs::remove_dir_all(&stream_dir).ok();
    }
}
