//! Regenerates **Fig. 2**: number of phishing contracts per month
//! (obtained vs unique) over 2023-10 .. 2024-10.

use phishinghook_bench::{banner, RunScale};
use phishinghook_synth::{generate_corpus, CorpusConfig};

fn main() {
    let scale = RunScale::from_args();
    banner("Fig. 2 - phishing contracts per month", scale);
    // The full corpus reproduces the paper's counts: 3,458 unique phishing
    // bytecodes inflated to ~17.5k deployments by clone duplication.
    let cfg = if scale == RunScale::Quick {
        CorpusConfig {
            unique_phishing: 350,
            unique_benign: 0,
            ..CorpusConfig::default()
        }
    } else {
        CorpusConfig {
            unique_benign: 0,
            ..CorpusConfig::default()
        }
    };
    let corpus = generate_corpus(&cfg);

    let monthly = corpus.monthly_phishing_counts();
    let max = monthly.iter().map(|(_, o, _)| *o).max().unwrap_or(1);
    println!("{:<10} {:>9} {:>8}", "month", "obtained", "unique");
    for (month, obtained, unique) in &monthly {
        let bar = "#".repeat(obtained * 40 / max.max(1));
        println!(
            "{:<10} {:>9} {:>8}  {bar}",
            month.to_string(),
            obtained,
            unique
        );
    }
    let total_obtained: usize = monthly.iter().map(|(_, o, _)| o).sum();
    let total_unique: usize = monthly.iter().map(|(_, _, u)| u).sum();
    println!(
        "\ntotals: {total_obtained} obtained, {total_unique} unique (paper: 17,455 / 3,458; ratio {:.2} vs paper 5.05)",
        total_obtained as f64 / total_unique.max(1) as f64
    );
}
