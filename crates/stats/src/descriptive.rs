//! Descriptive statistics over `f64` slices.

/// Arithmetic mean; `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n − 1` denominator); `NaN` for n < 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Median (average of the two central order statistics for even n); `NaN`
/// for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Minimum; `NaN` for empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NAN, f64::min)
}

/// Maximum; `NaN` for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NAN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_values() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((sample_variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(median(&v), 4.5);
        assert_eq!(min(&v), 2.0);
        assert_eq!(max(&v), 9.0);
    }

    #[test]
    fn odd_median() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(sample_variance(&[1.0]).is_nan());
    }
}
