//! Dataset construction: the paper's pipeline from raw chain data to the
//! balanced, deduplicated 7,000-bytecode corpus, plus the split machinery
//! (stratified k-fold, temporal splits) used by every experiment.

use crate::par::parallel_map;
use phishinghook_evm::{Bytecode, DisasmCache};
use phishinghook_synth::{Month, STUDY_MONTHS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One labeled contract sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Deployed bytecode.
    pub bytecode: Bytecode,
    /// Explorer-derived label: 1 = flagged `Phish/Hack`, 0 = benign.
    pub label: u8,
    /// Deployment month (first deployment for deduplicated bytecodes).
    pub month: Month,
}

/// A labeled dataset of unique contract bytecodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// The samples, in construction order.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Builds a dataset from samples.
    pub fn new(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Labels as a vector.
    pub fn labels(&self) -> Vec<u8> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Number of positive (phishing-labeled) samples.
    pub fn positives(&self) -> usize {
        self.samples.iter().filter(|s| s.label == 1).count()
    }

    /// Decodes every contract exactly once, in parallel across a fixed-size
    /// worker pool, returning per-contract [`DisasmCache`]s in sample order.
    ///
    /// This is the single-pass entry point of the featurization pipeline:
    /// all six encoders consume the returned caches, so one dataset pass
    /// pays disassembly cost once per contract regardless of how many
    /// representations are extracted.
    pub fn disasm_batch(&self) -> Vec<DisasmCache> {
        parallel_map(&self.samples, |s| DisasmCache::build(&s.bytecode))
    }

    /// Selects a subset by indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset::new(indices.iter().map(|&i| self.samples[i].clone()).collect())
    }

    /// Index set of a random stratified subsample of `fraction` of the data
    /// (the scalability study's 1/3 and 2/3 splits), sorted ascending. The
    /// index form lets a shared feature store slice the subsample without
    /// materializing a new dataset.
    pub fn fraction_indices(&self, fraction: f64, seed: u64) -> Vec<usize> {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            if s.label == 1 {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        pos.truncate((pos.len() as f64 * fraction).round() as usize);
        neg.truncate((neg.len() as f64 * fraction).round() as usize);
        pos.extend(neg);
        pos.sort_unstable();
        pos
    }

    /// Random stratified subsample of `fraction` of the data (the
    /// scalability study's 1/3 and 2/3 splits).
    pub fn fraction(&self, fraction: f64, seed: u64) -> Dataset {
        self.subset(&self.fraction_indices(fraction, seed))
    }

    /// Stratified k-fold assignment restricted to an index subset: returns
    /// `folds` sets of *global* indices drawn from `within`, with
    /// near-equal class balance. Deterministic given the seed.
    ///
    /// # Panics
    ///
    /// Panics if `folds < 2` or exceeds either class size within the
    /// subset.
    pub fn stratified_folds_of(
        &self,
        within: &[usize],
        folds: usize,
        seed: u64,
    ) -> Vec<Vec<usize>> {
        assert!(folds >= 2, "need at least 2 folds");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for &i in within {
            if self.samples[i].label == 1 {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        assert!(
            pos.len() >= folds && neg.len() >= folds,
            "classes too small for {folds}-fold CV"
        );
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let mut out = vec![Vec::new(); folds];
        for (k, &i) in pos.iter().enumerate() {
            out[k % folds].push(i);
        }
        for (k, &i) in neg.iter().enumerate() {
            out[k % folds].push(i);
        }
        for f in &mut out {
            f.sort_unstable();
        }
        out
    }

    /// Stratified k-fold assignment over the whole dataset: returns `folds`
    /// index sets with near-equal class balance. Deterministic given the
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `folds < 2` or exceeds the class sizes.
    pub fn stratified_folds(&self, folds: usize, seed: u64) -> Vec<Vec<usize>> {
        let all: Vec<usize> = (0..self.len()).collect();
        self.stratified_folds_of(&all, folds, seed)
    }

    /// Train/test index pair for fold `k` of a fold assignment: test = fold
    /// `k`, train = the union of every other fold, both sorted ascending.
    /// Works for assignments over the full dataset and over subsets alike.
    pub fn fold_indices(folds: &[Vec<usize>], k: usize) -> (Vec<usize>, Vec<usize>) {
        let test_idx = folds[k].clone();
        let mut train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != k)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        train_idx.sort_unstable();
        (train_idx, test_idx)
    }

    /// Train/test pair for fold `k` of a fold assignment.
    pub fn fold_split(&self, folds: &[Vec<usize>], k: usize) -> (Dataset, Dataset) {
        let (train_idx, test_idx) = Dataset::fold_indices(folds, k);
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Index form of the paper's time-resistance split (Fig. 8): training
    /// indices (October 2023 – January 2024) plus nine monthly test index
    /// sets (February – October 2024).
    pub fn temporal_split_indices(&self) -> (Vec<usize>, Vec<(Month, Vec<usize>)>) {
        let train_idx: Vec<usize> = (0..self.len())
            .filter(|&i| self.samples[i].month.in_training_window())
            .collect();
        let mut tests = Vec::new();
        for m in Month::all().filter(|m| !m.in_training_window()) {
            let idx: Vec<usize> = (0..self.len())
                .filter(|&i| self.samples[i].month == m)
                .collect();
            tests.push((m, idx));
        }
        (train_idx, tests)
    }

    /// The paper's time-resistance split: training set = contracts deployed
    /// October 2023 – January 2024; nine monthly test sets, February –
    /// October 2024 (Fig. 8).
    pub fn temporal_split(&self) -> (Dataset, Vec<(Month, Dataset)>) {
        let (train_idx, tests) = self.temporal_split_indices();
        (
            self.subset(&train_idx),
            tests
                .into_iter()
                .map(|(m, idx)| (m, self.subset(&idx)))
                .collect(),
        )
    }

    /// Per-month sample counts (phishing, benign) over the study window.
    pub fn monthly_class_counts(&self) -> Vec<(Month, usize, usize)> {
        let mut pos = [0usize; STUDY_MONTHS];
        let mut neg = [0usize; STUDY_MONTHS];
        for s in &self.samples {
            if s.label == 1 {
                pos[s.month.0 as usize] += 1;
            } else {
                neg[s.month.0 as usize] += 1;
            }
        }
        Month::all()
            .map(|m| (m, pos[m.0 as usize], neg[m.0 as usize]))
            .collect()
    }

    /// Serializes to the `hash,label,month,bytecode` CSV shape the paper
    /// releases.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("content_hash,label,month,bytecode\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:016x},{},{},{}\n",
                s.bytecode.content_hash(),
                s.label,
                s.month,
                s.bytecode.to_hex()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize) -> Dataset {
        let samples = (0..n)
            .map(|i| Sample {
                bytecode: Bytecode::new(vec![i as u8, (i / 256) as u8, 0x01]),
                label: (i % 2) as u8,
                month: Month::new((i % STUDY_MONTHS) as u8),
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let d = toy_dataset(100);
        let folds = d.stratified_folds(10, 1);
        assert_eq!(folds.len(), 10);
        for f in &folds {
            assert_eq!(f.len(), 10);
            let pos = f.iter().filter(|&&i| d.samples[i].label == 1).count();
            assert_eq!(pos, 5, "fold imbalance");
        }
        // Folds partition the dataset.
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn fold_split_is_a_partition() {
        let d = toy_dataset(60);
        let folds = d.stratified_folds(5, 3);
        let (train, test) = d.fold_split(&folds, 2);
        assert_eq!(train.len() + test.len(), 60);
        assert_eq!(test.len(), 12);
    }

    #[test]
    fn fraction_preserves_balance() {
        let d = toy_dataset(300);
        let third = d.fraction(1.0 / 3.0, 7);
        assert_eq!(third.len(), 100);
        assert_eq!(third.positives(), 50);
    }

    #[test]
    fn temporal_split_shape() {
        let d = toy_dataset(130);
        let (train, tests) = d.temporal_split();
        assert_eq!(tests.len(), 9);
        assert!(!train.is_empty());
        let total: usize = train.len() + tests.iter().map(|(_, t)| t.len()).sum::<usize>();
        assert_eq!(total, 130);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let d = toy_dataset(3);
        let csv = d.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("content_hash,label,month,bytecode\n"));
    }

    #[test]
    #[should_panic(expected = "need at least 2 folds")]
    fn one_fold_rejected() {
        toy_dataset(10).stratified_folds(1, 0);
    }

    #[test]
    fn subset_folds_stay_within_the_subset() {
        let d = toy_dataset(100);
        let within = d.fraction_indices(0.5, 9);
        assert_eq!(within.len(), 50);
        assert!(within.windows(2).all(|w| w[0] < w[1]), "sorted indices");
        let folds = d.stratified_folds_of(&within, 5, 1);
        let covered: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(covered, within.len());
        for f in &folds {
            assert!(f.iter().all(|i| within.contains(i)));
        }
        // fold_indices partitions the subset, not the full dataset.
        let (train, test) = Dataset::fold_indices(&folds, 2);
        assert_eq!(train.len() + test.len(), within.len());
        assert!(train.iter().all(|i| !test.contains(i)));
    }

    #[test]
    fn index_and_dataset_splits_agree() {
        let d = toy_dataset(60);
        let folds = d.stratified_folds(3, 4);
        let (train_idx, test_idx) = Dataset::fold_indices(&folds, 1);
        let (train, test) = d.fold_split(&folds, 1);
        assert_eq!(train, d.subset(&train_idx));
        assert_eq!(test, d.subset(&test_idx));
        let (t_idx, months) = d.temporal_split_indices();
        let (t_set, month_sets) = d.temporal_split();
        assert_eq!(t_set, d.subset(&t_idx));
        assert_eq!(months.len(), month_sets.len());
    }
}
