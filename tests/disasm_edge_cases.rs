//! Disassembler edge cases, end to end through the public API: empty
//! bytecode, truncated `PUSHn` immediates, unknown opcode bytes, and the
//! `OpId` ↔ `Mnemonic` round trip over all 256 byte values.

use phishinghook_evm::{disassemble, opcode_info, Bytecode, DisasmCache, OpId, OpcodeStream};

#[test]
fn empty_bytecode_everywhere() {
    let code = Bytecode::from_hex("0x").unwrap();
    assert!(code.is_empty());
    assert!(disassemble(code.as_bytes()).is_empty());
    assert_eq!(OpcodeStream::new(code.as_bytes()).count(), 0);
    let cache = DisasmCache::build(&code);
    assert!(cache.is_empty());
    assert_eq!(cache.ops().count(), 0);
}

#[test]
fn truncated_push_immediates_at_every_width() {
    for n in 1..=32u8 {
        let push = 0x5F + n; // PUSH1..PUSH32
        for present in 0..n {
            let mut code = vec![push];
            code.extend(std::iter::repeat_n(0xAB, present as usize));
            let cache = DisasmCache::build(&Bytecode::new(code));
            let ops: Vec<_> = cache.ops().collect();
            assert_eq!(ops.len(), 1, "PUSH{n} with {present} bytes");
            assert!(ops[0].truncated);
            assert_eq!(ops[0].operand.len(), present as usize);
            assert_eq!(ops[0].id.byte(), push);
        }
        // Exactly enough immediate bytes: not truncated.
        let mut code = vec![push];
        code.extend(std::iter::repeat_n(0xCD, n as usize));
        let cache = DisasmCache::build(&Bytecode::new(code));
        let ops: Vec<_> = cache.ops().collect();
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].truncated);
        assert_eq!(ops[0].operand.len(), n as usize);
    }
}

#[test]
fn unknown_opcode_bytes_decode_totally() {
    // Every unassigned byte decodes to an Unknown mnemonic with no gas and
    // no immediates, and the stream keeps going afterwards.
    for b in 0..=255u8 {
        if opcode_info(b).is_some() {
            continue;
        }
        let code = Bytecode::new(vec![b, 0x01]); // unknown byte then ADD
        let cache = DisasmCache::build(&code);
        let ops: Vec<_> = cache.ops().collect();
        assert_eq!(
            ops.len(),
            2,
            "unknown byte 0x{b:02X} must not swallow input"
        );
        assert!(!ops[0].id.is_known());
        assert_eq!(ops[0].gas(), None);
        assert_eq!(ops[0].mnemonic().name(), format!("UNKNOWN_0x{b:02X}"));
        assert_eq!(ops[1].id.byte(), 0x01);
    }
}

#[test]
fn opid_mnemonic_round_trip_over_all_256_bytes() {
    for b in 0..=255u8 {
        let id = OpId::from_byte(b);
        // OpId -> byte round trip.
        assert_eq!(id.byte(), b);
        // OpId -> Mnemonic -> byte round trip.
        let m = id.mnemonic();
        assert_eq!(m.byte(), b);
        // Mnemonic and registry agree on identity and gas.
        match opcode_info(b) {
            Some(info) => {
                assert!(id.is_known());
                assert_eq!(m.name(), info.mnemonic);
                assert_eq!(id.gas(), info.gas);
            }
            None => {
                assert!(!id.is_known());
                assert_eq!(id.gas(), None);
            }
        }
        // Dense index round trip.
        assert_eq!(OpId::from_index(id.index()), Some(id));
    }
}

#[test]
fn stream_offsets_tile_malformed_soup() {
    // A worst-case blend: unknown bytes, PUSH immediates that swallow
    // opcode-looking bytes, and a truncated tail.
    let code = Bytecode::new(vec![0x0C, 0x60, 0xFF, 0xFE, 0x7F, 0x01, 0x02]);
    let cache = DisasmCache::build(&code);
    let ops: Vec<_> = cache.ops().collect();
    let mut expected_offset = 0;
    for op in &ops {
        assert_eq!(op.offset, expected_offset);
        expected_offset += op.size();
    }
    assert_eq!(expected_offset, code.len());
    assert!(ops.last().unwrap().truncated);
}
