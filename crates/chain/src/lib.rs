//! Simulated Ethereum data sources.
//!
//! The paper's data-gathering stage talks to three external services:
//! Google BigQuery's public Ethereum dataset (contract hashes per time
//! window), etherscan.io's `Phish/Hack` flag (labels) and an Etherscan
//! JSON-RPC endpoint (`eth_getCode`, bytecode). None is reachable offline,
//! so this crate provides in-process stand-ins exposing the *same three-step
//! pipeline* over a [`SimulatedChain`] populated from a synthetic corpus:
//!
//! 1. [`QueryService::contracts_deployed_between`] — the BigQuery scan
//!    (Fig. 1-➊);
//! 2. [`Explorer::label`] — the Etherscan flag scrape (Fig. 1-➋);
//! 3. [`RpcProvider::eth_get_code`] — the JSON-RPC bytecode fetch
//!    (Fig. 1-➌).
//!
//! # Examples
//!
//! ```
//! use phishinghook_chain::{SimulatedChain, QueryService, Explorer, RpcProvider};
//! use phishinghook_synth::{generate_corpus, CorpusConfig, Month};
//!
//! let corpus = generate_corpus(&CorpusConfig::small(1));
//! let chain = SimulatedChain::from_corpus(&corpus);
//! let query = QueryService::new(&chain);
//! let explorer = Explorer::new(&chain);
//! let rpc = RpcProvider::new(&chain);
//!
//! let addresses = query.contracts_deployed_between(Month(0), Month(12));
//! let flagged = addresses.iter().filter(|a| explorer.label(a).is_some()).count();
//! assert!(flagged > 0);
//! let code = rpc.eth_get_code(&addresses[0]).unwrap();
//! assert!(!code.is_empty());
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod explorer;
pub mod query;
pub mod rpc;
pub mod state;

pub use address::Address;
pub use explorer::{Explorer, PHISH_HACK_LABEL};
pub use query::QueryService;
pub use rpc::{RpcError, RpcProvider};
pub use state::{DeploymentRecord, SimulatedChain};
