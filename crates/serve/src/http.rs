//! A length-capped HTTP/1.1 request parser and response writer.
//!
//! This is deliberately a *small* HTTP: exactly what the serving endpoints
//! need (request line, headers, `Content-Length` bodies, keep-alive), with
//! every dimension bounded — request-line bytes, header count, header
//! block bytes, body bytes — so an adversarial or broken client can cost
//! at most [`Limits`] worth of memory and one read timeout of patience.
//! Anything outside the caps or the grammar is a typed [`HttpError`] that
//! maps to a 4xx/5xx response; the parser itself never panics, and on
//! finite input it never loops (every iteration consumes at least one
//! byte), which the proptests in `tests/http_malformed.rs` hammer on.

use std::io::{BufRead, Write};

/// Parser caps. The defaults are generous for JSON scoring requests (a
/// 24 KB contract hex-encodes to 48 KB and change) while keeping worst-case
/// per-connection memory small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Most headers per request.
    pub max_headers: usize,
    /// Total bytes across all header lines.
    pub max_header_bytes: usize,
    /// Largest accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 4096,
            max_headers: 64,
            max_header_bytes: 8192,
            max_body: 1 << 20,
        }
    }
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (`/predict`).
    pub target: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed. [`HttpError::status`] maps each
/// variant to the response the connection handler writes back.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any byte — the
    /// normal end of a keep-alive session, not an error to respond to.
    Closed,
    /// The stream ended or failed mid-request (truncation, reset, read
    /// timeout).
    Truncated,
    /// Malformed or over-long request line.
    BadRequestLine,
    /// A header line without a colon, or header-name bytes outside the
    /// token alphabet.
    BadHeader,
    /// More headers, or more header bytes, than [`Limits`] allows.
    HeadersTooLarge,
    /// `Content-Length` missing on a method that requires a body.
    LengthRequired,
    /// `Content-Length` present but not a plain decimal integer.
    BadContentLength,
    /// Declared body length beyond [`Limits::max_body`].
    BodyTooLarge,
    /// `Transfer-Encoding` bodies are not served here.
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion,
}

impl HttpError {
    /// The `(status, reason)` to answer with, or `None` when the
    /// connection should simply be dropped ([`HttpError::Closed`]).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed => None,
            HttpError::Truncated => Some((400, "Bad Request")),
            HttpError::BadRequestLine => Some((400, "Bad Request")),
            HttpError::BadHeader => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::BadContentLength => Some((400, "Bad Request")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::UnsupportedTransferEncoding => Some((501, "Not Implemented")),
            HttpError::UnsupportedVersion => Some((505, "HTTP Version Not Supported")),
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn detail(&self) -> &'static str {
        match self {
            HttpError::Closed => "connection closed",
            HttpError::Truncated => "request truncated",
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadHeader => "malformed header",
            HttpError::HeadersTooLarge => "too many header bytes",
            HttpError::LengthRequired => "Content-Length required",
            HttpError::BadContentLength => "unparsable Content-Length",
            HttpError::BodyTooLarge => "body exceeds the configured cap",
            HttpError::UnsupportedTransferEncoding => "Transfer-Encoding not supported",
            HttpError::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are served",
        }
    }
}

/// Reads one `\n`-terminated line (CR stripped) of at most `cap` bytes.
/// Returns `Ok(None)` on a clean EOF before the first byte; a line that
/// hits `cap` without a terminator is `over_cap`; EOF or an I/O error
/// mid-line is `Truncated`.
fn read_line_capped(
    r: &mut impl BufRead,
    cap: usize,
    over_cap: fn() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(_) => return Err(HttpError::Truncated),
        };
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Truncated)
            };
        }
        let (take, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        if line.len() + take > cap + 2 {
            // +2 tolerates the CRLF itself on an exactly-cap-long line.
            return Err(over_cap());
        }
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if done {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            // Header text is ASCII in practice; anything else is rejected
            // rather than lossily decoded.
            return String::from_utf8(line).map(Some).map_err(|_| over_cap());
        }
    }
}

/// Reads and validates one request.
///
/// # Errors
///
/// A typed [`HttpError`] for every malformed, truncated, or over-limit
/// input — by construction this function cannot panic, and on a finite
/// (or timing-out) stream it cannot hang.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    // Request line. An empty line before it is tolerated once (robust
    // against clients that end the previous body with a stray CRLF).
    let mut first = read_line_capped(r, limits.max_request_line, || HttpError::BadRequestLine)?
        .ok_or(HttpError::Closed)?;
    if first.is_empty() {
        first = read_line_capped(r, limits.max_request_line, || HttpError::BadRequestLine)?
            .ok_or(HttpError::Closed)?;
    }
    let mut parts = first.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_string(), t.to_string(), v)
        }
        _ => return Err(HttpError::BadRequestLine),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion);
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line_capped(r, limits.max_header_bytes, || HttpError::HeadersTooLarge)?
            .ok_or(HttpError::Truncated)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if headers.len() >= limits.max_headers || header_bytes > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.bytes().any(|b| !b.is_ascii_graphic() || b == b':') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }

    // Body: POST (and any other method that declares a length) carries
    // exactly Content-Length bytes.
    let declared = match request.header("content-length") {
        Some(v) => {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) || v.len() > 12 {
                return Err(HttpError::BadContentLength);
            }
            v.parse::<usize>()
                .map_err(|_| HttpError::BadContentLength)?
        }
        None if request.method == "POST" || request.method == "PUT" => {
            return Err(HttpError::LengthRequired)
        }
        None => 0,
    };
    if declared > limits.max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let mut request = request;
    if declared > 0 {
        let mut body = vec![0u8; declared];
        r.read_exact(&mut body).map_err(|_| HttpError::Truncated)?;
        request.body = body;
    }
    Ok(request)
}

/// Writes one response with the standard serving headers. `extra` headers
/// (e.g. `Retry-After`) are emitted verbatim.
///
/// # Errors
///
/// Any underlying socket write failure.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(input: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(input.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_bodyless_get_and_connection_close() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_an_error_response() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn malformed_inputs_map_to_4xx() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"nonsense\r\n\r\n", 400),
            (b"GET\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"POST /p HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
            (b"POST /p HTTP/1.1\r\n\r\n", 411),
            (b"POST /p HTTP/1.1\r\nContent-Length: -4\r\n\r\n", 400),
            (b"POST /p HTTP/1.1\r\nContent-Length: 9e9\r\n\r\n", 400),
            (b"POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
            (
                b"POST /p HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (input, want) in cases {
            let err = parse(input).expect_err("must reject");
            let (status, _) = err.status().expect("must map to a response");
            assert_eq!(
                status,
                want,
                "input {:?} -> {err:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn oversized_dimensions_are_capped() {
        let tiny = Limits {
            max_request_line: 32,
            max_headers: 2,
            max_header_bytes: 64,
            max_body: 16,
        };
        let parse_tiny = |input: &[u8]| read_request(&mut Cursor::new(input.to_vec()), &tiny);

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            parse_tiny(long_line.as_bytes()),
            Err(HttpError::BadRequestLine)
        ));

        let many_headers = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert!(matches!(
            parse_tiny(many_headers),
            Err(HttpError::HeadersTooLarge)
        ));

        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        assert!(matches!(parse_tiny(big_body), Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn response_writer_emits_well_formed_http() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "Too Many Requests",
            &[("Retry-After", "1".to_string())],
            br#"{"error":"queue full"}"#,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"));
    }
}
