//! ESCORT's bytecode embedding.
//!
//! "ESCORT embeds the smart contract bytecode into a vector space. The
//! generated feature representations are then processed by a deep neural
//! network." (§IV-B) The original system slices bytecode into fragments and
//! embeds them; we reproduce the embedding stage as a hashed byte-trigram
//! bag — a fixed-dimension vector space representation of code fragments —
//! which the ESCORT DNN trunk then consumes. The embedder reads the raw
//! bytes of the shared [`DisasmCache`].

use crate::featurizer::{FeatureVec, Featurizer};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_evm::DisasmCache;

/// Default embedding dimension used by the [`Featurizer`] impl.
pub const DEFAULT_DIM: usize = 128;

/// Hashed trigram embedder with a fixed output dimension.
///
/// # Examples
///
/// ```
/// use phishinghook_evm::{Bytecode, DisasmCache};
/// use phishinghook_features::EscortEmbedder;
///
/// let embedder = EscortEmbedder::new(128);
/// let cache = DisasmCache::build(&Bytecode::new(vec![1, 2, 3, 4]));
/// let v = embedder.encode(&cache);
/// assert_eq!(v.len(), 128);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EscortEmbedder {
    dim: usize,
}

impl EscortEmbedder {
    /// Creates an embedder with output dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        EscortEmbedder { dim }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Serializes the embedder's geometry (hashing is stateless).
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.dim);
    }

    /// Rebuilds an embedder from [`EscortEmbedder::write_state`] bytes.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Corrupt`] on truncation or a zero dimension.
    pub fn read_state(r: &mut ByteReader<'_>) -> Result<Self, ArtifactError> {
        let dim = r.take_usize()?;
        if dim == 0 {
            return Err(ArtifactError::Corrupt(
                "embedding dimension must be positive".into(),
            ));
        }
        Ok(EscortEmbedder { dim })
    }

    /// Encodes a contract as a log-scaled hashed trigram count vector.
    pub fn encode(&self, contract: &DisasmCache) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for w in contract.bytes().windows(3) {
            let h = fnv3(w[0], w[1], w[2]) as usize % self.dim;
            out[h] += 1.0;
        }
        for v in &mut out {
            *v = (1.0 + *v).ln();
        }
        out
    }
}

impl Featurizer for EscortEmbedder {
    const NAME: &'static str = "escort_embedding";

    fn fit(_training: &[DisasmCache]) -> Self {
        EscortEmbedder::new(DEFAULT_DIM)
    }

    fn encode(&self, contract: &DisasmCache) -> FeatureVec {
        FeatureVec::Dense(self.encode(contract))
    }
}

fn fnv3(a: u8, b: u8, c: u8) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in [a, b, c] {
        h ^= x as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::Bytecode;

    fn cache(bytes: Vec<u8>) -> DisasmCache {
        DisasmCache::build(&Bytecode::new(bytes))
    }

    #[test]
    fn fixed_dimension() {
        let e = EscortEmbedder::new(64);
        assert_eq!(e.encode(&cache(vec![])).len(), 64);
        assert_eq!(e.encode(&cache(vec![1; 1000])).len(), 64);
    }

    #[test]
    fn deterministic() {
        let e = EscortEmbedder::new(32);
        let a = e.encode(&cache(vec![5, 6, 7, 8]));
        let b = e.encode(&cache(vec![5, 6, 7, 8]));
        assert_eq!(a, b);
    }

    #[test]
    fn different_code_different_embedding() {
        let e = EscortEmbedder::new(256);
        let a = e.encode(&cache((0..100).collect::<Vec<u8>>()));
        let b = e.encode(&cache((100..200).collect::<Vec<u8>>()));
        assert_ne!(a, b);
    }

    #[test]
    fn empty_code_embeds_to_zero() {
        let e = EscortEmbedder::new(16);
        assert!(e.encode(&cache(vec![])).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn log_scaling_is_monotone_in_counts() {
        let e = EscortEmbedder::new(8);
        let short = e.encode(&cache(vec![1, 2, 3]));
        let long = e.encode(&cache([1, 2, 3].repeat(50)));
        let s: f32 = short.iter().sum();
        let l: f32 = long.iter().sum();
        assert!(l > s);
    }
}
