//! Batch-level view over per-contract disassembly caches.
//!
//! The evaluation engine decodes a dataset exactly once into a
//! [`CacheBatch`] and then *slices* it per fold: [`CacheBatch::select`]
//! hands out borrowed [`DisasmCache`] references for an index set without
//! cloning op tables or bytecode, so a (model, run, fold) trial costs a
//! pointer gather instead of a re-decode.
//!
//! # Examples
//!
//! ```
//! use phishinghook_evm::{Bytecode, CacheBatch};
//!
//! let codes = vec![Bytecode::new(vec![0x01]), Bytecode::new(vec![0x60, 0x80])];
//! let batch = CacheBatch::build(&codes);
//! let fold = batch.select(&[1]);
//! assert_eq!(fold.len(), 1);
//! assert_eq!(fold[0].op_count(), 1); // PUSH1 0x80
//! ```

use crate::bytecode::Bytecode;
use crate::cache::DisasmCache;

/// A dataset's worth of [`DisasmCache`]s, decoded once and sliced by index
/// thereafter.
#[derive(Debug, Clone, Default)]
pub struct CacheBatch {
    caches: Vec<DisasmCache>,
}

impl CacheBatch {
    /// Decodes every bytecode once, in order. One decode per contract is
    /// recorded on the global [`decode_count`](crate::decode_count).
    pub fn build(codes: &[Bytecode]) -> Self {
        CacheBatch {
            caches: DisasmCache::build_batch(codes),
        }
    }

    /// Wraps caches that were already built (e.g. by a parallel pass).
    pub fn from_caches(caches: Vec<DisasmCache>) -> Self {
        CacheBatch { caches }
    }

    /// Number of contracts in the batch.
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// `true` when the batch holds no contracts.
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// All caches, in sample order.
    pub fn as_slice(&self) -> &[DisasmCache] {
        &self.caches
    }

    /// One contract's cache.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &DisasmCache {
        &self.caches[index]
    }

    /// Zero-copy fold slice: borrowed caches for `indices`, in index order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Vec<&DisasmCache> {
        indices.iter().map(|&i| &self.caches[i]).collect()
    }

    /// Total decoded instructions across the batch.
    pub fn total_ops(&self) -> usize {
        self.caches.iter().map(DisasmCache::op_count).sum()
    }

    /// Total bytecode bytes across the batch.
    pub fn total_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.bytes().len()).sum()
    }
}

impl std::ops::Index<usize> for CacheBatch {
    type Output = DisasmCache;

    fn index(&self, index: usize) -> &DisasmCache {
        &self.caches[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> CacheBatch {
        CacheBatch::build(&[
            Bytecode::new(vec![0x01]),
            Bytecode::new(vec![0x60, 0x80, 0x52]),
            Bytecode::new(vec![]),
        ])
    }

    #[test]
    fn select_is_zero_copy_and_ordered() {
        let b = batch();
        let slice = b.select(&[2, 0]);
        assert_eq!(slice.len(), 2);
        assert!(std::ptr::eq(slice[0], b.get(2)));
        assert!(std::ptr::eq(slice[1], b.get(0)));
    }

    #[test]
    fn totals_aggregate_the_batch() {
        let b = batch();
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_bytes(), 4);
        assert_eq!(b.total_ops(), 1 + 2);
        assert_eq!(b[1].op_count(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_select_panics() {
        batch().select(&[7]);
    }
}
