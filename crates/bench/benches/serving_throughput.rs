//! Criterion bench: the persistent serving path, in three variants.
//!
//! * **forest** — a `RandomForest` detector scoring *fresh bytecodes* one
//!   at a time (the interactive wallet-guard shape) vs. in one batched
//!   call (the screening-queue shape). The model is cheap, so this variant
//!   guards the decode/encode fusion of `score_codes`.
//! * **escort** — a deep (ESCORT) detector scoring *pre-decoded* contracts
//!   via `score_cache` per contract vs. one `score_batch` call. With the
//!   decode cost out of the way, the delta is the batched NN inference
//!   path (`predict_proba_batch`'s `(B, d)` GEMM + arena-reused tape), so
//!   this variant is the serving-side guard on the batched tensor engine
//!   and carries a raised bar.
//! * **cascade** — the two-stage `CascadeDetector` (calibrated forest
//!   screen → uncertainty-band escalation → deep confirmer) vs. the
//!   deep-only path scoring every fresh contract. The cascade must hold
//!   near-forest throughput (≥3× the deep path full, ≥1.5× smoke) while
//!   its held-out AUC stays within 0.01 of the deep model — both asserted
//!   here, so a calibration or routing regression fails the bench, not
//!   just a slowdown.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! baseline — `BENCH_serve.json` (contracts/sec per variant) — so future
//! PRs can regression-check the serving path. Setting
//! `PHISHINGHOOK_BENCH_SMOKE=1` shrinks the corpus to CI size and fails
//! fast when a variant drops below its floor.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook::prelude::*;
use phishinghook_bench::json::Value;
use phishinghook_evm::{Bytecode, CacheBatch, DisasmCache};
use phishinghook_synth::{generate_contract, Difficulty, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("PHISHINGHOOK_BENCH_SMOKE").is_some()
}

fn fresh_count() -> usize {
    if smoke_mode() {
        64
    } else {
        256
    }
}

fn timing_samples() -> usize {
    if smoke_mode() {
        9
    } else {
        15
    }
}

/// Warmup iterations per path before any timed sample: enough to fault in
/// code paths, fill allocator arenas, and settle frequency scaling, so
/// the best-of-N that follows measures steady state rather than first-run
/// noise. One iteration was not enough — the forest variant's speedup sat
/// within noise of its floor.
const WARMUP_ITERS: usize = 3;

/// Throughput floor (batched/single) for the forest variant. The batched
/// call's structural win is the worker pool: with one worker the fused
/// decode+encode only amortizes per-call overhead against small
/// batch-assembly costs, and repeated runs land anywhere in a ±10% band
/// around parity — a floor of exactly 1.0 there asserts timing noise, not
/// the serving path. So single-worker hosts get a parity band, smoke runs
/// on real pools a 3% noise band, and full pooled runs the strict outright
/// win. A real serving regression — an extra decode or encode pass —
/// costs tens of percent and trips the guard on every host shape.
fn forest_floor(n: usize) -> f64 {
    if phishinghook::par::pool_size(n) == 1 {
        1.0 / 1.15
    } else if smoke_mode() {
        1.0 / 1.03
    } else {
        1.0
    }
}

/// Raised floor for the deep-model variant: pre-decoded contracts through
/// the batched NN inference path must beat per-contract calls outright —
/// the batched `(B, d)` GEMM and arena-reused tape are the very thing
/// under guard (measured ≈2.7× even on a single-core smoke box), and
/// falling back to per-sample tapes costs far more than this margin.
fn escort_floor() -> f64 {
    if smoke_mode() {
        1.3
    } else {
        1.5
    }
}

/// Floor for the cascade vs. the deep-only path on the same fresh
/// contracts. The structural win is the escalation budget: only ~15% of
/// traffic pays the deep encoder + forward pass, so the cascade's cost is
/// one cheap screen pass plus a sliver of deep work. Smoke boxes keep a
/// relaxed bar; the full run asserts the ISSUE's ≥3× target.
fn cascade_floor() -> f64 {
    if smoke_mode() {
        1.5
    } else {
        3.0
    }
}

/// How far below the deep model's held-out AUC the cascade may sit.
const CASCADE_AUC_SLACK: f64 = 0.01;

/// Contracts the detector has never seen, synthesized directly.
fn fresh_contracts(n: usize) -> Vec<Bytecode> {
    let mut rng = StdRng::seed_from_u64(0x5EE7);
    (0..n)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(5),
                &Difficulty::default(),
                &mut rng,
            )
        })
        .collect()
}

fn training_context() -> EvalContext {
    let corpus = generate_corpus(&CorpusConfig::small(42));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    EvalContext::new(&dataset, &EvalProfile::quick())
}

/// A labeled corpus neither stage ever trained on, for the held-out AUC
/// parity check.
fn holdout_corpus() -> (CacheBatch, Vec<u8>) {
    let corpus = generate_corpus(&CorpusConfig::small(99));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let labels = dataset.labels();
    (CacheBatch::from_caches(dataset.disasm_batch()), labels)
}

/// Times `single` and `batched` with interleaved samples (single, batched,
/// single, batched, …) so clock drift and frequency scaling hit both paths
/// equally, returning each path's best time and last checksum.
fn timed_pair(
    samples: usize,
    mut single: impl FnMut() -> f32,
    mut batched: impl FnMut() -> f32,
) -> ((f64, f32), (f64, f32)) {
    let mut s = (f64::INFINITY, 0.0f32);
    let mut b = (f64::INFINITY, 0.0f32);
    for _ in 0..WARMUP_ITERS {
        single();
        batched();
    }
    for _ in 0..samples {
        let t0 = Instant::now();
        s.1 = single();
        s.0 = s.0.min(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        b.1 = batched();
        b.0 = b.0.min(t1.elapsed().as_secs_f64() * 1e3);
    }
    (s, b)
}

/// Runs one variant to a JSON record, asserting its score parity and its
/// throughput floor.
fn variant_record(
    detector: &Detector,
    n: usize,
    floor: f64,
    single: impl FnMut() -> f32,
    batched: impl FnMut() -> f32,
) -> Value {
    let ((single_ms, single_sum), (batched_ms, batched_sum)) =
        timed_pair(timing_samples(), single, batched);
    assert_eq!(
        single_sum,
        batched_sum,
        "{}: batched scores must be identical to per-contract scores",
        detector.kind().id()
    );
    let single_cps = n as f64 / (single_ms / 1e3);
    let batched_cps = n as f64 / (batched_ms / 1e3);
    let speedup = single_ms / batched_ms;
    assert!(
        speedup >= floor,
        "{} serving regression: batched {batched_cps:.0} contracts/s vs \
         single {single_cps:.0} contracts/s ({speedup:.2}x, floor {floor:.2}x)",
        detector.kind().id()
    );
    println!(
        "  {}: single {single_cps:.0} contracts/s vs batched {batched_cps:.0} \
         contracts/s ({speedup:.2}x)",
        detector.kind().id()
    );
    Value::Obj(vec![
        ("model".into(), Value::Str(detector.kind().id().into())),
        ("contracts".into(), Value::Num(n as f64)),
        (
            "trained_on".into(),
            Value::Num(detector.trained_on() as f64),
        ),
        ("single_ms".into(), Value::Num(single_ms)),
        ("batched_ms".into(), Value::Num(batched_ms)),
        ("single_contracts_per_sec".into(), Value::Num(single_cps)),
        ("batched_contracts_per_sec".into(), Value::Num(batched_cps)),
        ("speedup".into(), Value::Num(speedup)),
        ("asserted_floor".into(), Value::Num(floor)),
    ])
}

/// The cascade variant: deep-only batched scoring vs. the cascade on the
/// same fresh contracts, plus the held-out AUC parity gate. Unlike the
/// flat variants the two paths do *not* produce identical scores — the
/// whole point is that most contracts never reach the deep model — so the
/// quality contract is AUC-parity on labeled held-out data, not bit
/// parity.
fn cascade_record(cascade: &CascadeDetector, codes: &[Bytecode]) -> Value {
    let floor = cascade_floor();
    let ((deep_ms, _), (cascade_ms, _)) = timed_pair(
        timing_samples(),
        || cascade.confirm().score_codes(codes).iter().sum(),
        || {
            cascade
                .score_codes(codes)
                .iter()
                .map(|v| v.probability)
                .sum()
        },
    );
    let n = codes.len();
    let deep_cps = n as f64 / (deep_ms / 1e3);
    let cascade_cps = n as f64 / (cascade_ms / 1e3);
    let speedup = deep_ms / cascade_ms;
    let verdicts = cascade.score_codes(codes);
    let escalated = verdicts.iter().filter(|v| v.escalated).count();
    let escalation_rate = escalated as f64 / n as f64;

    // Quality gate: on a labeled corpus neither stage trained on, the
    // cascade's ranking must stay within CASCADE_AUC_SLACK of deep-only.
    let (holdout, labels) = holdout_corpus();
    let deep_scores = cascade.confirm().score_batch(holdout.as_slice());
    let cascade_scores: Vec<f32> = cascade
        .score_batch(holdout.as_slice())
        .iter()
        .map(|v| v.probability)
        .collect();
    let deep_auc = auc(&deep_scores, &labels);
    let cascade_auc = auc(&cascade_scores, &labels);
    assert!(
        cascade_auc >= deep_auc - CASCADE_AUC_SLACK,
        "cascade quality regression: held-out AUC {cascade_auc:.4} vs deep \
         {deep_auc:.4} (slack {CASCADE_AUC_SLACK})"
    );
    assert!(
        speedup >= floor,
        "cascade serving regression: {cascade_cps:.0} contracts/s vs deep-only \
         {deep_cps:.0} contracts/s ({speedup:.2}x, floor {floor:.2}x, \
         escalation rate {escalation_rate:.2})"
    );
    println!(
        "  cascade {}→{}: deep-only {deep_cps:.0} contracts/s vs cascade \
         {cascade_cps:.0} contracts/s ({speedup:.2}x, {escalated}/{n} escalated, \
         AUC {cascade_auc:.4} vs deep {deep_auc:.4})",
        cascade.screen().kind().id(),
        cascade.confirm().kind().id(),
    );
    Value::Obj(vec![
        ("model".into(), Value::Str("cascade".into())),
        (
            "screen".into(),
            Value::Str(cascade.screen().kind().id().into()),
        ),
        (
            "confirm".into(),
            Value::Str(cascade.confirm().kind().id().into()),
        ),
        ("contracts".into(), Value::Num(n as f64)),
        ("deep_only_ms".into(), Value::Num(deep_ms)),
        ("cascade_ms".into(), Value::Num(cascade_ms)),
        ("deep_only_contracts_per_sec".into(), Value::Num(deep_cps)),
        ("cascade_contracts_per_sec".into(), Value::Num(cascade_cps)),
        ("speedup".into(), Value::Num(speedup)),
        ("asserted_floor".into(), Value::Num(floor)),
        (
            "escalate_budget".into(),
            Value::Num(cascade.escalate_budget() as f64),
        ),
        ("escalation_rate".into(), Value::Num(escalation_rate)),
        ("band_lo".into(), Value::Num(cascade.band().0 as f64)),
        ("band_hi".into(), Value::Num(cascade.band().1 as f64)),
        ("holdout_auc_deep".into(), Value::Num(deep_auc)),
        ("holdout_auc_cascade".into(), Value::Num(cascade_auc)),
        ("auc_slack".into(), Value::Num(CASCADE_AUC_SLACK)),
    ])
}

fn write_baseline(
    forest: &Detector,
    escort: &Detector,
    cascade: &CascadeDetector,
    codes: &[Bytecode],
    caches: &[DisasmCache],
) {
    let forest_rec = variant_record(
        forest,
        codes.len(),
        forest_floor(codes.len()),
        || codes.iter().map(|c| forest.score_code(c)).sum(),
        || forest.score_codes(codes).iter().sum(),
    );
    let escort_rec = variant_record(
        escort,
        caches.len(),
        escort_floor(),
        || caches.iter().map(|c| escort.score_cache(c)).sum(),
        || escort.score_batch(caches).iter().sum(),
    );
    let cascade_rec = cascade_record(cascade, codes);
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("serving_throughput".into())),
        (
            "workers".into(),
            Value::Num(phishinghook::par::pool_size(codes.len()) as f64),
        ),
        (
            "variants".into(),
            Value::Arr(vec![forest_rec, escort_rec, cascade_rec]),
        ),
    ]);
    // Benches run with the package as cwd; anchor the baseline at the
    // workspace root. Smoke runs assert but never overwrite the committed
    // baseline (their corpus is smaller).
    if !smoke_mode() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, doc.render()).expect("write BENCH_serve.json");
    }
}

fn bench_serving(c: &mut Criterion) {
    let ctx = training_context();
    let forest = Detector::train(&ctx, ModelKind::RandomForest, 7);
    let escort = Detector::train(&ctx, ModelKind::Escort, 7);
    let cascade = CascadeDetector::train(
        &ctx,
        ModelKind::RandomForest,
        ModelKind::Gpt2Alpha,
        &CascadeConfig::default(),
        7,
    );
    let codes = fresh_contracts(fresh_count());
    let caches: Vec<DisasmCache> = codes.iter().map(DisasmCache::build).collect();

    let mut group = c.benchmark_group("serving_throughput");
    group.bench_function("forest_single_contract_calls", |b| {
        b.iter(|| -> f32 { codes.iter().map(|c| forest.score_code(c)).sum() })
    });
    group.bench_function("forest_batched_call", |b| {
        b.iter(|| -> f32 { forest.score_codes(&codes).iter().sum() })
    });
    group.bench_function("escort_single_cache_calls", |b| {
        b.iter(|| -> f32 { caches.iter().map(|c| escort.score_cache(c)).sum() })
    });
    group.bench_function("escort_batched_call", |b| {
        b.iter(|| -> f32 { escort.score_batch(&caches).iter().sum() })
    });
    group.bench_function("deep_only_batched_call", |b| {
        b.iter(|| -> f32 { cascade.confirm().score_codes(&codes).iter().sum() })
    });
    group.bench_function("cascade_batched_call", |b| {
        b.iter(|| -> f32 {
            cascade
                .score_codes(&codes)
                .iter()
                .map(|v| v.probability)
                .sum()
        })
    });
    group.finish();

    write_baseline(&forest, &escort, &cascade, &codes, &caches);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serving
}
criterion_main!(benches);
