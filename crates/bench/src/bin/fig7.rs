//! Regenerates **Fig. 7**: training and inference times of the three
//! scalability models per data split.

use phishinghook::prelude::*;
use phishinghook::scalability::SCALABILITY_MODELS;
use phishinghook_bench::{banner, load_scalability_study, main_dataset, RunScale};

fn main() {
    let scale = RunScale::from_args();
    banner("Fig. 7 - training/inference time per data split", scale);
    let study = load_scalability_study().unwrap_or_else(|| {
        println!("(fig5_study.json not found - running a fresh scalability study)\n");
        let dataset = main_dataset(scale, 0xF7);
        let folds = if scale == RunScale::Quick { 2 } else { 3 };
        run_scalability(&dataset, folds, &scale.profile(), 0xF7)
    });

    println!("training time (s):");
    println!("{:<20} {:>9} {:>9} {:>9}", "model", "1/3", "2/3", "1.0");
    for model in SCALABILITY_MODELS {
        print!("{:<20}", model.name());
        for ratio in SPLIT_RATIOS {
            print!(" {:>9.3}", study.mean_times(model, ratio).0);
        }
        println!();
    }
    println!("\ninference time over the test fold (s):");
    println!("{:<20} {:>9} {:>9} {:>9}", "model", "1/3", "2/3", "1.0");
    for model in SCALABILITY_MODELS {
        print!("{:<20}", model.name());
        for ratio in SPLIT_RATIOS {
            print!(" {:>9.4}", study.mean_times(model, ratio).1);
        }
        println!();
    }

    // The paper's headline ratios.
    let rf = study.mean_times(ModelKind::RandomForest, 1.0);
    let scs = study.mean_times(ModelKind::ScsGuard, 1.0);
    let eca = study.mean_times(ModelKind::EcaEfficientNet, 1.0);
    println!(
        "\nSCSGuard train time vs RF: {:+.1}% (paper: +64733%)  vs ECA: {:+.1}% (paper: +1031%)",
        100.0 * (scs.0 - rf.0) / rf.0.max(1e-9),
        100.0 * (scs.0 - eca.0) / eca.0.max(1e-9),
    );
}
