//! Decode-once feature store: every encoding of every contract, built
//! exactly once per dataset and sliced by sample index thereafter.
//!
//! The paper's model-evaluation matrix cross-validates six feature
//! encodings against sixteen models over 10 folds × 3 runs; featurizing
//! inside the trial loop multiplies the encoding cost by the trial count.
//! [`FeatureStore::build`] runs the whole featurization pipeline **once**:
//! each encoder is fitted on the dataset's shared
//! [`DisasmCache`]s and its outputs are packed into per-encoding
//! [`FeatureMatrix`] column stores. A (model, run, fold) trial then
//! *gathers* rows by index — a memcpy, never a re-decode or re-encode.
//!
//! Lookup tables (histogram vocabulary, bigram vocabulary, per-instruction
//! frequencies) are fitted on the full dataset rather than per training
//! fold, mirroring the paper's "exactly once on the entire contract
//! training set" construction; fold slicing only selects rows, so every
//! trial sees a consistent feature geometry.
//!
//! # Examples
//!
//! ```
//! use phishinghook_evm::{Bytecode, DisasmCache};
//! use phishinghook_features::store::{FeatureStore, StoreConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let caches = vec![
//!     DisasmCache::build(&Bytecode::from_hex("0x6080604052")?),
//!     DisasmCache::build(&Bytecode::from_hex("0x60016002016000f3")?),
//! ];
//! let store = FeatureStore::build(&caches, &StoreConfig::default());
//! assert_eq!(store.len(), 2);
//! // One histogram row per contract, fixed width across the dataset.
//! assert_eq!(store.histogram().rows(), 2);
//! let row = store.histogram().dense_row(0);
//! assert_eq!(row.len(), store.histogram_width());
//! # Ok(())
//! # }
//! ```

use crate::bigram::BigramEncoder;
use crate::escort::EscortEmbedder;
use crate::featurizer::{FeatureRow, FeatureVec};
use crate::freq_image::FreqImageEncoder;
use crate::histogram::HistogramEncoder;
use crate::image::R2d2Encoder;
use crate::tokens::{OpcodeTokenizer, SequenceVariant};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_evm::DisasmCache;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Geometry knobs of the six encoders (the feature-relevant subset of the
/// evaluation profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Image side for both vision encoders.
    pub image_side: usize,
    /// Language-model context length (tokens).
    pub context: usize,
    /// SCSGuard vocabulary cap.
    pub bigram_vocab: usize,
    /// SCSGuard padded sequence length.
    pub bigram_len: usize,
    /// ESCORT embedding dimension.
    pub escort_dim: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            image_side: 32,
            context: 64,
            bigram_vocab: crate::bigram::DEFAULT_VOCAB,
            bigram_len: crate::bigram::DEFAULT_LEN,
            escort_dim: 128,
        }
    }
}

/// Names one of the seven encodings a [`FeatureStore`] materializes (the
/// six encoders, with the tokenizer contributing both sequence variants).
///
/// The enum is the selection key of the serving path: a model kind maps to
/// the single encoding it consumes, so scoring a fresh contract pays for
/// exactly that encoding instead of all seven (token windows dominate the
/// full pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Opcode-occurrence histogram (the seven HSCs).
    Histogram,
    /// Per-instruction frequency image (ViT+Freq).
    FreqImage,
    /// RGB byte image (ViT+R2D2, ECA+EfficientNet).
    R2d2,
    /// SCSGuard bigram id sequence.
    Bigram,
    /// α-variant truncated token windows (GPT-2a, T5a).
    TokensTruncate,
    /// β-variant sliding token windows (GPT-2b, T5b).
    TokensWindows,
    /// ESCORT hashed-trigram embedding.
    Escort,
}

impl Encoding {
    /// All seven encodings, in store order (the order
    /// [`FeatureStore::encode_new`] returns rows in).
    pub const ALL: [Encoding; 7] = [
        Encoding::Histogram,
        Encoding::FreqImage,
        Encoding::R2d2,
        Encoding::Bigram,
        Encoding::TokensTruncate,
        Encoding::TokensWindows,
        Encoding::Escort,
    ];

    /// Position in [`Encoding::ALL`] (and in the `encode_new` row array).
    pub fn index(self) -> usize {
        match self {
            Encoding::Histogram => 0,
            Encoding::FreqImage => 1,
            Encoding::R2d2 => 2,
            Encoding::Bigram => 3,
            Encoding::TokensTruncate => 4,
            Encoding::TokensWindows => 5,
            Encoding::Escort => 6,
        }
    }

    /// Short stable name, used in benches and reports.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Histogram => "histogram",
            Encoding::FreqImage => "freq_image",
            Encoding::R2d2 => "r2d2",
            Encoding::Bigram => "bigram",
            Encoding::TokensTruncate => "tokens_truncate",
            Encoding::TokensWindows => "tokens_windows",
            Encoding::Escort => "escort",
        }
    }
}

/// How a store maps an encoder over a cache batch. The features crate is
/// dependency-free, so the parallel driver lives upstream (the core crate's
/// worker pool implements this trait); [`SequentialExecutor`] is the
/// built-in single-threaded fallback.
pub trait BatchExecutor: Sync {
    /// Applies `encode` to every cache, preserving order.
    fn encode_batch(
        &self,
        caches: &[DisasmCache],
        encode: &(dyn Fn(&DisasmCache) -> FeatureVec + Sync),
    ) -> Vec<FeatureVec>;
}

/// Single-threaded [`BatchExecutor`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl BatchExecutor for SequentialExecutor {
    fn encode_batch(
        &self,
        caches: &[DisasmCache],
        encode: &(dyn Fn(&DisasmCache) -> FeatureVec + Sync),
    ) -> Vec<FeatureVec> {
        caches.iter().map(encode).collect()
    }
}

/// Column-store layout of one encoding over a whole dataset.
#[derive(Debug, Clone, PartialEq)]
enum Columns {
    /// Row-major dense block, fixed `width` per row.
    Dense { width: usize, data: Vec<f32> },
    /// Row-major id block, fixed `width` per row.
    Ids { width: usize, data: Vec<u32> },
    /// Ragged per-sample window lists; `offsets[i]..offsets[i + 1]` indexes
    /// sample `i`'s windows.
    Windows {
        offsets: Vec<usize>,
        windows: Vec<Vec<u32>>,
    },
    /// A window block spilled to its on-disk columnar form: only the
    /// offset tables stay resident; window ids are read back per gathered
    /// row. This is what lets token-window blocks — the largest matrices a
    /// store holds — leave RAM between trials.
    SpilledWindows {
        /// The spill file ([`SPILL_MAGIC`]-headed matrix payload).
        path: PathBuf,
        /// `offsets[i]..offsets[i + 1]` = sample `i`'s window range.
        offsets: Vec<usize>,
        /// `id_offsets[w]..id_offsets[w + 1]` = window `w`'s id range in
        /// the file's flat id block.
        id_offsets: Vec<u64>,
        /// Byte position of the flat id block inside the file.
        data_start: u64,
    },
}

/// Magic of a standalone spill file: **P**hishing**H**oo**K** **S**pill.
pub const SPILL_MAGIC: [u8; 4] = *b"PHKS";

/// Spill-file format version (the payload is the [`FeatureMatrix`]
/// columnar codec, versioned independently of the artifact container).
pub const SPILL_VERSION: u32 = 1;

/// Rows gathered out of a [`FeatureMatrix`]: borrowed views when the block
/// is resident, owned window lists freshly read from disk when it is
/// spilled. Either way, [`GatheredRows::rows`] yields the `FeatureRow`
/// slice the model layer consumes — callers stay layout-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum GatheredRows<'a> {
    /// Borrowed views into a resident matrix.
    Views(Vec<FeatureRow<'a>>),
    /// Window lists materialized from a spill file.
    OwnedWindows(Vec<Vec<Vec<u32>>>),
}

impl GatheredRows<'_> {
    /// The gathered row views, in gather order.
    pub fn rows(&self) -> Vec<FeatureRow<'_>> {
        match self {
            GatheredRows::Views(v) => v.clone(),
            GatheredRows::OwnedWindows(ws) => ws.iter().map(|w| FeatureRow::Windows(w)).collect(),
        }
    }

    /// Number of gathered rows.
    pub fn len(&self) -> usize {
        match self {
            GatheredRows::Views(v) => v.len(),
            GatheredRows::OwnedWindows(ws) => ws.len(),
        }
    }

    /// `true` when nothing was gathered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One encoding of every sample, indexed by sample, sliceable by fold.
///
/// Dense and id encodings are packed row-major into a single flat buffer;
/// window encodings keep a ragged offset table. Rows are borrowed out as
/// [`FeatureRow`] views and gathered per fold without touching an encoder.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    rows: usize,
    columns: Columns,
}

impl FeatureMatrix {
    /// Packs per-sample feature vectors into a column store.
    ///
    /// # Panics
    ///
    /// Panics if the vectors mix representations or dense/id rows disagree
    /// on width (encoders produce fixed geometry per dataset, so a mismatch
    /// is a featurization bug).
    pub fn from_vecs(vecs: Vec<FeatureVec>) -> Self {
        let rows = vecs.len();
        let columns = match vecs.first() {
            None => Columns::Dense {
                width: 0,
                data: Vec::new(),
            },
            Some(FeatureVec::Dense(first)) => {
                let width = first.len();
                let mut data = Vec::with_capacity(width * rows);
                for v in &vecs {
                    let row = v.as_dense().expect("mixed feature representations");
                    assert_eq!(row.len(), width, "ragged dense rows");
                    data.extend_from_slice(row);
                }
                Columns::Dense { width, data }
            }
            Some(FeatureVec::Ids(first)) => {
                let width = first.len();
                let mut data = Vec::with_capacity(width * rows);
                for v in &vecs {
                    let row = v.as_ids().expect("mixed feature representations");
                    assert_eq!(row.len(), width, "ragged id rows");
                    data.extend_from_slice(row);
                }
                Columns::Ids { width, data }
            }
            Some(FeatureVec::Windows(_)) => {
                let mut offsets = Vec::with_capacity(rows + 1);
                let mut windows = Vec::new();
                offsets.push(0);
                for v in vecs {
                    let FeatureVec::Windows(w) = v else {
                        panic!("mixed feature representations");
                    };
                    windows.extend(w);
                    offsets.push(windows.len());
                }
                Columns::Windows { offsets, windows }
            }
        };
        FeatureMatrix { rows, columns }
    }

    /// Number of samples in the store.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Fixed row width for dense/id layouts; `None` for ragged windows.
    pub fn width(&self) -> Option<usize> {
        match &self.columns {
            Columns::Dense { width, .. } | Columns::Ids { width, .. } => Some(*width),
            Columns::Windows { .. } | Columns::SpilledWindows { .. } => None,
        }
    }

    /// `true` when this block lives in its on-disk columnar form and rows
    /// must be materialized through the gather APIs.
    pub fn is_spilled(&self) -> bool {
        matches!(self.columns, Columns::SpilledWindows { .. })
    }

    /// The spill file backing this matrix, when spilled.
    pub fn spill_path(&self) -> Option<&Path> {
        match &self.columns {
            Columns::SpilledWindows { path, .. } => Some(path),
            _ => None,
        }
    }

    fn check_bounds(&self, i: usize) -> Result<(), ArtifactError> {
        if i < self.rows {
            Ok(())
        } else {
            Err(ArtifactError::Mismatch(format!(
                "row {i} out of bounds ({} rows)",
                self.rows
            )))
        }
    }

    /// Borrowed view of sample `i`, or a typed error when `i` is out of
    /// bounds or the block is spilled (disk rows cannot be borrowed).
    pub fn try_row(&self, i: usize) -> Result<FeatureRow<'_>, ArtifactError> {
        self.check_bounds(i)?;
        match &self.columns {
            Columns::Dense { width, data } => {
                Ok(FeatureRow::Dense(&data[i * width..(i + 1) * width]))
            }
            Columns::Ids { width, data } => Ok(FeatureRow::Ids(&data[i * width..(i + 1) * width])),
            Columns::Windows { offsets, windows } => {
                Ok(FeatureRow::Windows(&windows[offsets[i]..offsets[i + 1]]))
            }
            Columns::SpilledWindows { .. } => Err(ArtifactError::Mismatch(
                "spilled window matrix: rows must be gathered, not borrowed".into(),
            )),
        }
    }

    /// Borrowed view of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or the block is spilled.
    pub fn row(&self, i: usize) -> FeatureRow<'_> {
        self.try_row(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Dense row accessor, or a typed error on the wrong layout.
    pub fn try_dense_row(&self, i: usize) -> Result<&[f32], ArtifactError> {
        match self.try_row(i)? {
            FeatureRow::Dense(r) => Ok(r),
            _ => Err(ArtifactError::Mismatch("not a dense matrix".into())),
        }
    }

    /// Dense row accessor.
    ///
    /// # Panics
    ///
    /// Panics if the layout is not dense or `i` is out of bounds.
    pub fn dense_row(&self, i: usize) -> &[f32] {
        self.try_dense_row(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Borrowed row views for a fold, in index order, or a typed error on
    /// an out-of-bounds index or a spilled block.
    pub fn try_gather_rows(&self, indices: &[usize]) -> Result<Vec<FeatureRow<'_>>, ArtifactError> {
        indices.iter().map(|&i| self.try_row(i)).collect()
    }

    /// Borrowed row views for a fold, in index order — the zero-copy
    /// gather the trait-dispatched model layer consumes.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or the block is spilled.
    pub fn gather_rows(&self, indices: &[usize]) -> Vec<FeatureRow<'_>> {
        self.try_gather_rows(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Layout-agnostic gather: borrowed views for resident blocks, owned
    /// window lists read back from disk for spilled blocks. This is the
    /// one entry point the evaluation engine uses, which is why spilling a
    /// store requires no changes anywhere above it.
    pub fn try_gather(&self, indices: &[usize]) -> Result<GatheredRows<'_>, ArtifactError> {
        match &self.columns {
            Columns::SpilledWindows { .. } => Ok(GatheredRows::OwnedWindows(
                self.try_gather_windows(indices)?,
            )),
            _ => Ok(GatheredRows::Views(self.try_gather_rows(indices)?)),
        }
    }

    /// [`FeatureMatrix::try_gather`] for infallible callers.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds index or a spill-file read failure.
    pub fn gather(&self, indices: &[usize]) -> GatheredRows<'_> {
        self.try_gather(indices).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Gathers dense rows for a fold, in index order (copies row data),
    /// or a typed error on the wrong layout.
    pub fn try_gather_dense(&self, indices: &[usize]) -> Result<Vec<Vec<f32>>, ArtifactError> {
        indices
            .iter()
            .map(|&i| self.try_dense_row(i).map(<[f32]>::to_vec))
            .collect()
    }

    /// Gathers dense rows for a fold, in index order (copies row data —
    /// downstream models need owned contiguous inputs).
    ///
    /// # Panics
    ///
    /// Panics if the layout is not dense or an index is out of bounds.
    pub fn gather_dense(&self, indices: &[usize]) -> Vec<Vec<f32>> {
        self.try_gather_dense(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Gathers dense rows into one row-major flat buffer, or a typed error
    /// on the wrong layout.
    pub fn try_gather_dense_flat(&self, indices: &[usize]) -> Result<Vec<f32>, ArtifactError> {
        let Columns::Dense { width, data } = &self.columns else {
            return Err(ArtifactError::Mismatch("not a dense matrix".into()));
        };
        let mut out = Vec::with_capacity(indices.len() * width);
        for &i in indices {
            self.check_bounds(i)?;
            out.extend_from_slice(&data[i * width..(i + 1) * width]);
        }
        Ok(out)
    }

    /// Gathers dense rows for a fold into one row-major flat buffer — the
    /// zero-intermediate path into a contiguous design matrix.
    ///
    /// # Panics
    ///
    /// Panics if the layout is not dense or an index is out of bounds.
    pub fn gather_dense_flat(&self, indices: &[usize]) -> Vec<f32> {
        self.try_gather_dense_flat(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Gathers id rows for a fold, in index order, or a typed error on the
    /// wrong layout.
    pub fn try_gather_ids(&self, indices: &[usize]) -> Result<Vec<Vec<u32>>, ArtifactError> {
        indices
            .iter()
            .map(|&i| match self.try_row(i)? {
                FeatureRow::Ids(r) => Ok(r.to_vec()),
                _ => Err(ArtifactError::Mismatch("not an id matrix".into())),
            })
            .collect()
    }

    /// Gathers id rows for a fold, in index order.
    ///
    /// # Panics
    ///
    /// Panics if the layout is not ids or an index is out of bounds.
    pub fn gather_ids(&self, indices: &[usize]) -> Vec<Vec<u32>> {
        self.try_gather_ids(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Gathers per-sample window lists for a fold, in index order. For a
    /// spilled block this reads exactly the requested rows back from the
    /// spill file; resident blocks copy out of RAM.
    pub fn try_gather_windows(
        &self,
        indices: &[usize],
    ) -> Result<Vec<Vec<Vec<u32>>>, ArtifactError> {
        match &self.columns {
            Columns::SpilledWindows {
                path,
                offsets,
                id_offsets,
                data_start,
            } => {
                let mut file = std::fs::File::open(path)?;
                let mut out = Vec::with_capacity(indices.len());
                for &i in indices {
                    self.check_bounds(i)?;
                    let (w0, w1) = (offsets[i], offsets[i + 1]);
                    let (first, last) = (id_offsets[w0], id_offsets[w1]);
                    let mut raw = vec![0u8; (last - first) as usize * 4];
                    file.seek(SeekFrom::Start(data_start + first * 4))?;
                    file.read_exact(&mut raw)?;
                    let ids: Vec<u32> = raw
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    let row: Vec<Vec<u32>> = (w0..w1)
                        .map(|w| {
                            let a = (id_offsets[w] - first) as usize;
                            let b = (id_offsets[w + 1] - first) as usize;
                            ids[a..b].to_vec()
                        })
                        .collect();
                    out.push(row);
                }
                Ok(out)
            }
            _ => indices
                .iter()
                .map(|&i| match self.try_row(i)? {
                    FeatureRow::Windows(w) => Ok(w.to_vec()),
                    _ => Err(ArtifactError::Mismatch("not a window matrix".into())),
                })
                .collect(),
        }
    }

    /// Gathers per-sample window lists for a fold, in index order.
    ///
    /// # Panics
    ///
    /// Panics if the layout is not windows, an index is out of bounds, or
    /// a spill-file read fails.
    pub fn gather_windows(&self, indices: &[usize]) -> Vec<Vec<Vec<u32>>> {
        self.try_gather_windows(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Total scalar count held by the store (diagnostics/benches). Spilled
    /// blocks report their on-disk scalar count.
    pub fn scalar_count(&self) -> usize {
        match &self.columns {
            Columns::Dense { data, .. } => data.len(),
            Columns::Ids { data, .. } => data.len(),
            Columns::Windows { windows, .. } => windows.iter().map(Vec::len).sum(),
            Columns::SpilledWindows { id_offsets, .. } => {
                id_offsets.last().copied().unwrap_or(0) as usize
            }
        }
    }

    /// Scalars currently resident in RAM: the whole block unless spilled,
    /// only the offset tables when spilled.
    pub fn resident_scalar_count(&self) -> usize {
        match &self.columns {
            Columns::SpilledWindows {
                offsets,
                id_offsets,
                ..
            } => offsets.len() + id_offsets.len() * 2,
            _ => self.scalar_count(),
        }
    }

    /// Serializes the matrix in its on-disk columnar form — the same
    /// layout [`FeatureMatrix::spill_to`] writes, so an embedded artifact
    /// section and a standalone spill file share one codec.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] when the block is already spilled (its
    /// bytes are the spill file; re-encode by gathering).
    pub fn write_state(&self, w: &mut ByteWriter) -> Result<(), ArtifactError> {
        w.put_usize(self.rows);
        match &self.columns {
            Columns::Dense { width, data } => {
                w.put_u8(0);
                w.put_usize(*width);
                w.put_f32_slice(data);
            }
            Columns::Ids { width, data } => {
                w.put_u8(1);
                w.put_usize(*width);
                w.put_u32_slice(data);
            }
            Columns::Windows { offsets, windows } => {
                let id_offsets = window_id_offsets(windows);
                write_windows_header(w, offsets, &id_offsets);
                for win in windows {
                    for &id in win {
                        w.put_u32(id);
                    }
                }
            }
            Columns::SpilledWindows { .. } => {
                return Err(ArtifactError::Mismatch(
                    "matrix is spilled; its on-disk form is the spill file itself".into(),
                ))
            }
        }
        Ok(())
    }

    /// Decodes a matrix from its on-disk columnar form into RAM.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Corrupt`] on truncation, an unknown layout tag, or
    /// inconsistent offset tables.
    pub fn read_state(r: &mut ByteReader<'_>) -> Result<Self, ArtifactError> {
        let rows = r.take_usize()?;
        let tag = r.take_u8()?;
        let columns = match tag {
            0 => {
                let width = r.take_usize()?;
                let data = r.take_f32_slice()?;
                if data.len() != rows * width {
                    return Err(ArtifactError::Corrupt(format!(
                        "dense block holds {} values for {rows}x{width}",
                        data.len()
                    )));
                }
                Columns::Dense { width, data }
            }
            1 => {
                let width = r.take_usize()?;
                let data = r.take_u32_slice()?;
                if data.len() != rows * width {
                    return Err(ArtifactError::Corrupt(format!(
                        "id block holds {} values for {rows}x{width}",
                        data.len()
                    )));
                }
                Columns::Ids { width, data }
            }
            2 => {
                let offsets64 = r.take_u64_slice()?;
                let id_offsets = r.take_u64_slice()?;
                let total = r.take_usize()?;
                // Every id occupies 4 payload bytes; bounding the total
                // keeps crafted offset tables from forcing huge
                // per-window pre-allocations below.
                if total.checked_mul(4).is_none_or(|b| b > r.remaining()) {
                    return Err(ArtifactError::Corrupt(format!(
                        "window block claims {total} ids beyond the payload"
                    )));
                }
                let (offsets, n_windows) =
                    validate_window_offsets(rows, &offsets64, &id_offsets, total as u64)?;
                let mut windows = Vec::with_capacity(n_windows);
                for w in 0..n_windows {
                    let len = (id_offsets[w + 1] - id_offsets[w]) as usize;
                    let mut win = Vec::with_capacity(len);
                    for _ in 0..len {
                        win.push(r.take_u32()?);
                    }
                    windows.push(win);
                }
                Columns::Windows { offsets, windows }
            }
            other => {
                return Err(ArtifactError::Corrupt(format!(
                    "unknown matrix layout tag {other}"
                )))
            }
        };
        Ok(FeatureMatrix { rows, columns })
    }

    /// Writes a windows-layout matrix to `path` in its on-disk columnar
    /// form and returns the spilled handle: offset tables resident, window
    /// ids on disk, gathered lazily per trial.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] for non-window layouts (dense and id
    /// blocks are small; spilling them is not supported), plus any I/O
    /// failure.
    pub fn spill_to(&self, path: impl AsRef<Path>) -> Result<FeatureMatrix, ArtifactError> {
        let Columns::Windows { offsets, windows } = &self.columns else {
            return Err(ArtifactError::Mismatch(
                "only window blocks spill to disk".into(),
            ));
        };
        let path = path.as_ref().to_path_buf();
        let id_offsets = window_id_offsets(windows);

        // The header is tiny (offset tables); only it is materialized.
        // The id block — the part worth spilling — streams window by
        // window, so spilling never doubles the block's RAM footprint.
        let mut header = ByteWriter::new();
        header.put_raw(&SPILL_MAGIC);
        header.put_u32(SPILL_VERSION);
        header.put_usize(self.rows);
        write_windows_header(&mut header, offsets, &id_offsets);
        let data_start = header.len() as u64;
        debug_assert_eq!(
            data_start,
            spill_data_start(offsets.len(), id_offsets.len())
        );
        let file = std::fs::File::create(&path)?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(header.as_bytes())?;
        for win in windows {
            for &id in win {
                out.write_all(&id.to_le_bytes())?;
            }
        }
        out.into_inner().map_err(|e| e.into_error())?.sync_data()?;

        Ok(FeatureMatrix {
            rows: self.rows,
            columns: Columns::SpilledWindows {
                path,
                offsets: offsets.clone(),
                id_offsets,
                data_start,
            },
        })
    }

    /// Opens an existing spill file as a spilled matrix, reading only the
    /// offset tables — the cross-process form of [`FeatureMatrix::spill_to`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Format`] on a bad magic/version,
    /// [`ArtifactError::Corrupt`] on a non-window payload or inconsistent
    /// offsets, plus any I/O failure.
    pub fn open_spilled(path: impl AsRef<Path>) -> Result<FeatureMatrix, ArtifactError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::open(&path)?;
        let mut fixed = [0u8; 4 + 4 + 8 + 1];
        file.read_exact(&mut fixed)?;
        if fixed[..4] != SPILL_MAGIC {
            return Err(ArtifactError::Format(format!(
                "bad spill magic {:02X?}, expected {SPILL_MAGIC:02X?} (\"PHKS\")",
                &fixed[..4]
            )));
        }
        let version = u32::from_le_bytes(fixed[4..8].try_into().unwrap());
        if version != SPILL_VERSION {
            return Err(ArtifactError::Format(format!(
                "spill version {version} not supported (reader knows {SPILL_VERSION})"
            )));
        }
        let rows = u64::from_le_bytes(fixed[8..16].try_into().unwrap()) as usize;
        if fixed[16] != 2 {
            return Err(ArtifactError::Corrupt(format!(
                "spill file holds layout tag {}, expected windows (2)",
                fixed[16]
            )));
        }
        let offsets64 = read_u64_slice_from(&mut file)?;
        let id_offsets = read_u64_slice_from(&mut file)?;
        let mut total_raw = [0u8; 8];
        file.read_exact(&mut total_raw)?;
        let total = u64::from_le_bytes(total_raw);
        let (offsets, _) = validate_window_offsets(rows, &offsets64, &id_offsets, total)?;
        let data_start = spill_data_start(offsets64.len(), id_offsets.len());
        // Checked arithmetic: a crafted total must fail here with a typed
        // error, not wrap the expected length (release) or panic (debug)
        // and mis-validate the file.
        let expected_len = total
            .checked_mul(4)
            .and_then(|b| b.checked_add(data_start))
            .ok_or_else(|| {
                ArtifactError::Corrupt(format!("spill file claims an absurd id count {total}"))
            })?;
        if file.metadata()?.len() != expected_len {
            return Err(ArtifactError::Corrupt(format!(
                "spill file is {} bytes, layout requires {expected_len}",
                file.metadata()?.len()
            )));
        }
        Ok(FeatureMatrix {
            rows,
            columns: Columns::SpilledWindows {
                path,
                offsets,
                id_offsets,
                data_start,
            },
        })
    }
}

/// Cumulative per-window id counts (`id_offsets[w]..id_offsets[w + 1]` =
/// window `w`'s id range), the second offset table of the windows layout.
fn window_id_offsets(windows: &[Vec<u32>]) -> Vec<u64> {
    let mut id_offsets = Vec::with_capacity(windows.len() + 1);
    let mut total = 0u64;
    id_offsets.push(0);
    for win in windows {
        total += win.len() as u64;
        id_offsets.push(total);
    }
    id_offsets
}

/// The windows-layout wire prefix shared by the embedded codec
/// ([`FeatureMatrix::write_state`]) and the streaming spill writer: layout
/// tag, row-offset table, id-offset table, total id count. The flat `u32`
/// id block follows immediately.
fn write_windows_header(w: &mut ByteWriter, offsets: &[usize], id_offsets: &[u64]) {
    w.put_u8(2);
    let offsets64: Vec<u64> = offsets.iter().map(|&o| o as u64).collect();
    w.put_u64_slice(&offsets64);
    w.put_u64_slice(id_offsets);
    w.put_usize(id_offsets.last().copied().unwrap_or(0) as usize);
}

/// Byte position of the flat id block inside a spill file, derived from
/// the single place that knows the prefix layout: magic + version + rows +
/// [`write_windows_header`]'s tag, two count-prefixed `u64` tables and the
/// id-count field.
fn spill_data_start(n_row_offsets: usize, n_id_offsets: usize) -> u64 {
    (4 + 4) + (8 + 1) + (8 + 8 * n_row_offsets as u64) + (8 + 8 * n_id_offsets as u64) + 8
}

/// Checks the two window offset tables against each other: monotone,
/// zero-based, mutually consistent, covering `total` ids.
fn validate_window_offsets(
    rows: usize,
    offsets64: &[u64],
    id_offsets: &[u64],
    total: u64,
) -> Result<(Vec<usize>, usize), ArtifactError> {
    if offsets64.len() != rows + 1 || offsets64.first() != Some(&0) {
        return Err(ArtifactError::Corrupt(format!(
            "window offset table holds {} entries for {rows} rows",
            offsets64.len()
        )));
    }
    if offsets64.windows(2).any(|p| p[0] > p[1]) {
        return Err(ArtifactError::Corrupt(
            "window offsets are not monotone".into(),
        ));
    }
    let n_windows = *offsets64.last().unwrap() as usize;
    if id_offsets.len() != n_windows + 1
        || id_offsets.first() != Some(&0)
        || id_offsets.windows(2).any(|p| p[0] > p[1])
        || *id_offsets.last().unwrap() != total
    {
        return Err(ArtifactError::Corrupt(format!(
            "id offset table holds {} entries for {n_windows} windows ({total} ids)",
            id_offsets.len()
        )));
    }
    Ok((offsets64.iter().map(|&o| o as usize).collect(), n_windows))
}

/// Reads one `u64`-count-prefixed `u64` slice straight from a file.
fn read_u64_slice_from(file: &mut std::fs::File) -> Result<Vec<u64>, ArtifactError> {
    let mut raw = [0u8; 8];
    file.read_exact(&mut raw)?;
    let len = u64::from_le_bytes(raw) as usize;
    let cap = file.metadata()?.len() as usize / 8;
    if len > cap {
        return Err(ArtifactError::Corrupt(format!(
            "offset table claims {len} entries in a {cap}-word file"
        )));
    }
    let mut bytes = vec![0u8; len * 8];
    file.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Incremental spill writer: accepts one sample's window list at a time
/// and produces a spill file **byte-identical** to
/// [`FeatureMatrix::spill_to`]'s without ever materializing the window
/// block in RAM.
///
/// The spill format puts the offset tables *before* the flat id block, so
/// a single forward pass cannot write the final file directly (the tables
/// are only complete at the end). Ids therefore stream into a sidecar
/// `<path>.data` file as rows arrive — the only resident state is the two
/// offset tables, which stay resident in the spilled handle anyway — and
/// [`StreamingSpillWriter::finish`] assembles header + sidecar into the
/// final file with a bounded copy buffer.
#[derive(Debug)]
pub struct StreamingSpillWriter {
    path: PathBuf,
    data_path: PathBuf,
    data: std::io::BufWriter<std::fs::File>,
    offsets: Vec<usize>,
    id_offsets: Vec<u64>,
}

impl StreamingSpillWriter {
    /// Opens a writer targeting `path`; the sidecar id file is created
    /// next to it immediately.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the sidecar, as [`ArtifactError::Io`].
    pub fn create(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let path = path.as_ref().to_path_buf();
        let mut data_path = path.clone().into_os_string();
        data_path.push(".data");
        let data_path = PathBuf::from(data_path);
        let data = std::io::BufWriter::new(std::fs::File::create(&data_path)?);
        Ok(StreamingSpillWriter {
            path,
            data_path,
            data,
            offsets: vec![0],
            id_offsets: vec![0],
        })
    }

    /// Appends one sample's window list; its ids leave RAM immediately.
    ///
    /// # Errors
    ///
    /// Any sidecar write failure, as [`ArtifactError::Io`].
    pub fn push_row(&mut self, windows: &[Vec<u32>]) -> Result<(), ArtifactError> {
        for win in windows {
            for &id in win {
                self.data.write_all(&id.to_le_bytes())?;
            }
            let prev = *self.id_offsets.last().unwrap();
            self.id_offsets.push(prev + win.len() as u64);
        }
        self.offsets
            .push(self.offsets.last().unwrap() + windows.len());
        Ok(())
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Window ids streamed to the sidecar so far.
    pub fn total_ids(&self) -> u64 {
        *self.id_offsets.last().unwrap()
    }

    /// Flushes and closes the sidecar, handing back the writer's parts.
    fn close_data(self) -> Result<(PathBuf, PathBuf, Vec<usize>, Vec<u64>), ArtifactError> {
        let StreamingSpillWriter {
            path,
            data_path,
            data,
            offsets,
            id_offsets,
        } = self;
        data.into_inner().map_err(|e| e.into_error())?;
        Ok((path, data_path, offsets, id_offsets))
    }

    /// Assembles the final spill file — header (magic, version, offset
    /// tables) followed by the streamed id block — removes the sidecar,
    /// and returns the spilled handle. The file is byte-identical to what
    /// [`FeatureMatrix::spill_to`] writes for the same rows.
    ///
    /// # Errors
    ///
    /// Any I/O failure, as [`ArtifactError::Io`].
    pub fn finish(self) -> Result<FeatureMatrix, ArtifactError> {
        let (path, data_path, offsets, id_offsets) = self.close_data()?;
        let rows = offsets.len() - 1;
        let mut header = ByteWriter::new();
        header.put_raw(&SPILL_MAGIC);
        header.put_u32(SPILL_VERSION);
        header.put_usize(rows);
        write_windows_header(&mut header, &offsets, &id_offsets);
        let data_start = header.len() as u64;
        debug_assert_eq!(
            data_start,
            spill_data_start(offsets.len(), id_offsets.len())
        );
        let file = std::fs::File::create(&path)?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(header.as_bytes())?;
        let mut src = std::fs::File::open(&data_path)?;
        // io::copy moves the id block through a fixed-size buffer; the
        // block itself never becomes resident.
        std::io::copy(&mut src, &mut out)?;
        out.into_inner().map_err(|e| e.into_error())?.sync_data()?;
        drop(src);
        std::fs::remove_file(&data_path)?;
        Ok(FeatureMatrix {
            rows,
            columns: Columns::SpilledWindows {
                path,
                offsets,
                id_offsets,
                data_start,
            },
        })
    }

    /// Reads the streamed block back into a *resident* windows matrix and
    /// removes the sidecar — the under-threshold exit, mirroring the batch
    /// builder's decision to keep small blocks in RAM.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Corrupt`] if the sidecar length disagrees with the
    /// offset tables, plus any I/O failure.
    pub fn into_resident(self) -> Result<FeatureMatrix, ArtifactError> {
        let (_path, data_path, offsets, id_offsets) = self.close_data()?;
        let rows = offsets.len() - 1;
        let total = *id_offsets.last().unwrap() as usize;
        let bytes = std::fs::read(&data_path)?;
        std::fs::remove_file(&data_path)?;
        if bytes.len() != total * 4 {
            return Err(ArtifactError::Corrupt(format!(
                "spill sidecar holds {} bytes for {total} ids",
                bytes.len()
            )));
        }
        let ids: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let windows: Vec<Vec<u32>> = id_offsets
            .windows(2)
            .map(|p| ids[p[0] as usize..p[1] as usize].to_vec())
            .collect();
        Ok(FeatureMatrix {
            rows,
            columns: Columns::Windows { offsets, windows },
        })
    }
}

/// The six fitted encoders of one dataset, detached from the column stores.
///
/// This is the *serving half* of a [`FeatureStore`]: it carries only the
/// lookup tables (histogram vocabulary, frequency tables, bigram
/// vocabulary — kilobytes), not the per-sample feature matrices, so a
/// trained detector can keep featurizing fresh contracts long after the
/// training-set encodings are dropped.
#[derive(Debug, Clone)]
pub struct FittedEncoders {
    hist: HistogramEncoder,
    freq: FreqImageEncoder,
    r2d2: R2d2Encoder,
    bigram: BigramEncoder,
    token: OpcodeTokenizer,
    escort: EscortEmbedder,
}

impl FittedEncoders {
    /// Fits all six encoders on `fit`'s shared caches under `config`'s
    /// geometry.
    pub fn fit(fit: &[DisasmCache], config: &StoreConfig) -> Self {
        FittedEncoders {
            hist: HistogramEncoder::fit(fit),
            freq: FreqImageEncoder::fit(fit, config.image_side),
            r2d2: R2d2Encoder::new(config.image_side),
            bigram: BigramEncoder::fit(fit, config.bigram_vocab, config.bigram_len),
            token: OpcodeTokenizer::new(config.context),
            escort: EscortEmbedder::new(config.escort_dim),
        }
    }

    /// Featurizes one contract under a single selected encoding — the
    /// selective serving path: a single-model detector pays for exactly the
    /// representation its model consumes, never the full seven-row pass.
    pub fn encode(&self, cache: &DisasmCache, encoding: Encoding) -> FeatureVec {
        match encoding {
            Encoding::Histogram => FeatureVec::Dense(self.hist.encode(cache)),
            Encoding::FreqImage => FeatureVec::Dense(self.freq.encode(cache)),
            Encoding::R2d2 => FeatureVec::Dense(self.r2d2.encode(cache)),
            Encoding::Bigram => FeatureVec::Ids(self.bigram.encode(cache)),
            Encoding::TokensTruncate => {
                FeatureVec::Windows(self.token.encode(cache, SequenceVariant::Truncate))
            }
            Encoding::TokensWindows => {
                FeatureVec::Windows(self.token.encode(cache, SequenceVariant::SlidingWindow))
            }
            Encoding::Escort => FeatureVec::Dense(self.escort.encode(cache)),
        }
    }

    /// All seven encoding rows of one contract, in [`Encoding::ALL`] order.
    pub fn encode_all(&self, cache: &DisasmCache) -> [FeatureVec; 7] {
        Encoding::ALL.map(|e| self.encode(cache, e))
    }

    /// Histogram feature width (dataset vocabulary size).
    pub fn histogram_width(&self) -> usize {
        self.hist.vocab_len()
    }

    /// SCSGuard embedding-table size (bigram vocabulary + PAD/UNK).
    pub fn bigram_vocab_size(&self) -> usize {
        self.bigram.vocab_size()
    }

    /// Language-model vocabulary size (opcode-level, fixed).
    pub fn token_vocab_size(&self) -> usize {
        self.token.vocab_size()
    }

    /// Serializes all six fitted lookup tables — the serving half of a
    /// store, kilobytes — as one opaque blob for the artifact layer.
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.hist.write_state(&mut w);
        self.freq.write_state(&mut w);
        self.r2d2.write_state(&mut w);
        self.bigram.write_state(&mut w);
        self.token.write_state(&mut w);
        self.escort.write_state(&mut w);
        w.into_bytes()
    }

    /// Rebuilds the fitted encoder set from [`FittedEncoders::export_state`]
    /// bytes. A detector reloaded through this path featurizes fresh
    /// contracts against exactly the lookup tables it was trained under.
    ///
    /// # Errors
    ///
    /// Any per-encoder decode failure, plus
    /// [`ArtifactError::Corrupt`] on trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let encoders = FittedEncoders {
            hist: HistogramEncoder::read_state(&mut r)?,
            freq: FreqImageEncoder::read_state(&mut r)?,
            r2d2: R2d2Encoder::read_state(&mut r)?,
            bigram: BigramEncoder::read_state(&mut r)?,
            token: OpcodeTokenizer::read_state(&mut r)?,
            escort: EscortEmbedder::read_state(&mut r)?,
        };
        r.expect_exhausted("fitted encoder tables")?;
        Ok(encoders)
    }

    /// `true` when the table-bearing encoders still hold the raw counts an
    /// incremental refit needs — i.e. this set was fitted in-process, not
    /// restored via [`FittedEncoders::import_state`].
    pub fn can_extend(&self) -> bool {
        self.freq.can_extend() && self.bigram.can_extend()
    }

    /// Folds freshly observed contracts into the fitted lookup tables —
    /// the streaming-ingestion refit path. Equivalent to refitting from
    /// scratch on the concatenation of the original fit set and every
    /// batch passed here (asserted byte-for-byte in tests), at O(new)
    /// instead of O(total) scan cost: the histogram appends unseen opcode
    /// columns in place, while the frequency and bigram tables merge
    /// retained raw counts and re-rank. The geometry-only encoders (R2D2,
    /// tokenizer, ESCORT) carry no dataset state and are untouched.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] when the encoders were restored from an
    /// artifact: artifacts carry only the normalized tables, never the raw
    /// counts, and serving tables must not silently drift from what the
    /// model was trained under. Nothing is mutated on error.
    pub fn extend_fit(&mut self, new: &[DisasmCache]) -> Result<(), ArtifactError> {
        if !self.can_extend() {
            return Err(ArtifactError::Mismatch(
                "encoders restored from an artifact carry no raw counts; refit instead of \
                 extending"
                    .into(),
            ));
        }
        self.hist.extend_fit(new);
        self.freq.extend_fit(new)?;
        self.bigram.extend_fit(new)?;
        Ok(())
    }
}

/// Where and when a [`FeatureStore`] spills window blocks to their
/// on-disk columnar form during the build.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory the spill files are written into (one file per spilled
    /// encoding, named `<encoding>.phkspill`). The caller owns the
    /// directory's lifetime; dropping the store does not delete files.
    pub dir: PathBuf,
    /// Blocks whose scalar payload is at least this many bytes are
    /// spilled. `0` spills every window block (useful in tests).
    pub threshold_bytes: usize,
}

impl SpillConfig {
    /// Spills every window block into `dir`.
    pub fn all(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            threshold_bytes: 0,
        }
    }
}

/// RAM budget of a streaming store build
/// ([`FeatureStore::build_streaming`]).
#[derive(Debug, Clone)]
pub struct StreamBudget {
    /// Spill destination and threshold, exactly as the batch builder
    /// ([`FeatureStore::build_spilled_with`]) interprets them.
    pub spill: SpillConfig,
    /// Hard cap on how many samples' token-window blocks may be resident
    /// at once during the build: windows are encoded in chunks of at most
    /// this many rows and streamed to disk before the next chunk is
    /// encoded. Clamped to at least 1.
    pub resident_rows: usize,
}

/// What a streaming build actually did — the observability half of the
/// RAM-bound contract (tests assert `peak_resident_rows` never exceeds
/// the configured budget, at any chain length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Most token-window rows resident at any instant during the build.
    pub peak_resident_rows: usize,
    /// Encode-and-flush chunks across both token encodings.
    pub flushes: usize,
}

/// All encodings of one dataset, plus the fitted encoders (kept so freshly
/// observed contracts can be featurized against the same lookup tables).
#[derive(Debug, Clone)]
pub struct FeatureStore {
    len: usize,
    histogram: FeatureMatrix,
    freq_image: FeatureMatrix,
    r2d2: FeatureMatrix,
    bigram: FeatureMatrix,
    tokens_truncate: FeatureMatrix,
    tokens_windows: FeatureMatrix,
    escort: FeatureMatrix,
    encoders: FittedEncoders,
}

impl FeatureStore {
    /// Builds the store single-threaded; see [`FeatureStore::build_with`].
    pub fn build(caches: &[DisasmCache], config: &StoreConfig) -> Self {
        Self::build_with(caches, config, &SequentialExecutor)
    }

    /// Fits all six encoders on `caches` and encodes every sample once,
    /// fanning each encoding pass through `exec`.
    pub fn build_with(
        caches: &[DisasmCache],
        config: &StoreConfig,
        exec: &dyn BatchExecutor,
    ) -> Self {
        Self::build_fitted_with(caches, caches, config, exec)
    }

    /// Like [`FeatureStore::build_with`], but fits the encoder lookup
    /// tables on `fit` (a designated training subset) while still encoding
    /// every sample in `caches`. This is the leakage-safe variant for
    /// studies with a privileged hold-out direction — e.g. the temporal
    /// drift experiment, where vocabularies must not see future months.
    pub fn build_fitted_with(
        caches: &[DisasmCache],
        fit: &[DisasmCache],
        config: &StoreConfig,
        exec: &dyn BatchExecutor,
    ) -> Self {
        let encoders = FittedEncoders::fit(fit, config);

        let pack = |encoding: Encoding| {
            FeatureMatrix::from_vecs(exec.encode_batch(caches, &|c| encoders.encode(c, encoding)))
        };
        let histogram = pack(Encoding::Histogram);
        let freq_image = pack(Encoding::FreqImage);
        let r2d2 = pack(Encoding::R2d2);
        let bigram = pack(Encoding::Bigram);
        let tokens_truncate = pack(Encoding::TokensTruncate);
        let tokens_windows = pack(Encoding::TokensWindows);
        let escort = pack(Encoding::Escort);

        FeatureStore {
            len: caches.len(),
            histogram,
            freq_image,
            r2d2,
            bigram,
            tokens_truncate,
            tokens_windows,
            escort,
            encoders,
        }
    }

    /// Like [`FeatureStore::build_fitted_with`], but spills window blocks
    /// (the token encodings — the largest matrices a store holds) whose
    /// payload crosses `spill.threshold_bytes` to their on-disk columnar
    /// form during the build. Trials gather spilled rows lazily through
    /// [`FeatureMatrix::gather`], so corpora larger than RAM evaluate with
    /// no layout changes anywhere above the store.
    ///
    /// # Errors
    ///
    /// Any spill-file I/O failure, as [`ArtifactError::Io`].
    pub fn build_spilled_with(
        caches: &[DisasmCache],
        fit: &[DisasmCache],
        config: &StoreConfig,
        exec: &dyn BatchExecutor,
        spill: &SpillConfig,
    ) -> Result<Self, ArtifactError> {
        let mut store = Self::build_fitted_with(caches, fit, config, exec);
        std::fs::create_dir_all(&spill.dir)?;
        for encoding in [Encoding::TokensTruncate, Encoding::TokensWindows] {
            let matrix = store.matrix(encoding);
            if matrix.scalar_count() * 4 < spill.threshold_bytes {
                continue;
            }
            let path = spill.dir.join(format!("{}.phkspill", encoding.name()));
            let spilled = matrix.spill_to(path)?;
            match encoding {
                Encoding::TokensTruncate => store.tokens_truncate = spilled,
                Encoding::TokensWindows => store.tokens_windows = spilled,
                _ => unreachable!(),
            }
        }
        Ok(store)
    }

    /// Like [`FeatureStore::build_spilled_with`], but **bounded-RAM**: the
    /// token-window blocks — the only matrices that grow with contract
    /// size rather than staying O(rows × fixed width) — are encoded in
    /// chunks of at most `budget.resident_rows` samples and streamed to
    /// disk through a [`StreamingSpillWriter`] before the next chunk is
    /// encoded, so peak window residency is `budget.resident_rows` no
    /// matter how long the chain is. The batch builder, by contrast,
    /// materializes every window block in full and only then spills.
    ///
    /// The resulting store is **bit-identical** to the batch-built one:
    /// same encoder tables (fitted on `fit` up front), same matrices, and
    /// — when a block crosses `budget.spill.threshold_bytes` — the same
    /// spill-file bytes. Blocks under the threshold are read back resident
    /// at the end, matching the batch builder's keep-in-RAM decision.
    ///
    /// Returns the store plus a [`StreamReport`] carrying the observed
    /// peak residency.
    ///
    /// # Errors
    ///
    /// Any spill-file I/O failure, as [`ArtifactError::Io`].
    pub fn build_streaming(
        caches: &[DisasmCache],
        fit: &[DisasmCache],
        config: &StoreConfig,
        exec: &dyn BatchExecutor,
        budget: &StreamBudget,
    ) -> Result<(Self, StreamReport), ArtifactError> {
        let encoders = FittedEncoders::fit(fit, config);
        std::fs::create_dir_all(&budget.spill.dir)?;
        let chunk_rows = budget.resident_rows.max(1);
        let mut report = StreamReport {
            peak_resident_rows: 0,
            flushes: 0,
        };

        let stream_tokens = |encoding: Encoding,
                             report: &mut StreamReport|
         -> Result<FeatureMatrix, ArtifactError> {
            let path = budget
                .spill
                .dir
                .join(format!("{}.phkspill", encoding.name()));
            let mut writer = StreamingSpillWriter::create(&path)?;
            for chunk in caches.chunks(chunk_rows) {
                let rows = exec.encode_batch(chunk, &|c| encoders.encode(c, encoding));
                report.peak_resident_rows = report.peak_resident_rows.max(rows.len());
                report.flushes += 1;
                for row in &rows {
                    match row {
                        FeatureVec::Windows(w) => writer.push_row(w)?,
                        _ => unreachable!("token encodings produce window rows"),
                    }
                }
            }
            // Same keep-resident decision as the batch builder: blocks
            // under the byte threshold stay in RAM.
            if (writer.total_ids() as usize).saturating_mul(4) < budget.spill.threshold_bytes {
                writer.into_resident()
            } else {
                writer.finish()
            }
        };
        let tokens_truncate = stream_tokens(Encoding::TokensTruncate, &mut report)?;
        let tokens_windows = stream_tokens(Encoding::TokensWindows, &mut report)?;

        // The five fixed-width encodings are O(rows × width) — kilobytes
        // per thousand contracts — and stay resident, as in the batch
        // builder.
        let pack = |encoding: Encoding| {
            FeatureMatrix::from_vecs(exec.encode_batch(caches, &|c| encoders.encode(c, encoding)))
        };
        let store = FeatureStore {
            len: caches.len(),
            histogram: pack(Encoding::Histogram),
            freq_image: pack(Encoding::FreqImage),
            r2d2: pack(Encoding::R2d2),
            bigram: pack(Encoding::Bigram),
            tokens_truncate,
            tokens_windows,
            escort: pack(Encoding::Escort),
            encoders,
        };
        Ok((store, report))
    }

    /// The encodings currently living in their on-disk spilled form.
    pub fn spilled_encodings(&self) -> Vec<Encoding> {
        Encoding::ALL
            .into_iter()
            .filter(|&e| self.matrix(e).is_spilled())
            .collect()
    }

    /// Number of samples featurized.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Opcode-histogram rows (the seven HSCs).
    pub fn histogram(&self) -> &FeatureMatrix {
        &self.histogram
    }

    /// Frequency-image rows (ViT+Freq).
    pub fn freq_image(&self) -> &FeatureMatrix {
        &self.freq_image
    }

    /// RGB-image rows (ViT+R2D2, ECA+EfficientNet).
    pub fn r2d2(&self) -> &FeatureMatrix {
        &self.r2d2
    }

    /// SCSGuard bigram id rows.
    pub fn bigram(&self) -> &FeatureMatrix {
        &self.bigram
    }

    /// α-variant (truncated) token windows (GPT-2a, T5a).
    pub fn tokens_truncate(&self) -> &FeatureMatrix {
        &self.tokens_truncate
    }

    /// β-variant (sliding-window) token windows (GPT-2b, T5b).
    pub fn tokens_windows(&self) -> &FeatureMatrix {
        &self.tokens_windows
    }

    /// ESCORT embedding rows.
    pub fn escort(&self) -> &FeatureMatrix {
        &self.escort
    }

    /// The column store of one encoding, selected by key — the single
    /// dispatch point the trait-based model layer gathers rows through.
    pub fn matrix(&self, encoding: Encoding) -> &FeatureMatrix {
        match encoding {
            Encoding::Histogram => &self.histogram,
            Encoding::FreqImage => &self.freq_image,
            Encoding::R2d2 => &self.r2d2,
            Encoding::Bigram => &self.bigram,
            Encoding::TokensTruncate => &self.tokens_truncate,
            Encoding::TokensWindows => &self.tokens_windows,
            Encoding::Escort => &self.escort,
        }
    }

    /// Histogram feature width (dataset vocabulary size).
    pub fn histogram_width(&self) -> usize {
        self.encoders.histogram_width()
    }

    /// SCSGuard embedding-table size (bigram vocabulary + PAD/UNK).
    pub fn bigram_vocab_size(&self) -> usize {
        self.encoders.bigram_vocab_size()
    }

    /// Language-model vocabulary size (opcode-level, fixed).
    pub fn token_vocab_size(&self) -> usize {
        self.encoders.token_vocab_size()
    }

    /// The fitted histogram encoder (for featurizing new contracts against
    /// the same vocabulary).
    pub fn histogram_encoder(&self) -> &HistogramEncoder {
        &self.encoders.hist
    }

    /// The fitted encoder set — clone this (kilobytes, not the matrices) to
    /// build a persistent serving artifact that outlives the store.
    pub fn encoders(&self) -> &FittedEncoders {
        &self.encoders
    }

    /// Featurizes a contract that is *not* in the store under a single
    /// selected encoding — the selective serving path (see
    /// [`FittedEncoders::encode`]).
    pub fn encode_one(&self, cache: &DisasmCache, encoding: Encoding) -> FeatureVec {
        self.encoders.encode(cache, encoding)
    }

    /// Featurizes a contract that is *not* in the store against the fitted
    /// lookup tables, returning all seven encoding rows in store order:
    /// histogram, freq-image, R2D2, bigram, α tokens, β tokens, ESCORT.
    /// This is the full serving pass — one decode, all encodings; use
    /// [`FeatureStore::encode_one`] when a single model's encoding suffices.
    pub fn encode_new(&self, cache: &DisasmCache) -> [FeatureVec; 7] {
        self.encoders.encode_all(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::Bytecode;

    fn caches() -> Vec<DisasmCache> {
        [
            vec![0x60, 0x80, 0x60, 0x40, 0x52],
            vec![0x60, 0x01, 0x60, 0x02, 0x01, 0x00],
            vec![0x33, 0x31, 0xff],
        ]
        .into_iter()
        .map(|b| DisasmCache::build(&Bytecode::new(b)))
        .collect()
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            image_side: 4,
            context: 8,
            bigram_vocab: 16,
            bigram_len: 6,
            escort_dim: 8,
        }
    }

    #[test]
    fn store_rows_match_individual_encoding() {
        let caches = caches();
        let cfg = small_config();
        let store = FeatureStore::build(&caches, &cfg);
        assert_eq!(store.len(), 3);

        let hist = HistogramEncoder::fit(&caches);
        let bigram = BigramEncoder::fit(&caches, cfg.bigram_vocab, cfg.bigram_len);
        let tok = OpcodeTokenizer::new(cfg.context);
        for (i, c) in caches.iter().enumerate() {
            assert_eq!(store.histogram().dense_row(i), &hist.encode(c)[..]);
            assert_eq!(
                store.bigram().row(i),
                FeatureRow::Ids(&bigram.encode(c)[..])
            );
            assert_eq!(
                store.tokens_windows().row(i),
                FeatureRow::Windows(&tok.encode(c, SequenceVariant::SlidingWindow)[..])
            );
        }
    }

    #[test]
    fn gather_preserves_index_order() {
        let store = FeatureStore::build(&caches(), &small_config());
        let g = store.histogram().gather_dense(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0], store.histogram().dense_row(2));
        assert_eq!(g[1], store.histogram().dense_row(0));
        let ids = store.bigram().gather_ids(&[1]);
        assert_eq!(FeatureRow::Ids(&ids[0]), store.bigram().row(1));
        // Flat gather is the concatenation of the row gathers.
        let flat = store.histogram().gather_dense_flat(&[2, 0]);
        assert_eq!(flat, g.concat());
    }

    #[test]
    fn ragged_windows_round_trip() {
        let vecs = vec![
            FeatureVec::Windows(vec![vec![1, 2], vec![3, 4]]),
            FeatureVec::Windows(vec![vec![5, 6]]),
        ];
        let m = FeatureMatrix::from_vecs(vecs);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.width(), None);
        assert_eq!(m.row(0).len(), 4);
        let g = m.gather_windows(&[1, 0]);
        assert_eq!(g[0], vec![vec![5, 6]]);
        assert_eq!(g[1], vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(m.scalar_count(), 6);
    }

    #[test]
    fn fitted_subset_controls_the_vocabulary() {
        let caches = caches();
        let cfg = small_config();
        // Fit on the first sample only: the histogram vocabulary must be
        // that sample's opcodes, while all three samples are still encoded.
        let store =
            FeatureStore::build_fitted_with(&caches, &caches[..1], &cfg, &SequentialExecutor);
        assert_eq!(store.len(), 3);
        assert_eq!(store.histogram().rows(), 3);
        let fit_only = HistogramEncoder::fit(&caches[..1]);
        assert_eq!(store.histogram_width(), fit_only.vocab_len());
        let full = FeatureStore::build(&caches, &cfg);
        assert!(store.histogram_width() < full.histogram_width());
    }

    #[test]
    fn encode_new_matches_store_geometry() {
        let caches = caches();
        let store = FeatureStore::build(&caches, &small_config());
        let rows = store.encode_new(&caches[0]);
        assert_eq!(rows[0].len(), store.histogram_width());
        assert_eq!(rows[0].as_row(), store.histogram().row(0));
        assert_eq!(rows[3].as_row(), store.bigram().row(0));
    }

    #[test]
    fn selective_encode_matches_the_full_pass() {
        let caches = caches();
        let store = FeatureStore::build(&caches, &small_config());
        let full = store.encode_new(&caches[1]);
        for encoding in Encoding::ALL {
            // Each selective row equals the corresponding full-pass row...
            assert_eq!(
                store.encode_one(&caches[1], encoding),
                full[encoding.index()]
            );
            // ...and the matrix selected by key is the named accessor's.
            assert_eq!(
                store.matrix(encoding).row(1),
                full[encoding.index()].as_row()
            );
        }
        // The detached encoder set serves the same rows as the store.
        let encoders = store.encoders().clone();
        assert_eq!(
            encoders.encode(&caches[2], Encoding::Histogram),
            store.encode_one(&caches[2], Encoding::Histogram)
        );
        assert_eq!(encoders.histogram_width(), store.histogram_width());
    }

    #[test]
    fn encoding_indices_follow_all_order() {
        for (i, e) in Encoding::ALL.into_iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        let names: std::collections::HashSet<_> =
            Encoding::ALL.into_iter().map(Encoding::name).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn gather_rows_borrows_in_index_order() {
        let store = FeatureStore::build(&caches(), &small_config());
        let rows = store.histogram().gather_rows(&[2, 0]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], store.histogram().row(2));
        assert_eq!(rows[1], store.histogram().row(0));
    }

    #[test]
    #[should_panic(expected = "mixed feature representations")]
    fn mixed_representations_rejected() {
        FeatureMatrix::from_vecs(vec![FeatureVec::Dense(vec![1.0]), FeatureVec::Ids(vec![1])]);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("phk_store_tests")
            .join(format!("{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn matrix_codec_round_trips_all_layouts() {
        let store = FeatureStore::build(&caches(), &small_config());
        for encoding in Encoding::ALL {
            let m = store.matrix(encoding);
            let mut w = ByteWriter::new();
            m.write_state(&mut w).unwrap();
            let mut r = ByteReader::new(w.as_bytes());
            let back = FeatureMatrix::read_state(&mut r).unwrap();
            r.expect_exhausted("matrix").unwrap();
            assert_eq!(&back, m, "{encoding:?}");
        }
    }

    #[test]
    fn corrupt_matrix_payload_is_an_error() {
        let store = FeatureStore::build(&caches(), &small_config());
        let mut w = ByteWriter::new();
        store.histogram().write_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 3]);
        assert!(FeatureMatrix::read_state(&mut r).is_err());
        // Unknown layout tag.
        let mut bad = ByteWriter::new();
        bad.put_usize(1);
        bad.put_u8(9);
        let bytes = bad.into_bytes();
        assert!(matches!(
            FeatureMatrix::read_state(&mut ByteReader::new(&bytes)),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn spilled_windows_gather_identically_and_lazily() {
        let caches = caches();
        let cfg = small_config();
        let store = FeatureStore::build(&caches, &cfg);
        let dir = temp_dir("spill_gather");
        for encoding in [Encoding::TokensTruncate, Encoding::TokensWindows] {
            let resident = store.matrix(encoding);
            let spilled = resident
                .spill_to(dir.join(format!("{}.phkspill", encoding.name())))
                .unwrap();
            assert!(spilled.is_spilled() && !resident.is_spilled());
            assert_eq!(spilled.rows(), resident.rows());
            assert_eq!(spilled.width(), None);
            assert_eq!(spilled.scalar_count(), resident.scalar_count());
            assert!(spilled.resident_scalar_count() < spilled.scalar_count() * 2);
            let idx = [2usize, 0, 1];
            assert_eq!(
                spilled.gather_windows(&idx),
                resident.gather_windows(&idx),
                "{encoding:?}: spilled gather must be bit-identical"
            );
            // The layout-agnostic gather agrees row-for-row.
            let a = spilled.gather(&idx);
            let b = resident.gather(&idx);
            assert_eq!(a.rows(), b.rows());
            // Borrowed access is a typed error, not a panic.
            assert!(matches!(
                spilled.try_row(0),
                Err(ArtifactError::Mismatch(_))
            ));
            // Reopening the spill file from a "fresh process" matches too.
            let reopened = FeatureMatrix::open_spilled(spilled.spill_path().unwrap()).unwrap();
            assert_eq!(reopened.gather_windows(&idx), resident.gather_windows(&idx));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_spill_writer_matches_the_embedded_codec() {
        // spill_to streams the id block instead of materializing the
        // serialized form; the bytes it produces must stay identical to
        // magic + version + write_state, or spilled gathers would read
        // from the wrong offsets.
        let store = FeatureStore::build(&caches(), &small_config());
        let dir = temp_dir("spill_sync");
        let matrix = store.tokens_windows();
        let path = dir.join("sync.phkspill");
        matrix.spill_to(&path).unwrap();
        let mut expected = ByteWriter::new();
        expected.put_raw(&SPILL_MAGIC);
        expected.put_u32(SPILL_VERSION);
        matrix.write_state(&mut expected).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), expected.into_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_spilled_store_evaluates_like_the_resident_store() {
        let caches = caches();
        let cfg = small_config();
        let resident = FeatureStore::build(&caches, &cfg);
        let dir = temp_dir("spill_build");
        let spilled = FeatureStore::build_spilled_with(
            &caches,
            &caches,
            &cfg,
            &SequentialExecutor,
            &SpillConfig::all(&dir),
        )
        .unwrap();
        assert_eq!(
            spilled.spilled_encodings(),
            vec![Encoding::TokensTruncate, Encoding::TokensWindows]
        );
        let idx: Vec<usize> = (0..caches.len()).collect();
        for encoding in Encoding::ALL {
            assert_eq!(
                spilled.matrix(encoding).gather(&idx).rows(),
                resident.matrix(encoding).gather(&idx).rows(),
                "{encoding:?}"
            );
        }
        // A large threshold spills nothing.
        let none = FeatureStore::build_spilled_with(
            &caches,
            &caches,
            &cfg,
            &SequentialExecutor,
            &SpillConfig {
                dir: dir.clone(),
                threshold_bytes: usize::MAX,
            },
        )
        .unwrap();
        assert!(none.spilled_encodings().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_build_is_bit_identical_to_batch_build() {
        let caches = caches();
        let cfg = small_config();
        let batch_dir = temp_dir("stream_batch");
        let stream_dir = temp_dir("stream_stream");
        let batch = FeatureStore::build_spilled_with(
            &caches,
            &caches,
            &cfg,
            &SequentialExecutor,
            &SpillConfig::all(&batch_dir),
        )
        .unwrap();
        for budget_rows in [1usize, 2, 7] {
            let (streamed, report) = FeatureStore::build_streaming(
                &caches,
                &caches,
                &cfg,
                &SequentialExecutor,
                &StreamBudget {
                    spill: SpillConfig::all(&stream_dir),
                    resident_rows: budget_rows,
                },
            )
            .unwrap();
            assert!(
                report.peak_resident_rows <= budget_rows,
                "budget {budget_rows}: peak {}",
                report.peak_resident_rows
            );
            let idx: Vec<usize> = (0..caches.len()).collect();
            for encoding in Encoding::ALL {
                assert_eq!(
                    streamed.matrix(encoding).gather(&idx).rows(),
                    batch.matrix(encoding).gather(&idx).rows(),
                    "{encoding:?} (budget {budget_rows})"
                );
            }
            // The spill files themselves are byte-identical to the batch
            // builder's.
            for encoding in [Encoding::TokensTruncate, Encoding::TokensWindows] {
                assert_eq!(
                    std::fs::read(streamed.matrix(encoding).spill_path().unwrap()).unwrap(),
                    std::fs::read(batch.matrix(encoding).spill_path().unwrap()).unwrap(),
                    "{encoding:?} spill bytes (budget {budget_rows})"
                );
            }
            // No sidecar survives a finished build.
            assert!(std::fs::read_dir(&stream_dir).unwrap().all(|e| !e
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".data")));
        }
        // Under-threshold blocks come back resident, matching the batch
        // builder's keep-in-RAM decision bit-for-bit.
        let resident = FeatureStore::build(&caches, &cfg);
        let (kept, _) = FeatureStore::build_streaming(
            &caches,
            &caches,
            &cfg,
            &SequentialExecutor,
            &StreamBudget {
                spill: SpillConfig {
                    dir: stream_dir.clone(),
                    threshold_bytes: usize::MAX,
                },
                resident_rows: 2,
            },
        )
        .unwrap();
        assert!(kept.spilled_encodings().is_empty());
        assert_eq!(kept.tokens_windows(), resident.tokens_windows());
        assert_eq!(kept.tokens_truncate(), resident.tokens_truncate());
        std::fs::remove_dir_all(&batch_dir).ok();
        std::fs::remove_dir_all(&stream_dir).ok();
    }

    #[test]
    fn fitted_encoders_extend_equals_refit() {
        let caches = caches();
        let cfg = small_config();
        let mut extended = FittedEncoders::fit(&caches[..1], &cfg);
        extended.extend_fit(&caches[1..]).unwrap();
        let refit = FittedEncoders::fit(&caches, &cfg);
        // Byte-for-byte: the canonical serialization of the extended set
        // equals a from-scratch refit on the concatenated fit set.
        assert_eq!(extended.export_state(), refit.export_state());
        for encoding in Encoding::ALL {
            for cache in &caches {
                assert_eq!(
                    extended.encode(cache, encoding),
                    refit.encode(cache, encoding),
                    "{encoding:?}"
                );
            }
        }
        // Restored sets cannot be extended (no raw counts), and fail
        // without mutating anything.
        let blob = refit.export_state();
        let mut restored = FittedEncoders::import_state(&blob).unwrap();
        assert!(!restored.can_extend());
        assert!(matches!(
            restored.extend_fit(&caches),
            Err(ArtifactError::Mismatch(_))
        ));
        assert_eq!(restored.export_state(), blob);
    }

    #[test]
    fn try_accessors_return_typed_errors() {
        let store = FeatureStore::build(&caches(), &small_config());
        let hist = store.histogram();
        assert!(hist.try_row(0).is_ok());
        assert!(matches!(hist.try_row(999), Err(ArtifactError::Mismatch(_))));
        assert!(matches!(
            hist.try_gather_ids(&[0]),
            Err(ArtifactError::Mismatch(_))
        ));
        assert!(matches!(
            store.bigram().try_dense_row(0),
            Err(ArtifactError::Mismatch(_))
        ));
        assert!(matches!(
            store.bigram().try_gather_dense_flat(&[0]),
            Err(ArtifactError::Mismatch(_))
        ));
        assert!(matches!(
            store.escort().try_gather_windows(&[0]),
            Err(ArtifactError::Mismatch(_))
        ));
        // The Ok sides agree with the panicking accessors.
        assert_eq!(hist.try_dense_row(1).unwrap(), hist.dense_row(1));
        assert_eq!(
            store.bigram().try_gather_ids(&[1, 0]).unwrap(),
            store.bigram().gather_ids(&[1, 0])
        );
    }

    #[test]
    fn fitted_encoders_round_trip_serves_identical_rows() {
        let caches = caches();
        let store = FeatureStore::build(&caches, &small_config());
        let blob = store.encoders().export_state();
        let restored = FittedEncoders::import_state(&blob).unwrap();
        for encoding in Encoding::ALL {
            for cache in &caches {
                assert_eq!(
                    restored.encode(cache, encoding),
                    store.encoders().encode(cache, encoding),
                    "{encoding:?}"
                );
            }
        }
        assert_eq!(restored.histogram_width(), store.histogram_width());
        assert_eq!(restored.bigram_vocab_size(), store.bigram_vocab_size());
        assert_eq!(restored.token_vocab_size(), store.token_vocab_size());
        // Serialization is canonical: re-export reproduces the bytes.
        assert_eq!(restored.export_state(), blob);
        // Truncation is a typed error.
        assert!(FittedEncoders::import_state(&blob[..blob.len() - 1]).is_err());
    }
}
