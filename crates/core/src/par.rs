//! Fixed-size worker pool for batch-parallel pipeline stages.
//!
//! The MEM cross-validation loop featurizes thousands of contracts per
//! fold; [`parallel_map`] fans that work across `std::thread` scoped
//! threads with **deterministic output ordering**: the input is split into
//! one contiguous chunk per worker and results are concatenated in input
//! order, so a parallel pass produces byte-identical features to the
//! sequential one and CV folds stay reproducible.
//!
//! Worker counts come from the workspace-wide policy in
//! [`phishinghook_linalg::par`] (the bottom of the crate graph), so the
//! `PHISHINGHOOK_THREADS` override pins this pool and the GEMM
//! row-sharding together.
//!
//! No external dependencies: this is plain `std::thread::scope`.

pub use phishinghook_linalg::par::MAX_WORKERS;

/// Number of workers used for a batch of `n` items — the shared policy
/// from [`phishinghook_linalg::par::pool_size`] (hardware parallelism, the
/// `PHISHINGHOOK_THREADS` override, [`MAX_WORKERS`] and `n` itself).
pub fn pool_size(n: usize) -> usize {
    phishinghook_linalg::par::pool_size(n)
}

/// Maps `f` over `items` on a fixed-size scoped-thread pool, returning
/// results in input order (deterministic regardless of scheduling).
///
/// Falls back to a plain sequential map for empty/small inputs or
/// single-core hosts.
///
/// # Panics
///
/// If `f` panics on some item, the panic is re-raised on the caller with a
/// message naming the worker and its item range plus the original payload,
/// so a failing featurization/training closure reports which chunk died
/// instead of a bare `JoinHandle::join` abort.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = pool_size(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => {
                    // Lift the payload out of the opaque Box so the caller
                    // sees the original message alongside the chunk bounds.
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&'static str>().copied())
                        .unwrap_or("<non-string panic payload>");
                    let lo = w * chunk;
                    let hi = (lo + chunk).min(items.len());
                    panic!("parallel_map worker {w} (items {lo}..{hi}) panicked: {msg}");
                }
            }
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_order() {
        let items: Vec<u64> = (0..1013).collect();
        let par = parallel_map(&items, |&x| x * x);
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn pool_is_bounded() {
        assert!(pool_size(0) >= 1);
        assert!(pool_size(1_000_000) <= MAX_WORKERS);
        assert!(pool_size(2) <= 2);
    }

    #[test]
    fn worker_panic_reports_chunk() {
        // Force the parallel path even on single-core CI boxes by pinning
        // the item that dies; the rethrown message must carry the payload.
        let items: Vec<u32> = (0..100).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                assert!(x != 63, "item {x} exploded");
                x
            })
        })
        .expect_err("map over a panicking closure must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        // On single-core hosts the sequential fallback re-raises the raw
        // payload instead; both must mention the exploding item.
        assert!(msg.contains("item 63 exploded"), "got: {msg}");
        if pool_size(items.len()) > 1 {
            assert!(msg.contains("parallel_map worker"), "got: {msg}");
        }
    }
}
