//! The serving tier, end to end over real TCP:
//!
//! ```bash
//! cargo run --release --example serve_and_query
//! ```
//!
//! Trains a detector, saves it, reopens the artifact through the
//! zero-copy path (`OwnedArtifact` → `Detector::from_artifact`), starts
//! the micro-batching HTTP server on an ephemeral port, and then queries
//! it like any client would — `POST /predict` per contract and one
//! `POST /predict_batch` — verifying every probability that came back
//! over the wire against `Detector::score_code` **bit-for-bit**. The
//! JSON codec round-trips f32 through its shortest f64 decimal form, so
//! serving loses nothing to the wire format; the process exits non-zero
//! if even one bit differs.

use phishinghook::json::Value;
use phishinghook::prelude::*;
use phishinghook_artifact::OwnedArtifact;
use phishinghook_evm::Bytecode;
use phishinghook_serve::{QueueConfig, Server, ServerConfig};
use phishinghook_synth::{generate_contract, Difficulty, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCREEN_COUNT: usize = 24;

fn screening_batch() -> Vec<Bytecode> {
    let mut rng = StdRng::seed_from_u64(0x5E12);
    (0..SCREEN_COUNT)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(6),
                &Difficulty::default(),
                &mut rng,
            )
        })
        .collect()
}

/// Minimal HTTP client: POST `body` to `path`, return (status, body).
fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("parsable status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        if header.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = header.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("response body");
    (status, String::from_utf8(buf).expect("utf-8 body"))
}

fn main() {
    // 1. Train and save, exactly like the offline pipeline would.
    let t0 = Instant::now();
    let corpus = generate_corpus(&CorpusConfig::small(1337));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    let trained = Detector::train(&ctx, ModelKind::RandomForest, 7);
    let dir = std::env::temp_dir().join(format!("phk_serve_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact_path = dir.join("detector.phk");
    trained.save(&artifact_path).expect("save artifact");
    println!(
        "[train] {} trained and saved in {:.2}s",
        trained.kind(),
        t0.elapsed().as_secs_f64()
    );

    // 2. Reopen zero-copy: one read, one decode, one Arc the whole
    //    worker pool shares.
    let t1 = Instant::now();
    let artifact = OwnedArtifact::open(&artifact_path).expect("reopen artifact");
    let detector = Arc::new(Detector::from_artifact(&artifact).expect("decode artifact"));
    println!(
        "[serve] artifact reopened ({} sections, one {}-byte buffer) in {:.1} ms",
        artifact.section_names().len(),
        artifact.bytes().len(),
        t1.elapsed().as_secs_f64() * 1e3
    );

    // 3. Serve on an ephemeral port. Queue knobs come from the
    //    environment (PHISHINGHOOK_MAX_BATCH / _BATCH_WAIT_US /
    //    _QUEUE_CAP / _SERVE_WORKERS).
    let cfg = ServerConfig {
        queue: QueueConfig::from_env(),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&detector), "127.0.0.1:0", cfg).expect("start server");
    let addr = server.local_addr();
    println!(
        "[serve] listening on http://{addr} (max_batch={}, batch_wait={}us, workers={})",
        cfg.queue.max_batch,
        cfg.queue.batch_wait.as_micros(),
        cfg.queue.workers
    );

    // 4. Query over real TCP and diff against in-process scoring.
    let contracts = screening_batch();
    let expected: Vec<f32> = contracts.iter().map(|c| detector.score_code(c)).collect();
    let mut mismatches = 0usize;

    for (i, code) in contracts.iter().enumerate().take(8) {
        let (status, body) = post(
            addr,
            "/predict",
            &format!("{{\"bytecode\":\"{}\"}}", code.to_hex()),
        );
        assert_eq!(status, 200, "/predict failed: {body}");
        let doc = phishinghook::json::parse(&body).expect("JSON response");
        let served = doc
            .get("probability")
            .and_then(Value::as_f64)
            .expect("probability") as f32;
        if served.to_bits() != expected[i].to_bits() {
            eprintln!(
                "[query] MISMATCH on contract {i}: served {served} vs local {}",
                expected[i]
            );
            mismatches += 1;
        }
    }
    println!("[query] 8 solo /predict calls returned bit-identical probabilities");

    let hexes: Vec<String> = contracts
        .iter()
        .map(|c| format!("\"{}\"", c.to_hex()))
        .collect();
    let (status, body) = post(
        addr,
        "/predict_batch",
        &format!("{{\"contracts\":[{}]}}", hexes.join(",")),
    );
    assert_eq!(status, 200, "/predict_batch failed: {body}");
    let doc = phishinghook::json::parse(&body).expect("JSON response");
    let served: Vec<f32> = doc
        .get("probabilities")
        .and_then(Value::as_arr)
        .expect("probabilities")
        .iter()
        .map(|v| v.as_f64().expect("number") as f32)
        .collect();
    assert_eq!(served.len(), expected.len());
    for (i, (s, e)) in served.iter().zip(&expected).enumerate() {
        if s.to_bits() != e.to_bits() {
            eprintln!("[query] MISMATCH in batch at {i}: served {s} vs local {e}");
            mismatches += 1;
        }
    }
    println!(
        "[query] /predict_batch returned {} probabilities, all bit-identical",
        served.len()
    );

    let stats = server.queue_stats();
    println!(
        "[serve] queue scored {} contracts in {} batches (deepest {})",
        stats.scored, stats.batches, stats.max_batch_seen
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    if mismatches > 0 {
        eprintln!("[query] PARITY FAILURE: {mismatches} mismatched probabilities");
        std::process::exit(1);
    }
    println!("[query] served scores match in-process scoring bit-for-bit ✓");
}
