//! Rank utilities shared by the non-parametric tests: average (midrank)
//! ranking with tie handling and tie-correction terms.

/// Assigns average ranks (1-based) to the values, resolving ties by midrank —
/// the convention used by Kruskal–Wallis, Dunn, Friedman and Wilcoxon.
///
/// # Examples
///
/// ```
/// let ranks = phishinghook_stats::ranks::average_ranks(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Midrank of positions i..=j (1-based).
        let rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = rank;
        }
        i = j + 1;
    }
    ranks
}

/// Sizes of every tie group (groups of equal values), including singletons.
pub fn tie_group_sizes(values: &[f64]) -> Vec<usize> {
    let n = values.len();
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut sizes = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        sizes.push(j - i + 1);
        i = j + 1;
    }
    sizes
}

/// The tie-correction sum `Σ (tᵢ³ − tᵢ)` over tie groups, used by
/// Kruskal–Wallis and Dunn.
pub fn tie_correction_sum(values: &[f64]) -> f64 {
    tie_group_sizes(values)
        .into_iter()
        .filter(|&t| t > 1)
        .map(|t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_ties_gives_permutation_ranks() {
        let r = average_ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0; 4]);
        assert_eq!(r, vec![2.5; 4]);
        assert_eq!(tie_correction_sum(&[5.0; 4]), 60.0); // 4^3 - 4
    }

    #[test]
    fn tie_groups() {
        assert_eq!(
            tie_group_sizes(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]),
            vec![1, 2, 3]
        );
        assert_eq!(
            tie_correction_sum(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]),
            6.0 + 24.0
        );
    }

    proptest! {
        /// Ranks always sum to n(n+1)/2 regardless of ties.
        #[test]
        fn rank_sum_invariant(v in proptest::collection::vec(-100i32..100, 1..200)) {
            let vals: Vec<f64> = v.iter().map(|&x| x as f64).collect();
            let ranks = average_ranks(&vals);
            let n = vals.len() as f64;
            let sum: f64 = ranks.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }

        /// Ranking is monotone: larger values never get smaller ranks.
        #[test]
        fn rank_monotonicity(v in proptest::collection::vec(-1000.0f64..1000.0, 2..100)) {
            let ranks = average_ranks(&v);
            for i in 0..v.len() {
                for j in 0..v.len() {
                    if v[i] > v[j] {
                        prop_assert!(ranks[i] > ranks[j]);
                    }
                }
            }
        }
    }
}
