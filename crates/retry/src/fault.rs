//! Deterministic fault injection for the multi-process e2e tests.
//!
//! Two mechanisms:
//!
//! * **Crash points** ([`crash_point`]) — named places in production code
//!   (e.g. between `ArtifactPublisher`'s temp write and its renames)
//!   where a process aborts on its Nth visit when the matching
//!   `PHISHINGHOOK_FAULT_*` environment variable is set. An abort is the
//!   moral equivalent of `kill -9`: no destructors, no flushes. Unarmed
//!   (the normal case) a crash point costs one env lookup the first time
//!   and a relaxed atomic load after.
//! * **[`FaultPlan`]** — a seeded corruption source for byte buffers:
//!   torn tails, bit flips, truncations. Same seed, same corruption, so
//!   a failing proptest case replays exactly.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The environment prefix arming crash points.
pub const FAULT_ENV_PREFIX: &str = "PHISHINGHOOK_FAULT_";

/// Maps a crash-point name to the environment variable that arms it:
/// uppercased, with every non-alphanumeric character replaced by `_`,
/// prefixed with `PHISHINGHOOK_FAULT_`. `"publish.gen_temp"` →
/// `PHISHINGHOOK_FAULT_PUBLISH_GEN_TEMP`.
pub fn fault_env_name(point: &str) -> String {
    let mut name = String::with_capacity(FAULT_ENV_PREFIX.len() + point.len());
    name.push_str(FAULT_ENV_PREFIX);
    for ch in point.chars() {
        if ch.is_ascii_alphanumeric() {
            name.push(ch.to_ascii_uppercase());
        } else {
            name.push('_');
        }
    }
    name
}

fn hit_counters() -> &'static Mutex<HashMap<String, u64>> {
    static COUNTERS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Records one visit to `point` and reports whether the armed fault
/// fires. The env var's value `N` means "fire on the Nth visit"
/// (1-based); unset, unparsable, or zero means never. Each process keeps
/// its own visit counters, so a restarted process starts counting from
/// scratch — exactly what a kill/restart test wants.
pub fn fault_hit(point: &str) -> bool {
    let armed: u64 = match std::env::var(fault_env_name(point)) {
        Ok(v) => v.trim().parse().unwrap_or(0),
        Err(_) => 0,
    };
    if armed == 0 {
        return false;
    }
    let mut counters = hit_counters().lock().unwrap();
    let hits = counters.entry(point.to_string()).or_insert(0);
    *hits += 1;
    *hits == armed
}

/// Aborts the process — no unwinding, no destructors — if the fault at
/// `point` is armed and this is the armed visit. Production code sprinkles
/// these at the crash windows the e2e wants to exercise.
pub fn crash_point(point: &str) {
    if fault_hit(point) {
        eprintln!("fault: crashing at injected point `{point}`");
        std::process::abort();
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded source of byte-level corruption: the same seed always yields
/// the same sequence of tears, flips and truncations, so every failure a
/// test provokes is replayable.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
}

impl FaultPlan {
    /// A plan replaying the corruption sequence for `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            state: seed ^ 0xD6E8_FEB8_6659_FD93,
        }
    }

    /// A uniform draw in `[0, n)` (`n` must be non-zero).
    pub fn choice(&mut self, n: usize) -> usize {
        assert!(n > 0, "choice over an empty range");
        (splitmix64(&mut self.state) % n as u64) as usize
    }

    /// True with probability `p` (clamped into `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let unit = splitmix64(&mut self.state) as f64 / u64::MAX as f64;
        unit < p.clamp(0.0, 1.0)
    }

    /// A torn prefix of `bytes`: cut at a seeded point strictly inside
    /// the buffer (empty in, empty out).
    pub fn tear(&mut self, bytes: &[u8]) -> Vec<u8> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let cut = self.choice(bytes.len());
        bytes[..cut].to_vec()
    }

    /// Truncates `bytes` in place at a seeded point strictly inside the
    /// buffer.
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let cut = self.choice(bytes.len());
        bytes.truncate(cut);
    }

    /// Flips one seeded bit of `bytes` in place (no-op on empty input).
    pub fn bit_flip(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let byte = self.choice(bytes.len());
        let bit = self.choice(8) as u32;
        bytes[byte] ^= 1u8 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_names_are_sanitised_and_prefixed() {
        assert_eq!(
            fault_env_name("publish.gen_temp"),
            "PHISHINGHOOK_FAULT_PUBLISH_GEN_TEMP"
        );
        assert_eq!(
            fault_env_name("codelog.torn-append"),
            "PHISHINGHOOK_FAULT_CODELOG_TORN_APPEND"
        );
    }

    #[test]
    fn unarmed_faults_never_fire() {
        for _ in 0..5 {
            assert!(!fault_hit("tests.unarmed-point"));
        }
    }

    #[test]
    fn armed_faults_fire_exactly_on_the_nth_visit() {
        // Safe enough in-process: nothing else reads this var.
        std::env::set_var(fault_env_name("tests.nth-visit"), "3");
        assert!(!fault_hit("tests.nth-visit"));
        assert!(!fault_hit("tests.nth-visit"));
        assert!(fault_hit("tests.nth-visit"));
        assert!(!fault_hit("tests.nth-visit"));
        std::env::remove_var(fault_env_name("tests.nth-visit"));
    }

    #[test]
    fn fault_plans_replay_and_corrupt() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1024).collect();

        let mut a = FaultPlan::new(7);
        let mut b = FaultPlan::new(7);
        assert_eq!(a.tear(&payload), b.tear(&payload));
        assert_eq!(a.choice(100), b.choice(100));
        assert_eq!(a.chance(0.5), b.chance(0.5));

        let mut plan = FaultPlan::new(9);
        let torn = plan.tear(&payload);
        assert!(torn.len() < payload.len());
        assert_eq!(&payload[..torn.len()], &torn[..]);

        let mut flipped = payload.clone();
        plan.bit_flip(&mut flipped);
        assert_ne!(flipped, payload);
        assert_eq!(
            flipped.iter().zip(&payload).filter(|(x, y)| x != y).count(),
            1
        );

        let mut short = payload.clone();
        plan.truncate(&mut short);
        assert!(short.len() < payload.len());
    }
}
