//! The Etherscan stand-in: per-address security labels.

use crate::address::Address;
use crate::state::SimulatedChain;

/// The label string etherscan.io attaches to known phishing contracts.
pub const PHISH_HACK_LABEL: &str = "Phish/Hack";

/// Read-only label service, mirroring the etherscan.io flag scrape the paper
/// performs for each of its 4 million candidate hashes (Fig. 1-➋).
///
/// The labels carry the corpus's injected label noise: like the real
/// explorer, the service is an *imperfect* oracle.
#[derive(Debug, Clone, Copy)]
pub struct Explorer<'a> {
    chain: &'a SimulatedChain,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer over a chain.
    pub fn new(chain: &'a SimulatedChain) -> Self {
        Explorer { chain }
    }

    /// Returns `Some("Phish/Hack")` when the address is flagged, `None` when
    /// it is unflagged or unknown — exactly the scrape result shape.
    pub fn label(&self, address: &Address) -> Option<&'static str> {
        match self.chain.record(address) {
            Some(record) if record.flagged => Some(PHISH_HACK_LABEL),
            _ => None,
        }
    }

    /// Convenience predicate for dataset construction.
    pub fn is_flagged(&self, address: &Address) -> bool {
        self.label(address).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_synth::{generate_corpus, ContractClass, CorpusConfig};

    #[test]
    fn labels_follow_flags() {
        let corpus = generate_corpus(&CorpusConfig::small(3));
        let chain = SimulatedChain::from_corpus(&corpus);
        let explorer = Explorer::new(&chain);
        for r in chain.records() {
            assert_eq!(explorer.is_flagged(&r.address), r.flagged);
        }
    }

    #[test]
    fn unknown_address_is_unlabeled() {
        let chain = SimulatedChain::default();
        let explorer = Explorer::new(&chain);
        assert_eq!(explorer.label(&Address::from_bytes([7; 20])), None);
    }

    #[test]
    fn most_phishing_is_flagged_most_benign_is_not() {
        let corpus = generate_corpus(&CorpusConfig::small(5));
        let chain = SimulatedChain::from_corpus(&corpus);
        let explorer = Explorer::new(&chain);
        let mut agree = 0usize;
        for r in chain.records() {
            let truth = r.family.class() == ContractClass::Phishing;
            if truth == explorer.is_flagged(&r.address) {
                agree += 1;
            }
        }
        let rate = agree as f64 / chain.len() as f64;
        assert!(rate > 0.9, "label agreement = {rate}");
        assert!(rate < 1.0, "labels should carry some noise");
    }
}
