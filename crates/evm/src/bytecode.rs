//! Deployed contract bytecode: parsing, hex formatting and hashing.
//!
//! [`Bytecode`] is the unit the whole pipeline operates on — what the paper's
//! bytecode extraction module (BEM) pulls from the chain via `eth_getCode`.

use bytes::Bytes;
use std::error::Error;
use std::fmt;

/// Error produced when parsing a hex string into [`Bytecode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBytecodeError {
    /// The hex string (after stripping `0x`) had an odd number of digits.
    OddLength {
        /// Number of hex digits found.
        digits: usize,
    },
    /// A character was not a hexadecimal digit.
    InvalidDigit {
        /// Byte offset of the offending character within the digit stream.
        index: usize,
        /// The offending character.
        found: char,
    },
}

impl fmt::Display for ParseBytecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBytecodeError::OddLength { digits } => {
                write!(f, "odd number of hex digits ({digits})")
            }
            ParseBytecodeError::InvalidDigit { index, found } => {
                write!(f, "invalid hex digit {found:?} at index {index}")
            }
        }
    }
}

impl Error for ParseBytecodeError {}

/// Immutable, cheaply-clonable deployed bytecode of a smart contract.
///
/// # Examples
///
/// ```
/// use phishinghook_evm::Bytecode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = Bytecode::from_hex("0x6080604052")?;
/// assert_eq!(code.len(), 5);
/// assert_eq!(code.to_hex(), "0x6080604052");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytecode(Bytes);

impl Bytecode {
    /// Creates bytecode from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Bytecode(bytes.into())
    }

    /// Parses a hex string, with or without a leading `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBytecodeError`] if the digit count is odd or a
    /// non-hexadecimal character is present.
    pub fn from_hex(hex: &str) -> Result<Self, ParseBytecodeError> {
        let digits = hex.strip_prefix("0x").unwrap_or(hex);
        if !digits.len().is_multiple_of(2) {
            return Err(ParseBytecodeError::OddLength {
                digits: digits.len(),
            });
        }
        let mut out = Vec::with_capacity(digits.len() / 2);
        let bytes = digits.as_bytes();
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = hex_val(pair[0]).ok_or(ParseBytecodeError::InvalidDigit {
                index: i * 2,
                found: pair[0] as char,
            })?;
            let lo = hex_val(pair[1]).ok_or(ParseBytecodeError::InvalidDigit {
                index: i * 2 + 1,
                found: pair[1] as char,
            })?;
            out.push((hi << 4) | lo);
        }
        Ok(Bytecode(Bytes::from(out)))
    }

    /// Returns the bytecode as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for an empty account (no code).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Lower-case hex rendering with a `0x` prefix, as returned by
    /// `eth_getCode`.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(2 + self.0.len() * 2);
        s.push_str("0x");
        for b in self.0.iter() {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xF) as usize] as char);
        }
        s
    }

    /// A 64-bit FNV-1a content hash, used for bit-by-bit deduplication of
    /// minimal-proxy clones (the paper's 17,455 → 3,458 reduction).
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        for &b in self.0.iter() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Display for Bytecode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<Vec<u8>> for Bytecode {
    fn from(v: Vec<u8>) -> Self {
        Bytecode(Bytes::from(v))
    }
}

impl From<&[u8]> for Bytecode {
    fn from(v: &[u8]) -> Self {
        Bytecode(Bytes::copy_from_slice(v))
    }
}

impl AsRef<[u8]> for Bytecode {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_and_without_prefix() {
        let a = Bytecode::from_hex("0x6080604052").unwrap();
        let b = Bytecode::from_hex("6080604052").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.as_bytes(), &[0x60, 0x80, 0x60, 0x40, 0x52]);
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(
            Bytecode::from_hex("0x608"),
            Err(ParseBytecodeError::OddLength { digits: 3 })
        );
    }

    #[test]
    fn rejects_bad_digit() {
        let err = Bytecode::from_hex("0x60zz").unwrap_err();
        assert_eq!(
            err,
            ParseBytecodeError::InvalidDigit {
                index: 2,
                found: 'z'
            }
        );
        assert!(err.to_string().contains("invalid hex digit"));
    }

    #[test]
    fn hex_round_trip_mixed_case() {
        let code = Bytecode::from_hex("0xDeadBEEF").unwrap();
        assert_eq!(code.to_hex(), "0xdeadbeef");
        let again = Bytecode::from_hex(&code.to_hex()).unwrap();
        assert_eq!(code, again);
    }

    #[test]
    fn empty_code() {
        let code = Bytecode::from_hex("0x").unwrap();
        assert!(code.is_empty());
        assert_eq!(code.to_hex(), "0x");
    }

    #[test]
    fn content_hash_detects_clones_and_differences() {
        let a = Bytecode::from_hex("0x6080604052").unwrap();
        let b = Bytecode::from_hex("0x6080604052").unwrap();
        let c = Bytecode::from_hex("0x6080604053").unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }
}
