//! End-to-end integration test: synthetic corpus → simulated chain → BEM →
//! BDM → MEM → PAM, the full pipeline of Fig. 1.

use phishinghook::prelude::*;

#[test]
fn full_pipeline_produces_significant_model_differences() {
    // Data gathering (➊–➋) + BEM (➌–➍).
    let corpus = generate_corpus(&CorpusConfig::small(2025));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, report) = extract_dataset(&chain, &BemConfig::default());
    assert_eq!(report.scanned, chain.len());
    assert!(report.unique < report.scanned, "dedup must collapse clones");
    assert_eq!(dataset.positives() * 2, dataset.len(), "balanced dataset");

    // BDM (➎–➏): every sample disassembles and the CSV shape holds.
    for sample in dataset.samples.iter().take(10) {
        let instrs = disassemble_bytecode(&sample.bytecode);
        assert!(!instrs.is_empty());
        let csv = phishinghook_evm::disasm::to_csv(&instrs);
        assert!(csv.starts_with("mnemonic,operand,gas\n"));
    }

    // MEM (➐): two contrasting models over 3-fold CV.
    let profile = EvalProfile::quick();
    let rf = cross_validate(ModelKind::RandomForest, &dataset, 3, 1, &profile, 1);
    let lr = cross_validate(ModelKind::LogisticRegression, &dataset, 3, 1, &profile, 1);
    let rf_mean = Metrics::mean(&rf.iter().map(|t| t.metrics).collect::<Vec<_>>());
    assert!(
        rf_mean.accuracy > 0.75,
        "RF mean accuracy = {}",
        rf_mean.accuracy
    );

    // PAM (➑): the analysis runs and reports coherent structure.
    let knn = cross_validate(ModelKind::Knn, &dataset, 3, 1, &profile, 1);
    let report = posthoc_analysis(&[
        (ModelKind::RandomForest, rf),
        (ModelKind::LogisticRegression, lr),
        (ModelKind::Knn, knn),
    ]);
    assert_eq!(report.omnibus.len(), 4);
    for row in &report.omnibus {
        assert!(row.test.h.is_finite());
        assert!((0.0..=1.0).contains(&row.p_adjusted));
    }
    assert_eq!(report.dunn.len(), 4);
    for dunn in &report.dunn {
        assert_eq!(dunn.pairs.len(), 3); // C(3,2)
    }
}

#[test]
fn bem_window_restriction_propagates() {
    let corpus = generate_corpus(&CorpusConfig::small(77));
    let chain = SimulatedChain::from_corpus(&corpus);
    let early = extract_dataset(
        &chain,
        &BemConfig {
            to: Month(3),
            balance: false,
            ..Default::default()
        },
    );
    assert!(early.0.samples.iter().all(|s| s.month.0 <= 3));
}

#[test]
fn shap_explains_the_pipeline_winner() {
    let corpus = generate_corpus(&CorpusConfig::small(31));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let folds = dataset.stratified_folds(3, 3);
    let (train, test) = dataset.fold_split(&folds, 0);
    let analysis = shap_analysis(&train, &test, 20, &EvalProfile::quick(), 3);
    assert!(!analysis.top.is_empty());
    // The influential opcodes are real mnemonics from the vocabulary.
    for inf in &analysis.top {
        assert!(!inf.mnemonic.is_empty());
    }
}
