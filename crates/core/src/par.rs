//! Fixed-size worker pool for batch-parallel pipeline stages.
//!
//! The MEM cross-validation loop featurizes thousands of contracts per
//! fold; [`parallel_map`] fans that work across `std::thread` scoped
//! threads with **deterministic output ordering**: the input is split into
//! one contiguous chunk per worker and results are concatenated in input
//! order, so a parallel pass produces byte-identical features to the
//! sequential one and CV folds stay reproducible.
//!
//! No external dependencies: this is plain `std::thread::scope`.

use std::num::NonZeroUsize;

/// Upper bound on pool size; beyond this the per-thread chunks get too
/// small for the spawn cost to pay off on featurization workloads.
const MAX_WORKERS: usize = 32;

/// Number of workers used for a batch of `n` items.
pub fn pool_size(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_WORKERS)
        .min(n)
        .max(1)
}

/// Maps `f` over `items` on a fixed-size scoped-thread pool, returning
/// results in input order (deterministic regardless of scheduling).
///
/// Falls back to a plain sequential map for empty/small inputs or
/// single-core hosts.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = pool_size(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            parts.push(h.join().expect("featurization worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_order() {
        let items: Vec<u64> = (0..1013).collect();
        let par = parallel_map(&items, |&x| x * x);
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn pool_is_bounded() {
        assert!(pool_size(0) >= 1);
        assert!(pool_size(1_000_000) <= MAX_WORKERS);
        assert!(pool_size(2) <= 2);
    }
}
