//! Opcode-influence analysis of the best classifier (§IV-H, Fig. 9): SHAP
//! values of the Random-Forest HSC over a test fold, aggregated into the
//! top-k most influential opcodes.

use crate::dataset::Dataset;
use crate::mem::EvalProfile;
use phishinghook_features::HistogramEncoder;
use phishinghook_linalg::Matrix;
use phishinghook_ml::forest::ForestParams;
use phishinghook_ml::tree::TreeParams;
use phishinghook_ml::{forest_shap, Classifier, RandomForest};

/// SHAP summary of one opcode (feature) over a test fold.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcodeInfluence {
    /// Opcode mnemonic.
    pub mnemonic: String,
    /// Mean |SHAP| over the fold — the influence ranking key.
    pub mean_abs_shap: f64,
    /// Mean signed SHAP (positive pushes towards phishing).
    pub mean_shap: f64,
    /// Per-sample `(feature value, shap value)` points, the dots of Fig. 9.
    pub points: Vec<(f32, f64)>,
}

/// Full SHAP analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapAnalysis {
    /// Influences sorted by descending mean |SHAP|, truncated to `top_k`.
    pub top: Vec<OpcodeInfluence>,
    /// The forest's expected value (SHAP base value).
    pub base_value: f64,
}

/// Trains a Random Forest on `train` and explains its predictions on `test`
/// with exact TreeSHAP, returning the `top_k` most influential opcodes.
///
/// # Panics
///
/// Panics on empty splits.
pub fn shap_analysis(
    train: &Dataset,
    test: &Dataset,
    top_k: usize,
    profile: &EvalProfile,
    seed: u64,
) -> ShapAnalysis {
    assert!(!train.is_empty() && !test.is_empty(), "empty split");
    // Shared single-pass disassembly caches, as in the MEM pipeline.
    let train_caches = train.disasm_batch();
    let test_caches = test.disasm_batch();
    let encoder = HistogramEncoder::fit(&train_caches);
    let x_train = Matrix::from_rows(&encoder.encode_batch(&train_caches));
    let x_test = Matrix::from_rows(&encoder.encode_batch(&test_caches));

    let mut forest = RandomForest::with_params(
        ForestParams {
            n_trees: profile.n_trees.min(60), // SHAP cost scales with trees
            tree: TreeParams {
                max_depth: 10,
                ..TreeParams::default()
            },
            subsample: 1.0,
        },
        seed,
    );
    forest.fit(&x_train, &train.labels());

    let d = x_train.cols();
    let mut per_feature: Vec<Vec<(f32, f64)>> = vec![Vec::new(); d];
    for r in 0..x_test.rows() {
        let phi = forest_shap(&forest, x_test.row(r), d);
        for (f, &p) in phi.iter().enumerate() {
            per_feature[f].push((x_test[(r, f)], p));
        }
    }

    let mut influences: Vec<OpcodeInfluence> = encoder
        .vocabulary()
        .iter()
        .enumerate()
        .map(|(f, mnemonic)| {
            let points = per_feature[f].clone();
            let n = points.len().max(1) as f64;
            OpcodeInfluence {
                mnemonic: mnemonic.clone(),
                mean_abs_shap: points.iter().map(|(_, s)| s.abs()).sum::<f64>() / n,
                mean_shap: points.iter().map(|(_, s)| s).sum::<f64>() / n,
                points,
            }
        })
        .collect();
    influences.sort_by(|a, b| {
        b.mean_abs_shap
            .partial_cmp(&a.mean_abs_shap)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    influences.truncate(top_k);

    ShapAnalysis {
        top: influences,
        base_value: phishinghook_ml::shap::forest_expected_value(&forest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bem::{extract_dataset, BemConfig};
    use phishinghook_chain::SimulatedChain;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    #[test]
    fn top_opcodes_are_ranked_and_meaningful() {
        let corpus = generate_corpus(&CorpusConfig::small(53));
        let chain = SimulatedChain::from_corpus(&corpus);
        let (data, _) = extract_dataset(&chain, &BemConfig::default());
        let folds = data.stratified_folds(3, 1);
        let (train, test) = data.fold_split(&folds, 0);
        let analysis = shap_analysis(&train, &test, 20, &EvalProfile::quick(), 9);

        assert!(analysis.top.len() <= 20);
        assert!(!analysis.top.is_empty());
        // Sorted by influence.
        for w in analysis.top.windows(2) {
            assert!(w[0].mean_abs_shap >= w[1].mean_abs_shap);
        }
        // The base value is a probability-like quantity.
        assert!((0.0..=1.0).contains(&analysis.base_value));
        // Every influence has one point per test sample.
        assert_eq!(analysis.top[0].points.len(), test.len());
        // Some opcode must matter on a separable corpus.
        assert!(analysis.top[0].mean_abs_shap > 0.0);
    }
}
