//! T5-style classifier: a bidirectional transformer encoder with a
//! single-step cross-attention decoder head.
//!
//! T5 is an encoder–decoder model; for sequence classification the decoder
//! generates one step from a learned start query attending over the encoder
//! output — reproduced here exactly, at small width. The α (truncate) and β
//! (sliding window) data policies follow the same contract as
//! [`crate::Gpt2Classifier`].

use crate::trainer::{
    aggregate_window_probs, predict_binary_batch, train_binary, TrainConfig, PREDICT_BATCH,
};
use phishinghook_nn::{
    LayerNorm, Linear, MultiHeadAttention, ParamId, ParamStore, Tape, Tensor, TransformerBlock, Var,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// T5 classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct T5Config {
    /// Token vocabulary size.
    pub vocab: usize,
    /// Context length (tokens per window).
    pub context: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder blocks.
    pub depth: usize,
    /// Maximum training windows per contract.
    pub max_train_windows: usize,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for T5Config {
    fn default() -> Self {
        T5Config {
            vocab: 258,
            context: 64,
            dim: 32,
            heads: 4,
            depth: 2,
            max_train_windows: 3,
            train: TrainConfig::default(),
        }
    }
}

/// Encoder–decoder transformer classifier over tokenized opcode windows.
///
/// # Examples
///
/// ```
/// use phishinghook_models::t5::{T5Classifier, T5Config};
/// use phishinghook_models::TrainConfig;
///
/// let cfg = T5Config {
///     vocab: 16, context: 6, dim: 8, heads: 2, depth: 1,
///     train: TrainConfig { epochs: 20, ..Default::default() },
///     ..Default::default()
/// };
/// let mut model = T5Classifier::new(cfg);
/// let xs: Vec<Vec<Vec<u32>>> = (0..16)
///     .map(|i| vec![vec![2 + 7 * (i % 2) as u32, 3, 4, 5, 0, 0]])
///     .collect();
/// let ys: Vec<u8> = (0..16).map(|i| (i % 2) as u8).collect();
/// model.fit(&xs, &ys);
/// let p = model.predict_proba(&xs);
/// assert!(p[1] > p[0]);
/// ```
#[derive(Debug)]
pub struct T5Classifier {
    config: T5Config,
    store: ParamStore,
    token_embed: ParamId,
    pos_embed: ParamId,
    encoder: Vec<TransformerBlock>,
    dec_query: ParamId,
    cross_attn: MultiHeadAttention,
    dec_norm: LayerNorm,
    head: Linear,
}

impl T5Classifier {
    /// Builds the model with fresh parameters.
    pub fn new(config: T5Config) -> Self {
        let mut rng = StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let token_embed = store.param(Tensor::random(
            &[config.vocab.max(2), config.dim],
            0.1,
            &mut rng,
        ));
        let pos_embed = store.param(Tensor::random(&[config.context, config.dim], 0.1, &mut rng));
        let encoder = (0..config.depth)
            .map(|_| TransformerBlock::new(&mut store, config.dim, config.heads, &mut rng))
            .collect();
        let dec_query = store.param(Tensor::random(&[1, config.dim], 0.1, &mut rng));
        let cross_attn = MultiHeadAttention::new(&mut store, config.dim, config.heads, &mut rng);
        let dec_norm = LayerNorm::new(&mut store, config.dim);
        let head = Linear::new(&mut store, config.dim, 1, &mut rng);
        T5Classifier {
            config,
            store,
            token_embed,
            pos_embed,
            encoder,
            dec_query,
            cross_attn,
            dec_norm,
            head,
        }
    }

    fn window_logit(&self, t: &mut Tape, s: &ParamStore, window: &[u32]) -> Var {
        let table = t.param(s, self.token_embed);
        let pos_full = t.param(s, self.pos_embed);
        let q = t.param(s, self.dec_query);
        self.window_logit_with(t, s, table, pos_full, q, window)
    }

    /// [`T5Classifier::window_logit`] over pre-recorded embedding-table,
    /// positional and decoder-query leaves, so a batched tape copies each
    /// once per mini-batch instead of once per window.
    fn window_logit_with(
        &self,
        t: &mut Tape,
        s: &ParamStore,
        table: Var,
        pos_full: Var,
        q: Var,
        window: &[u32],
    ) -> Var {
        let ids: Vec<u32> = window.iter().copied().take(self.config.context).collect();
        let e = t.embedding(table, &ids);
        let pos = if ids.len() == self.config.context {
            pos_full
        } else {
            let data = t.value(pos_full).data()[..ids.len() * self.config.dim].to_vec();
            t.input(Tensor::from_vec(&[ids.len(), self.config.dim], data))
        };
        let mut x = t.add(e, pos);
        for block in &self.encoder {
            x = block.forward(t, s, x, false);
        }
        // Single decoding step: learned query cross-attends over the memory.
        let ctx = self.cross_attn.forward_cross(t, s, q, x);
        let ctx = t.add(q, ctx);
        let ctx = self.dec_norm.forward(t, s, ctx);
        self.head.forward(t, s, ctx)
    }

    /// Trains on per-contract window lists with 0/1 labels (every window
    /// inherits its contract's label, capped at `max_train_windows`).
    pub fn fit(&mut self, xs: &[Vec<Vec<u32>>], y: &[u8]) {
        let mut flat: Vec<Vec<u32>> = Vec::new();
        let mut flat_y: Vec<u8> = Vec::new();
        for (windows, &label) in xs.iter().zip(y) {
            for w in windows.iter().take(self.config.max_train_windows) {
                flat.push(w.clone());
                flat_y.push(label);
            }
        }
        let (token_embed, pos_embed, dec_query) =
            (self.token_embed, self.pos_embed, self.dec_query);
        let encoder = self.encoder.clone();
        let cross = self.cross_attn.clone();
        let (norm, head) = (self.dec_norm, self.head);
        let (context, dim) = (self.config.context, self.config.dim);
        let cfg = self.config.train;
        let mut store = std::mem::take(&mut self.store);
        // Batching is over the window dimension, as in the GPT-2 trainer.
        train_binary(
            &mut store,
            &flat,
            &flat_y,
            &cfg,
            &[],
            |t, s, batch: &[&Vec<u32>]| {
                // One embedding/positional/query leaf per batch, shared by
                // every window subgraph.
                let table = t.param(s, token_embed);
                let pos_full = t.param(s, pos_embed);
                let q = t.param(s, dec_query);
                let logits: Vec<Var> = batch
                    .iter()
                    .map(|window| {
                        let ids: Vec<u32> = window.iter().copied().take(context).collect();
                        let e = t.embedding(table, &ids);
                        let pos = if ids.len() == context {
                            pos_full
                        } else {
                            let data = t.value(pos_full).data()[..ids.len() * dim].to_vec();
                            t.input(Tensor::from_vec(&[ids.len(), dim], data))
                        };
                        let mut x = t.add(e, pos);
                        for block in &encoder {
                            x = block.forward(t, s, x, false);
                        }
                        let ctx = cross.forward_cross(t, s, q, x);
                        let ctx = t.add(q, ctx);
                        let ctx = norm.forward(t, s, ctx);
                        head.forward(t, s, ctx)
                    })
                    .collect();
                t.stack_rows(&logits)
            },
        );
        self.store = store;
    }

    /// Phishing probability per contract (mean over windows).
    pub fn predict_proba(&self, xs: &[Vec<Vec<u32>>]) -> Vec<f32> {
        xs.iter()
            .map(|windows| {
                if windows.is_empty() {
                    return 0.5;
                }
                let mut sum = 0.0f32;
                for w in windows {
                    let mut tape = Tape::new();
                    let z = self.window_logit(&mut tape, &self.store, w);
                    let v = tape.value(z).data()[0];
                    sum += 1.0 / (1.0 + (-v).exp());
                }
                sum / windows.len() as f32
            })
            .collect()
    }

    /// Batched contract probabilities over flattened windows (one
    /// arena-reused tape, window mini-batches), bit-identical to
    /// [`T5Classifier::predict_proba`].
    pub fn predict_proba_batch(&self, xs: &[Vec<Vec<u32>>]) -> Vec<f32> {
        let flat: Vec<&Vec<u32>> = xs.iter().flatten().collect();
        let probs = predict_binary_batch(&self.store, &flat, PREDICT_BATCH, |t, s, batch| {
            let table = t.param(s, self.token_embed);
            let pos_full = t.param(s, self.pos_embed);
            let q = t.param(s, self.dec_query);
            let logits: Vec<Var> = batch
                .iter()
                .map(|w| self.window_logit_with(t, s, table, pos_full, q, w))
                .collect();
            t.stack_rows(&logits)
        });
        aggregate_window_probs(xs, &probs)
    }

    /// Total trainable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Serializes the fitted parameter tensors (flat, bit-exact).
    pub fn export_state(&self) -> Vec<u8> {
        self.store.export_tensors()
    }

    /// Restores parameters exported from a same-configured model, after
    /// which predictions are bit-identical to the exporter's.
    ///
    /// # Errors
    ///
    /// See [`phishinghook_nn::ParamStore::import_tensors`].
    pub fn import_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), phishinghook_artifact::ArtifactError> {
        self.store.import_tensors(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> T5Config {
        T5Config {
            vocab: 32,
            context: 8,
            dim: 8,
            heads: 2,
            depth: 1,
            max_train_windows: 2,
            train: TrainConfig {
                epochs: 20,
                learning_rate: 0.02,
                ..Default::default()
            },
        }
    }

    #[test]
    fn learns_token_presence() {
        let mut model = T5Classifier::new(toy());
        let xs: Vec<Vec<Vec<u32>>> = (0..30)
            .map(|i| vec![vec![4, 6 + 11 * (i % 2) as u32, 2, 2, 0, 0, 0, 0]])
            .collect();
        let ys: Vec<u8> = (0..30).map(|i| (i % 2) as u8).collect();
        model.fit(&xs, &ys);
        let probs = model.predict_proba(&xs);
        let acc = probs
            .iter()
            .zip(&ys)
            .filter(|(p, &l)| (**p >= 0.5) == (l == 1))
            .count();
        assert!(acc >= 28, "accuracy {acc}/30");
    }

    #[test]
    fn handles_short_windows() {
        let model = T5Classifier::new(toy());
        let p = model.predict_proba(&[vec![vec![1, 2, 3]]]);
        assert!(p[0].is_finite());
    }
}
