//! Ablation: the ECA channel-attention module. ECA+EfficientNet's original
//! paper credits the channel attention for its accuracy; this compares the
//! CNN with the ECA gate against the same backbone without it (approximated
//! by a 1-element kernel, which degenerates to a per-channel scalar gate).

use phishinghook::prelude::*;
use phishinghook_bench::{banner, main_dataset, RunScale};
use phishinghook_features::R2d2Encoder;
use phishinghook_models::eca_net::{EcaEfficientNet, EcaNetConfig};
use phishinghook_models::TrainConfig;

fn run(dataset: &Dataset, eca_kernel: usize, profile: &EvalProfile) -> Metrics {
    let folds = dataset.stratified_folds(3, 11);
    let (train, test) = dataset.fold_split(&folds, 0);
    let enc = R2d2Encoder::new(profile.image_side);
    let x_train: Vec<Vec<f32>> = train.disasm_batch().iter().map(|c| enc.encode(c)).collect();
    let x_test: Vec<Vec<f32>> = test.disasm_batch().iter().map(|c| enc.encode(c)).collect();
    let mut model = EcaEfficientNet::new(EcaNetConfig {
        side: profile.image_side,
        eca_kernel,
        train: TrainConfig {
            epochs: profile.nn_epochs,
            learning_rate: 0.01,
            batch_size: 16,
            seed: 11,
        },
        ..EcaNetConfig::default()
    });
    model.fit(&x_train, &train.labels());
    let probs = model.predict_proba(&x_test);
    let pred: Vec<u8> = probs.iter().map(|&p| u8::from(p >= 0.5)).collect();
    Metrics::from_predictions(&pred, &test.labels())
}

fn main() {
    let scale = RunScale::from_args();
    banner("Ablation - ECA kernel width in the CNN", scale);
    let dataset = main_dataset(scale, 0xAB3);
    let profile = scale.profile();
    println!("{:<26} {:>10} {:>10}", "variant", "accuracy", "F1");
    for (label, k) in [
        ("ECA k=3 (paper)", 3usize),
        ("scalar gate (k=1)", 1),
        ("wide ECA k=5", 5),
    ] {
        let m = run(&dataset, k, &profile);
        println!("{:<26} {:>10.4} {:>10.4}", label, m.accuracy, m.f1);
    }
}
