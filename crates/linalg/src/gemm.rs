//! Blocked dense kernels over raw `f32` slices.
//!
//! These are the shared compute primitives under both [`Matrix`] and the
//! autodiff tape in `phishinghook-nn`: a cache-blocked GEMM with packed
//! B-panels, a tiled transpose, and 4-way unrolled `dot`/`axpy` inner
//! loops. Keeping them slice-shaped (no owning type) lets both layers call
//! straight into one kernel and lets callers reuse output storage across
//! calls (`matmul_into` / `transpose_into`).
//!
//! **Accumulation-order contract:** for every output element, products are
//! accumulated in strictly increasing `k` order, independent of blocking —
//! so `C[i][j]` is bit-identical whether the row arrived alone (a GEMV-
//! shaped call) or inside a larger batch. The batched training/inference
//! paths rely on this for their bit-parity guarantees.
//!
//! [`Matrix`]: crate::Matrix

use std::cell::RefCell;

/// k-dimension block: one packed B-panel spans `KC` rows of B.
const KC: usize = 256;
/// n-dimension block: columns per packed B-panel.
const NC: usize = 128;
/// Transpose tile side.
const TC: usize = 32;
/// Below this `k·n` footprint (f32s) the direct loop beats packing.
const SMALL_B: usize = 16 * 1024;

thread_local! {
    /// Per-thread packing arena so steady-state GEMMs never allocate.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `out[..n] += alpha * x[..n]`, 4-way unrolled.
///
/// Element-wise, so the unroll cannot change any result bit.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy length mismatch");
    let chunks = x.len() / 4;
    let (x4, xt) = x.split_at(chunks * 4);
    let (o4, ot) = out.split_at_mut(chunks * 4);
    for (xc, oc) in x4.chunks_exact(4).zip(o4.chunks_exact_mut(4)) {
        oc[0] += alpha * xc[0];
        oc[1] += alpha * xc[1];
        oc[2] += alpha * xc[2];
        oc[3] += alpha * xc[3];
    }
    for (o, &v) in ot.iter_mut().zip(xt) {
        *o += alpha * v;
    }
}

/// Dot product with four independent accumulators (final reduction
/// `(s0 + s1) + (s2 + s3)`), unrolled 4-way.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let chunks = a.len() / 4;
    let (a4, at) = a.split_at(chunks * 4);
    let (b4, bt) = b.split_at(chunks * 4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        s0 += ac[0] * bc[0];
        s1 += ac[1] * bc[1];
        s2 += ac[2] * bc[2];
        s3 += ac[3] * bc[3];
    }
    let mut tail = 0.0f32;
    for (&x, &y) in at.iter().zip(bt) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// The register-blocked inner kernel: multiplies the `k0..k0+kc` columns
/// of `m` rows of `A` (row stride `lda`) by a contiguous `kc × nc` B-panel
/// into the `j0..j0+nc` columns of `m` output rows (row stride `ldo`),
/// accumulating in place.
///
/// Output rows are processed **four at a time**, so each loaded B element
/// feeds four accumulating rows — the batch dimension is what pays for the
/// register blocking, which is why one batched `(B, d)` GEMM beats `B`
/// separate GEMV calls on identical FLOPs. Per output element the `kk`
/// order is strictly increasing, and the tail-row path accumulates in the
/// same order, so every row's bits are independent of how many rows ride
/// alongside it.
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    m: usize,
    kc: usize,
    nc: usize,
    a: &[f32],
    lda: usize,
    k0: usize,
    panel: &[f32],
    out: &mut [f32],
    ldo: usize,
    j0: usize,
) {
    let mut i = 0;
    let mut rest = out;
    while i + 4 <= m {
        let (block, tail) = rest.split_at_mut(4 * ldo);
        rest = tail;
        let (r0, b1) = block.split_at_mut(ldo);
        let (r1, b2) = b1.split_at_mut(ldo);
        let (r2, r3) = b2.split_at_mut(ldo);
        let r0 = &mut r0[j0..j0 + nc];
        let r1 = &mut r1[j0..j0 + nc];
        let r2 = &mut r2[j0..j0 + nc];
        let r3 = &mut r3[j0..j0 + nc];
        for kk in 0..kc {
            let brow = &panel[kk * nc..kk * nc + nc];
            let a0 = a[i * lda + k0 + kk];
            let a1 = a[(i + 1) * lda + k0 + kk];
            let a2 = a[(i + 2) * lda + k0 + kk];
            let a3 = a[(i + 3) * lda + k0 + kk];
            for j in 0..nc {
                let bv = brow[j];
                r0[j] += a0 * bv;
                r1[j] += a1 * bv;
                r2[j] += a2 * bv;
                r3[j] += a3 * bv;
            }
        }
        i += 4;
    }
    for (ti, row) in rest.chunks_exact_mut(ldo).enumerate() {
        let ri = i + ti;
        let out_row = &mut row[j0..j0 + nc];
        for kk in 0..kc {
            axpy(
                a[ri * lda + k0 + kk],
                &panel[kk * nc..kk * nc + nc],
                out_row,
            );
        }
    }
}

/// `out = A · B` for row-major `A (m×k)`, `B (k×n)`, `out (m×n)`.
///
/// `out` is fully overwritten (no read of its prior contents). Small
/// products feed B straight into the register-blocked kernel; larger ones
/// block over `k` and `n` with the current B-panel packed contiguously
/// into a per-thread arena, so the inner loops stream cache-resident
/// memory regardless of `n`'s stride. The dense path has no per-element
/// zero test: a uniformly-predictable inner loop beats skipping the
/// occasional zero, and adding a `±0.0` product never changes a finite
/// accumulation bit.
///
/// **Accumulation-order contract:** panels advance n-major then k-major
/// and the kernel walks `kk` upward, so for every output element the
/// products arrive in strictly increasing `k` order regardless of shape —
/// `C[i][j]` is bit-identical whether row `i` is multiplied alone or
/// inside a batch.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` shape.
pub fn matmul_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul lhs shape mismatch");
    assert_eq!(b.len(), k * n, "matmul rhs shape mismatch");
    assert_eq!(out.len(), m * n, "matmul out shape mismatch");
    out.fill(0.0);
    // Degenerate shapes: nothing to accumulate (and the kernel's row
    // chunking cannot take a zero stride).
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if k * n <= SMALL_B {
        // B is already one contiguous k×n panel.
        block_kernel(m, k, n, a, k, 0, b, out, n, 0);
        return;
    }
    PACK_BUF.with(|cell| {
        let mut pack = cell.borrow_mut();
        let mut j0 = 0;
        while j0 < n {
            let nc = NC.min(n - j0);
            let mut k0 = 0;
            while k0 < k {
                let kc = KC.min(k - k0);
                // Pack B[k0..k0+kc, j0..j0+nc] row-contiguously.
                pack.clear();
                pack.reserve(kc * nc);
                for kk in 0..kc {
                    pack.extend_from_slice(&b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + nc]);
                }
                block_kernel(m, kc, nc, a, k, k0, &pack, out, n, j0);
                k0 += kc;
            }
            j0 += nc;
        }
    });
}

/// `out = Aᵀ` for row-major `A (rows×cols)`, `out (cols×rows)`, written in
/// `TC×TC` tiles so both the read and the write stay within a few cache
/// lines per step. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if a slice length disagrees with the shape.
pub fn transpose_into(rows: usize, cols: usize, a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), rows * cols, "transpose input shape mismatch");
    assert_eq!(out.len(), rows * cols, "transpose output shape mismatch");
    let mut r0 = 0;
    while r0 < rows {
        let rt = TC.min(rows - r0);
        let mut c0 = 0;
        while c0 < cols {
            let ct = TC.min(cols - c0);
            for r in r0..r0 + rt {
                for c in c0..c0 + ct {
                    out[c * rows + r] = a[r * cols + c];
                }
            }
            c0 += ct;
        }
        r0 += rt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..=1.0)).collect()
    }

    fn reference_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        // Shapes straddling the packing threshold and block boundaries.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (16, 64, 1),
            (2, 300, 200),
            (5, 513, 131),
        ] {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut out = vec![f32::NAN; m * n];
            matmul_into(m, k, n, &a, &b, &mut out);
            let want = reference_matmul(m, k, n, &a, &b);
            let got_bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "({m},{k},{n})");
        }
    }

    #[test]
    fn row_in_batch_matches_row_alone_bitwise() {
        // The contract the batched NN paths rely on: a sample's output row
        // is invariant to the batch it rides in.
        let mut rng = StdRng::seed_from_u64(11);
        let (b_rows, k, n) = (9usize, 310usize, 150usize);
        let a = random_vec(b_rows * k, &mut rng);
        let w = random_vec(k * n, &mut rng);
        let mut batched = vec![0.0f32; b_rows * n];
        matmul_into(b_rows, k, n, &a, &w, &mut batched);
        for i in 0..b_rows {
            let mut solo = vec![0.0f32; n];
            matmul_into(1, k, n, &a[i * k..(i + 1) * k], &w, &mut solo);
            assert_eq!(
                solo.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                batched[i * n..(i + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "row {i}"
            );
        }
    }

    #[test]
    fn transpose_tiles_cover_ragged_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(r, c) in &[(1usize, 1usize), (33, 65), (32, 32), (100, 7)] {
            let a = random_vec(r * c, &mut rng);
            let mut out = vec![0.0f32; r * c];
            transpose_into(r, c, &a, &mut out);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(out[j * r + i], a[i * c + j]);
                }
            }
        }
    }

    #[test]
    fn unrolled_dot_and_axpy_handle_tails() {
        for len in 0..9usize {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| 2.0 * i as f32 - 3.0).collect();
            let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b), want, "len {len}");
            let mut out = vec![1.0f32; len];
            axpy(0.5, &a, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, 1.0 + 0.5 * a[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul out shape mismatch")]
    fn matmul_into_checks_out_shape() {
        matmul_into(2, 2, 2, &[0.0; 4], &[0.0; 4], &mut [0.0; 3]);
    }

    #[test]
    fn degenerate_shapes_are_empty_or_zero() {
        // Zero-column, zero-row and zero-inner products must not panic.
        matmul_into(2, 3, 0, &[1.0; 6], &[], &mut []);
        matmul_into(0, 3, 2, &[], &[1.0; 6], &mut []);
        let mut out = [f32::NAN; 4];
        matmul_into(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, [0.0; 4]);
    }
}
