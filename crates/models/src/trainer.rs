//! Shared training loop for the deep models: shuffled mini-batches,
//! data-parallel **shards** of each batch across the worker pool, Adam
//! updates, optional frozen parameters.
//!
//! Each mini-batch is cut into fixed-width shards of [`TRAIN_SHARD`]
//! samples. Every shard records its forward on its own arena-reused
//! [`Tape`] (the model's `logit_fn` consumes the shard at once — a
//! `(B, d)` matmul for the dense models, a per-sample subgraph stacked
//! with [`Tape::stack_rows`] for the sequence and vision models), reduces
//! with [`Tape::bce_with_logits_batch_scaled`] using the *full* batch size
//! as denominator, and differentiates into a private
//! [`GradBuffer`](phishinghook_nn::GradBuffer) — so shard losses and
//! gradients sum to exactly the whole-batch mean loss and its gradient.
//! Shards run on scoped worker threads, but the reduction is a
//! **fixed-order fold**: the caller's thread adds the shard buffers into
//! the store in shard-index order before the single Adam step. Because the
//! shard width is a constant (never derived from the worker count), the
//! fitted parameters are bit-identical at every pool size — including the
//! sequential fallback — and reproducible per seed.
//!
//! **Accumulation-order note:** sharded reduction accumulates parameter
//! gradients shard by shard, a fixed but *different* order than both the
//! retired per-sample-tape loop and the PR-5 whole-batch tape. Runs are
//! bit-reproducible per seed (and per worker count); they are not
//! bit-comparable to pre-sharding checkpoints.
//! [`train_binary_per_sample`] keeps the oldest loop alive as the measured
//! baseline of the `nn_throughput` bench.

use phishinghook_linalg::par;
use phishinghook_nn::{GradBuffer, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Default inference mini-batch for the batched predict path.
pub const PREDICT_BATCH: usize = 64;

/// Fixed data-parallel shard width inside a training mini-batch. A
/// constant — never derived from the worker count — so the shard
/// boundaries, loss scaling and gradient-reduction order are identical
/// whether the shards run on one thread or many. Sized to the default
/// [`TrainConfig::batch_size`]: a default-sized batch records one tape
/// (no sharding overhead on single-core hosts), larger batches fan out
/// across the pool in 16-sample shards.
pub const TRAIN_SHARD: usize = 16;

/// Training hyper-parameters shared by all deep models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size (the loss is averaged per batch).
    pub batch_size: usize,
    /// Shuffle / initialisation seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 4,
            learning_rate: 0.01,
            batch_size: 16,
            seed: 0x5EED,
        }
    }
}

/// Runs the sharded batched loop with the worker count picked by the
/// shared pool policy (hardware parallelism, capped by
/// `PHISHINGHOOK_THREADS`): for each epoch, shuffle, and for each
/// mini-batch fan the [`TRAIN_SHARD`]-wide shards across the pool, fold
/// the shard gradients in shard order, and take one (optionally masked)
/// Adam step. `logit_fn` must return a `(B, 1)` logit column for the `B`
/// samples it is handed — it sees one *shard* per call. Returns the mean
/// loss of the final epoch. The fitted parameters are bit-identical at
/// every worker count (see [`train_binary_sharded`]).
///
/// # Panics
///
/// Panics on empty or mismatched inputs, or when `logit_fn` returns a
/// logit count that disagrees with the shard size.
pub fn train_binary<S: Sync>(
    store: &mut ParamStore,
    samples: &[S],
    labels: &[u8],
    config: &TrainConfig,
    frozen: &[ParamId],
    logit_fn: impl Fn(&mut Tape, &ParamStore, &[&S]) -> Var + Sync,
) -> f32 {
    train_binary_sharded(store, samples, labels, config, frozen, 0, logit_fn)
}

/// Per-shard training state, reused across every batch and epoch of one
/// training run so the tape arenas and gradient buffers reach a zero-
/// allocation steady state.
struct ShardSlot {
    tape: Tape,
    buf: GradBuffer,
    loss: f32,
}

/// [`train_binary`] with an explicit worker cap (`0` = the shared pool
/// policy, `1` = sequential) — the seam the determinism tests and benches
/// pin.
///
/// Worker-count invariance holds by construction: shard boundaries are
/// multiples of the constant [`TRAIN_SHARD`], each shard differentiates
/// into its own [`GradBuffer`] (threads never touch the store), and the
/// caller's thread folds the buffers into the store **in shard-index
/// order** before the Adam step. The worker count only decides which
/// thread computes a shard, never what is computed or in what order it is
/// reduced, so the fitted parameters are bit-identical for every cap.
///
/// # Panics
///
/// Panics on empty or mismatched inputs, or when `logit_fn` returns a
/// logit count that disagrees with the shard size.
pub fn train_binary_sharded<S: Sync>(
    store: &mut ParamStore,
    samples: &[S],
    labels: &[u8],
    config: &TrainConfig,
    frozen: &[ParamId],
    max_workers: usize,
    logit_fn: impl Fn(&mut Tape, &ParamStore, &[&S]) -> Var + Sync,
) -> f32 {
    assert_eq!(samples.len(), labels.len(), "sample/label mismatch");
    assert!(!samples.is_empty(), "cannot train on an empty set");
    let bs = config.batch_size.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let max_shards = bs.div_ceil(TRAIN_SHARD);
    let mut slots: Vec<ShardSlot> = (0..max_shards)
        .map(|_| ShardSlot {
            tape: Tape::new(),
            buf: store.grad_buffer(),
            loss: 0.0,
        })
        .collect();
    let mut batch: Vec<&S> = Vec::with_capacity(bs);
    let mut targets: Vec<f32> = Vec::with_capacity(bs);
    let mut epoch_loss = 0.0f32;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        epoch_loss = 0.0;
        for chunk in order.chunks(bs) {
            batch.clear();
            targets.clear();
            for &i in chunk {
                batch.push(&samples[i]);
                targets.push(labels[i] as f32);
            }
            let n_shards = chunk.len().div_ceil(TRAIN_SHARD);
            let batch_len = chunk.len();
            {
                // Shared refs only — the closure runs on worker threads.
                let (batch, targets, store, logit_fn) = (&batch, &targets, &*store, &logit_fn);
                let run_shard = move |s: usize, slot: &mut ShardSlot| {
                    let lo = s * TRAIN_SHARD;
                    let hi = (lo + TRAIN_SHARD).min(batch_len);
                    slot.tape.reset();
                    slot.buf.zero();
                    let z = logit_fn(&mut slot.tape, store, &batch[lo..hi]);
                    assert_eq!(
                        slot.tape.value(z).len(),
                        hi - lo,
                        "batched logit_fn must return one logit per sample"
                    );
                    // Denominator = the FULL batch size, so shard losses
                    // and gradients sum to the whole-batch mean.
                    let loss =
                        slot.tape
                            .bce_with_logits_batch_scaled(z, &targets[lo..hi], batch_len);
                    slot.loss = slot.tape.value(loss).item();
                    slot.tape.backward_into(loss, &mut slot.buf);
                };
                let workers = match max_workers {
                    0 => par::pool_size(n_shards),
                    w => w.min(n_shards).max(1),
                };
                let active = &mut slots[..n_shards];
                if workers <= 1 {
                    for (s, slot) in active.iter_mut().enumerate() {
                        run_shard(s, slot);
                    }
                } else {
                    let per = n_shards.div_ceil(workers);
                    std::thread::scope(|scope| {
                        for (w, group) in active.chunks_mut(per).enumerate() {
                            let run_shard = &run_shard;
                            scope.spawn(move || {
                                for (k, slot) in group.iter_mut().enumerate() {
                                    run_shard(w * per + k, slot);
                                }
                            });
                        }
                    });
                }
            }
            // Fixed-order reduction on this thread: shard gradients fold
            // into the store in shard-index order, then one Adam step —
            // the mean loss's 1/B factor is already in the shard scaling.
            store.zero_grads();
            let mut batch_loss = 0.0f32;
            for slot in &slots[..n_shards] {
                store.add_grad_buffer(&slot.buf);
                batch_loss += slot.loss;
            }
            epoch_loss += batch_loss * chunk.len() as f32;
            if frozen.is_empty() {
                store.adam_step(config.learning_rate, 1);
            } else {
                store.adam_step_masked(config.learning_rate, 1, frozen);
            }
        }
        epoch_loss /= samples.len() as f32;
    }
    epoch_loss
}

/// The retired per-sample-tape loop: a fresh [`Tape`] and a full
/// forward/backward per sample, gradients summed across the chunk, one
/// Adam step per mini-batch. Kept as the measured baseline the
/// `nn_throughput` bench compares [`train_binary`] against — not used by
/// any model.
pub fn train_binary_per_sample<S>(
    store: &mut ParamStore,
    samples: &[S],
    labels: &[u8],
    config: &TrainConfig,
    frozen: &[ParamId],
    mut logit_fn: impl FnMut(&mut Tape, &ParamStore, &S) -> Var,
) -> f32 {
    assert_eq!(samples.len(), labels.len(), "sample/label mismatch");
    assert!(!samples.is_empty(), "cannot train on an empty set");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_loss = 0.0f32;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        epoch_loss = 0.0;
        for chunk in order.chunks(config.batch_size.max(1)) {
            store.zero_grads();
            for &i in chunk {
                let mut tape = Tape::new();
                let z = logit_fn(&mut tape, store, &samples[i]);
                let loss = tape.bce_with_logit(z, labels[i] as f32);
                epoch_loss += tape.value(loss).item();
                tape.backward(loss, store);
            }
            if frozen.is_empty() {
                store.adam_step(config.learning_rate, chunk.len());
            } else {
                store.adam_step_masked(config.learning_rate, chunk.len(), frozen);
            }
        }
        epoch_loss /= samples.len() as f32;
    }
    epoch_loss
}

/// Flattens a gathered mini-batch of equal-width dense samples into one
/// `(B, d)` input tensor on the tape — the entry point of every truly
/// batched dense forward (ESCORT's trunk, the `nn_throughput` bench).
///
/// # Panics
///
/// Panics on an empty batch or ragged sample widths.
pub fn batch_input(tape: &mut Tape, batch: &[&Vec<f32>]) -> Var {
    assert!(!batch.is_empty(), "cannot batch zero samples");
    let d = batch[0].len();
    let mut data = Vec::with_capacity(batch.len() * d);
    for x in batch {
        assert_eq!(x.len(), d, "ragged batch rows");
        data.extend_from_slice(x);
    }
    tape.input(Tensor::from_vec(&[batch.len(), d], data))
}

/// Averages flat per-window probabilities back to per-contract scores:
/// `probs` holds one probability per window of `xs`, flattened in contract
/// order, and each contract's score is the mean of its windows' entries in
/// window order (a contract with no windows scores the 0.5 prior). Shared
/// by the GPT-2 and T5 batched predictors so the window-to-contract
/// aggregation contract lives in exactly one place.
///
/// # Panics
///
/// Panics if `probs` is shorter than the total window count.
pub fn aggregate_window_probs(xs: &[Vec<Vec<u32>>], probs: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    let mut cursor = probs.iter();
    for windows in xs {
        if windows.is_empty() {
            out.push(0.5);
            continue;
        }
        let mut sum = 0.0f32;
        for _ in windows {
            sum += cursor.next().expect("window/prob alignment");
        }
        out.push(sum / windows.len() as f32);
    }
    out
}

/// Computes `σ(logit)` per sample through a forward-only tape — the
/// row-wise reference path the batched predictor must match bit-for-bit.
pub fn predict_binary<S>(
    store: &ParamStore,
    samples: &[S],
    mut logit_fn: impl FnMut(&mut Tape, &ParamStore, &S) -> Var,
) -> Vec<f32> {
    samples
        .iter()
        .map(|s| {
            let mut tape = Tape::new();
            let z = logit_fn(&mut tape, store, s);
            let v = tape.value(z).data()[0];
            1.0 / (1.0 + (-v).exp())
        })
        .collect()
}

/// Batched inference: chunks `samples` into `batch_size` groups, records
/// each group on one arena-reused tape through the batched `logit_fn`
/// (`(B, 1)` logits out), and applies the sigmoid per row. Because every
/// kernel fixes its per-row accumulation order, the result is bit-identical
/// to [`predict_binary`] with the matching per-sample closure, for any
/// batch size.
///
/// # Panics
///
/// Panics when `logit_fn` returns a logit count that disagrees with the
/// chunk size.
pub fn predict_binary_batch<S>(
    store: &ParamStore,
    samples: &[S],
    batch_size: usize,
    mut logit_fn: impl FnMut(&mut Tape, &ParamStore, &[&S]) -> Var,
) -> Vec<f32> {
    let bs = batch_size.max(1);
    let mut tape = Tape::new();
    let mut batch: Vec<&S> = Vec::with_capacity(bs);
    let mut out = Vec::with_capacity(samples.len());
    for chunk in samples.chunks(bs) {
        batch.clear();
        batch.extend(chunk.iter());
        tape.reset();
        let z = logit_fn(&mut tape, store, &batch);
        assert_eq!(
            tape.value(z).len(),
            chunk.len(),
            "batched logit_fn must return one logit per sample"
        );
        out.extend(
            tape.value(z)
                .data()
                .iter()
                .map(|&v| 1.0 / (1.0 + (-v).exp())),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_nn::{Linear, Tensor};

    #[test]
    fn trains_a_linear_probe() {
        let mut store = ParamStore::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, 2, 1, &mut rng);
        let samples: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![(i % 2) as f32, 1.0 - (i % 2) as f32])
            .collect();
        let labels: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let cfg = TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
            ..Default::default()
        };
        let loss = train_binary(&mut store, &samples, &labels, &cfg, &[], |t, s, batch| {
            let xv = batch_input(t, batch);
            lin.forward(t, s, xv)
        });
        assert!(loss < 0.1, "loss = {loss}");
        let probs = predict_binary(&store, &samples, |t, s, x| {
            let xv = t.input(Tensor::from_vec(&[1, 2], x.clone()));
            lin.forward(t, s, xv)
        });
        let acc = probs
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == (l == 1))
            .count();
        assert!(acc >= 98);
    }

    #[test]
    fn batched_predict_matches_rowwise_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let lin = Linear::new(&mut store, 3, 1, &mut rng);
        let samples: Vec<Vec<f32>> = (0..37)
            .map(|i| vec![i as f32 * 0.1, 1.0 - i as f32 * 0.05, (i % 3) as f32])
            .collect();
        let rowwise = predict_binary(&store, &samples, |t, s, x| {
            let xv = t.input(Tensor::from_vec(&[1, 3], x.clone()));
            lin.forward(t, s, xv)
        });
        // Odd batch size that does not divide the sample count: the final
        // ragged chunk exercises the partial-batch path.
        for bs in [1usize, 5, 64] {
            let batched = predict_binary_batch(&store, &samples, bs, |t, s, batch| {
                let xv = batch_input(t, batch);
                lin.forward(t, s, xv)
            });
            assert_eq!(
                batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rowwise.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "batch size {bs}"
            );
        }
    }

    #[test]
    fn batched_and_per_sample_loops_both_learn() {
        // Same task, both loops: the batched trainer's gradient
        // accumulation order differs, its learning outcome must not.
        let samples: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![(i % 2) as f32, 1.0 - (i % 2) as f32])
            .collect();
        let labels: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        let cfg = TrainConfig {
            epochs: 25,
            learning_rate: 0.05,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut store_b = ParamStore::new();
        let lin_b = Linear::new(&mut store_b, 2, 1, &mut rng);
        let batched_loss =
            train_binary(&mut store_b, &samples, &labels, &cfg, &[], |t, s, batch| {
                let xv = batch_input(t, batch);
                lin_b.forward(t, s, xv)
            });
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut store_p = ParamStore::new();
        let lin_p = Linear::new(&mut store_p, 2, 1, &mut rng);
        let per_sample_loss = train_binary_per_sample(
            &mut store_p,
            &samples,
            &labels,
            &cfg,
            &[],
            |t, s, x: &Vec<f32>| {
                let xv = t.input(Tensor::from_vec(&[1, 2], x.clone()));
                lin_p.forward(t, s, xv)
            },
        );
        assert!(batched_loss < 0.1, "batched loss = {batched_loss}");
        assert!(per_sample_loss < 0.1, "per-sample loss = {per_sample_loss}");
    }

    #[test]
    fn sharded_training_is_worker_count_invariant() {
        // 50 samples at batch 48 → one 3-shard batch plus a ragged
        // 2-sample one; the fitted parameters (bytes of export_tensors)
        // must be bit-identical for every worker cap, including the auto
        // policy.
        let samples: Vec<Vec<f32>> = (0..50)
            .map(|i| vec![(i % 2) as f32, 1.0 - (i % 2) as f32, (i % 5) as f32 * 0.25])
            .collect();
        let labels: Vec<u8> = (0..50).map(|i| (i % 2) as u8).collect();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 48,
            ..Default::default()
        };
        let fit = |workers: usize| -> (Vec<u8>, f32) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(12);
            let mut store = ParamStore::new();
            let lin = Linear::new(&mut store, 3, 1, &mut rng);
            let loss = train_binary_sharded(
                &mut store,
                &samples,
                &labels,
                &cfg,
                &[],
                workers,
                |t, s, batch| {
                    let xv = batch_input(t, batch);
                    lin.forward(t, s, xv)
                },
            );
            (store.export_tensors(), loss)
        };
        let (params_1, loss_1) = fit(1);
        for workers in [2usize, 3, 5, 0] {
            let (params_w, loss_w) = fit(workers);
            assert_eq!(params_w, params_1, "workers {workers}");
            assert_eq!(loss_w.to_bits(), loss_1.to_bits(), "workers {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "sample/label mismatch")]
    fn mismatched_lengths_panic() {
        let mut store = ParamStore::new();
        train_binary(
            &mut store,
            &[1.0f32],
            &[0, 1],
            &TrainConfig::default(),
            &[],
            |t, _, _| t.input(Tensor::from_vec(&[1, 1], vec![0.0])),
        );
    }
}
