//! Cliff's delta: a non-parametric effect size for two samples.
//!
//! The paper reports Cliff's δ in the scalability analysis (e.g. −0.778 for
//! SCSGuard vs ECA+EfficientNet accuracy) to show that effect sizes can be
//! large even when small-sample Wilcoxon tests fail to reach significance.

/// Magnitude bands for |δ| following Romano et al. (2006).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMagnitude {
    /// |δ| < 0.147.
    Negligible,
    /// 0.147 ≤ |δ| < 0.33.
    Small,
    /// 0.33 ≤ |δ| < 0.474.
    Medium,
    /// |δ| ≥ 0.474.
    Large,
}

/// Computes Cliff's delta `δ = (#(x > y) − #(x < y)) / (n·m)` in `[-1, 1]`.
///
/// Positive values mean `x` tends to dominate `y`.
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// # Examples
///
/// ```
/// use phishinghook_stats::cliffs::cliffs_delta;
///
/// assert_eq!(cliffs_delta(&[2.0, 2.0], &[1.0, 1.0]), 1.0);
/// assert_eq!(cliffs_delta(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
/// assert_eq!(cliffs_delta(&[1.0, 1.0], &[2.0, 2.0]), -1.0);
/// ```
pub fn cliffs_delta(x: &[f64], y: &[f64]) -> f64 {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "cliffs_delta requires non-empty samples"
    );
    let mut gt = 0i64;
    let mut lt = 0i64;
    for &a in x {
        for &b in y {
            if a > b {
                gt += 1;
            } else if a < b {
                lt += 1;
            }
        }
    }
    (gt - lt) as f64 / (x.len() * y.len()) as f64
}

/// Classifies |δ| into the conventional magnitude bands.
pub fn delta_magnitude(delta: f64) -> DeltaMagnitude {
    let d = delta.abs();
    if d < 0.147 {
        DeltaMagnitude::Negligible
    } else if d < 0.33 {
        DeltaMagnitude::Small
    } else if d < 0.474 {
        DeltaMagnitude::Medium
    } else {
        DeltaMagnitude::Large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(cliffs_delta(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        // x = {3, 4}, y = {1, 2, 3}: pairs greater = 5, less = 0, ties = 1.
        assert!((cliffs_delta(&[3.0, 4.0], &[1.0, 2.0, 3.0]) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_bands() {
        assert_eq!(delta_magnitude(0.1), DeltaMagnitude::Negligible);
        assert_eq!(delta_magnitude(-0.2), DeltaMagnitude::Small);
        assert_eq!(delta_magnitude(0.4), DeltaMagnitude::Medium);
        assert_eq!(delta_magnitude(-1.0), DeltaMagnitude::Large);
    }

    proptest! {
        #[test]
        fn antisymmetry(
            x in proptest::collection::vec(-100.0f64..100.0, 1..30),
            y in proptest::collection::vec(-100.0f64..100.0, 1..30),
        ) {
            let d1 = cliffs_delta(&x, &y);
            let d2 = cliffs_delta(&y, &x);
            prop_assert!((d1 + d2).abs() < 1e-12);
            prop_assert!((-1.0..=1.0).contains(&d1));
        }
    }
}
