//! Area Under Time (AUT): the temporal-robustness metric of
//! TESSERACT (Pendlebury et al., USENIX Security '19), used by the paper's
//! time-resistance analysis (Fig. 8).
//!
//! `AUT(f, N) = 1/(N−1) · Σₖ (f(k) + f(k+1)) / 2` — the trapezoidal mean of a
//! performance metric (here the phishing-class F1 score) over `N` test
//! periods, normalized to `[0, 1]` when the metric itself is.

/// Computes AUT over a series of per-period metric values.
///
/// A single period degenerates to the metric itself.
///
/// # Panics
///
/// Panics if `series` is empty.
///
/// # Examples
///
/// ```
/// use phishinghook_stats::aut::area_under_time;
///
/// // Perfectly stable detector.
/// assert_eq!(area_under_time(&[0.9, 0.9, 0.9]), 0.9);
/// // Linearly decaying detector.
/// let aut = area_under_time(&[1.0, 0.5, 0.0]);
/// assert!((aut - 0.5).abs() < 1e-12);
/// ```
pub fn area_under_time(series: &[f64]) -> f64 {
    assert!(!series.is_empty(), "AUT requires at least one period");
    if series.len() == 1 {
        return series[0];
    }
    let n = series.len();
    let sum: f64 = series.windows(2).map(|w| (w[0] + w[1]) / 2.0).sum();
    sum / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_period() {
        assert_eq!(area_under_time(&[0.7]), 0.7);
    }

    #[test]
    fn trapezoid_of_two() {
        assert!((area_under_time(&[1.0, 0.0]) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "AUT requires")]
    fn empty_panics() {
        area_under_time(&[]);
    }

    proptest! {
        /// AUT of a [0,1]-bounded series stays within the series' range.
        #[test]
        fn bounded_by_extremes(series in proptest::collection::vec(0.0f64..=1.0, 1..24)) {
            let aut = area_under_time(&series);
            let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(aut >= min - 1e-12 && aut <= max + 1e-12);
        }

        /// Constant series have AUT equal to the constant.
        #[test]
        fn constant_series(c in 0.0f64..=1.0, n in 1usize..20) {
            let series = vec![c; n];
            prop_assert!((area_under_time(&series) - c).abs() < 1e-12);
        }
    }
}
