//! Criterion bench: the fused single-pass featurization pipeline vs the
//! naive per-encoder path, plus the decode-once feature store vs per-trial
//! re-extraction.
//!
//! *Naive* replicates the pre-refactor behavior: each of the six encoders
//! re-disassembles every contract on its own, sequentially — 6 decodes per
//! contract per dataset pass. *Fused* is one parallel decode pass building
//! shared [`DisasmCache`]s, then all six encoders consuming them across the
//! worker pool. *Store* goes one level up: a [`FeatureStore`] is built once
//! per dataset and a simulated cross-validation trial matrix gathers
//! pre-featurized row slices, against the old per-trial
//! re-decode-and-re-encode loop.
//!
//! Besides the criterion timings, the bench writes machine-readable
//! baselines — `BENCH_pipeline.json` (fused vs naive) and
//! `BENCH_evalstore.json` (store vs per-trial) — so future PRs can
//! regression-check both layers. Setting `PHISHINGHOOK_BENCH_SMOKE=1`
//! shrinks the corpus and sample counts to CI size and the run fails fast
//! if either fast path stops beating its baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook::evalstore::ParallelExecutor;
use phishinghook::par::parallel_map;
use phishinghook_bench::json::Value;
use phishinghook_evm::{Bytecode, DisasmCache};
use phishinghook_features::store::{FeatureStore, StoreConfig};
use phishinghook_features::{
    BigramEncoder, EscortEmbedder, FreqImageEncoder, HistogramEncoder, OpcodeTokenizer,
    R2d2Encoder, SequenceVariant,
};
use phishinghook_synth::{generate_contract, Difficulty, Family, Month};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Simulated (model, fold) trials for the store-vs-per-trial comparison.
const TRIAL_FOLDS: usize = 5;

fn smoke_mode() -> bool {
    std::env::var_os("PHISHINGHOOK_BENCH_SMOKE").is_some()
}

fn contract_count() -> usize {
    if smoke_mode() {
        48
    } else {
        96
    }
}

fn timing_samples() -> usize {
    if smoke_mode() {
        3
    } else {
        10
    }
}

fn contracts(n: usize) -> Vec<Bytecode> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(3),
                &Difficulty::default(),
                &mut rng,
            )
        })
        .collect()
}

/// All six encoders, fitted once on shared caches (fitting cost is common
/// to both paths; the bench isolates the per-pass encode cost).
struct Encoders {
    hist: HistogramEncoder,
    freq: FreqImageEncoder,
    r2d2: R2d2Encoder,
    bigram: BigramEncoder,
    tokens: OpcodeTokenizer,
    escort: EscortEmbedder,
}

impl Encoders {
    fn fit(caches: &[DisasmCache]) -> Self {
        Encoders {
            hist: HistogramEncoder::fit(caches),
            freq: FreqImageEncoder::fit(caches, 32),
            r2d2: R2d2Encoder::new(32),
            bigram: BigramEncoder::fit(caches, 2048, 48),
            tokens: OpcodeTokenizer::new(64),
            escort: EscortEmbedder::new(128),
        }
    }
}

/// Pre-refactor shape: every encoder decodes every contract afresh, one
/// contract at a time, on one thread.
fn naive_pass(enc: &Encoders, codes: &[Bytecode]) -> usize {
    let mut scalars = 0usize;
    scalars += codes
        .iter()
        .map(|c| enc.hist.encode(&DisasmCache::build(c)).len())
        .sum::<usize>();
    scalars += codes
        .iter()
        .map(|c| enc.freq.encode(&DisasmCache::build(c)).len())
        .sum::<usize>();
    scalars += codes
        .iter()
        .map(|c| enc.r2d2.encode(&DisasmCache::build(c)).len())
        .sum::<usize>();
    scalars += codes
        .iter()
        .map(|c| enc.bigram.encode(&DisasmCache::build(c)).len())
        .sum::<usize>();
    scalars += codes
        .iter()
        .map(|c| {
            enc.tokens
                .encode(&DisasmCache::build(c), SequenceVariant::SlidingWindow)
                .len()
        })
        .sum::<usize>();
    scalars += codes
        .iter()
        .map(|c| enc.escort.encode(&DisasmCache::build(c)).len())
        .sum::<usize>();
    scalars
}

/// Six-encoder pass over already-decoded caches, fanned across the pool.
fn encode_six(enc: &Encoders, caches: &[DisasmCache]) -> usize {
    let mut scalars = 0usize;
    scalars += parallel_map(caches, |c| enc.hist.encode(c).len())
        .iter()
        .sum::<usize>();
    scalars += parallel_map(caches, |c| enc.freq.encode(c).len())
        .iter()
        .sum::<usize>();
    scalars += parallel_map(caches, |c| enc.r2d2.encode(c).len())
        .iter()
        .sum::<usize>();
    scalars += parallel_map(caches, |c| enc.bigram.encode(c).len())
        .iter()
        .sum::<usize>();
    scalars += parallel_map(caches, |c| {
        enc.tokens.encode(c, SequenceVariant::SlidingWindow).len()
    })
    .iter()
    .sum::<usize>();
    scalars += parallel_map(caches, |c| enc.escort.encode(c).len())
        .iter()
        .sum::<usize>();
    scalars
}

/// The refactored pipeline: one parallel decode pass, six encoders over the
/// shared caches, each batch fanned across the worker pool.
fn fused_pass(enc: &Encoders, codes: &[Bytecode]) -> usize {
    let caches: Vec<DisasmCache> = parallel_map(codes, DisasmCache::build);
    encode_six(enc, &caches)
}

/// Round-robin fold plan over contract indices: trial `k` tests on indices
/// `i % folds == k` and trains on the rest (class labels are irrelevant to
/// featurization cost).
fn trial_splits(n: usize, folds: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    (0..folds)
        .map(|k| {
            let (test, train): (Vec<usize>, Vec<usize>) = (0..n).partition(|i| i % folds == k);
            (train, test)
        })
        .collect()
}

fn store_geometry() -> StoreConfig {
    StoreConfig {
        image_side: 32,
        context: 64,
        bigram_vocab: 2048,
        bigram_len: 48,
        escort_dim: 128,
    }
}

/// What the CV loop did before the store: every trial re-decodes its
/// train/test splits, re-fits the encoders on the training fold and
/// re-encodes both folds.
fn per_trial_pass(codes: &[Bytecode], plan: &[(Vec<usize>, Vec<usize>)]) -> usize {
    let mut scalars = 0usize;
    for (train_idx, test_idx) in plan {
        let train: Vec<Bytecode> = train_idx.iter().map(|&i| codes[i].clone()).collect();
        let test: Vec<Bytecode> = test_idx.iter().map(|&i| codes[i].clone()).collect();
        let train_caches: Vec<DisasmCache> = parallel_map(&train, DisasmCache::build);
        let test_caches: Vec<DisasmCache> = parallel_map(&test, DisasmCache::build);
        let enc = Encoders::fit(&train_caches);
        scalars += encode_six(&enc, &train_caches);
        scalars += encode_six(&enc, &test_caches);
    }
    scalars
}

/// The store path: one decode pass, one featurization pass, then every
/// trial gathers pre-featurized rows by index. Store construction is
/// counted inside the timing — amortization has to beat it.
fn store_pass(codes: &[Bytecode], plan: &[(Vec<usize>, Vec<usize>)]) -> usize {
    let caches: Vec<DisasmCache> = parallel_map(codes, DisasmCache::build);
    let store = FeatureStore::build_with(&caches, &store_geometry(), &ParallelExecutor);
    let mut scalars = 0usize;
    for (train_idx, test_idx) in plan {
        for idx in [train_idx, test_idx] {
            scalars += store.histogram().gather_dense_flat(idx).len();
            scalars += store.freq_image().gather_dense_flat(idx).len();
            scalars += store.r2d2().gather_dense_flat(idx).len();
            scalars += store
                .bigram()
                .gather_ids(idx)
                .iter()
                .map(Vec::len)
                .sum::<usize>();
            scalars += store
                .tokens_windows()
                .gather_windows(idx)
                .iter()
                .flatten()
                .map(Vec::len)
                .sum::<usize>();
            scalars += store.escort().gather_dense_flat(idx).len();
        }
    }
    scalars
}

fn best_of(samples: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut out = 0;
    for _ in 0..samples {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn write_baseline(codes: &[Bytecode], enc: &Encoders) {
    let total_bytes: usize = codes.iter().map(Bytecode::len).sum();
    let (naive_ms, naive_scalars) = best_of(timing_samples(), || naive_pass(enc, codes));
    let (fused_ms, fused_scalars) = best_of(timing_samples(), || fused_pass(enc, codes));
    assert_eq!(
        naive_scalars, fused_scalars,
        "fused path must produce identical output volume"
    );
    assert!(
        fused_ms < naive_ms,
        "fused regression: fused {fused_ms:.2} ms vs naive {naive_ms:.2} ms"
    );
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("featurization_pipeline".into())),
        ("contracts".into(), Value::Num(codes.len() as f64)),
        ("total_bytes".into(), Value::Num(total_bytes as f64)),
        ("encoders".into(), Value::Num(6.0)),
        (
            "workers".into(),
            Value::Num(phishinghook::par::pool_size(codes.len()) as f64),
        ),
        ("naive_ms".into(), Value::Num(naive_ms)),
        ("fused_ms".into(), Value::Num(fused_ms)),
        ("speedup".into(), Value::Num(naive_ms / fused_ms)),
        ("scalars_per_pass".into(), Value::Num(fused_scalars as f64)),
    ]);
    // Benches run with the package as cwd; anchor the baseline at the
    // workspace root. Smoke runs assert but never overwrite the committed
    // baselines (their corpus is smaller).
    if !smoke_mode() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
        std::fs::write(path, doc.render()).expect("write BENCH_pipeline.json");
    }
    println!(
        "  baseline: naive {naive_ms:.2} ms vs fused {fused_ms:.2} ms \
         ({:.2}x) -> BENCH_pipeline.json",
        naive_ms / fused_ms
    );
}

fn write_evalstore_baseline(codes: &[Bytecode]) {
    let plan = trial_splits(codes.len(), TRIAL_FOLDS);
    let (per_trial_ms, per_trial_scalars) =
        best_of(timing_samples(), || per_trial_pass(codes, &plan));
    let (store_ms, store_scalars) = best_of(timing_samples(), || store_pass(codes, &plan));
    assert!(per_trial_scalars > 0 && store_scalars > 0);
    assert!(
        store_ms < per_trial_ms,
        "store regression: store {store_ms:.2} ms vs per-trial {per_trial_ms:.2} ms"
    );
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("evalstore".into())),
        ("contracts".into(), Value::Num(codes.len() as f64)),
        ("trials".into(), Value::Num(plan.len() as f64)),
        (
            "workers".into(),
            Value::Num(phishinghook::par::pool_size(codes.len()) as f64),
        ),
        ("per_trial_ms".into(), Value::Num(per_trial_ms)),
        ("store_ms".into(), Value::Num(store_ms)),
        ("speedup".into(), Value::Num(per_trial_ms / store_ms)),
        (
            "store_scalars_gathered".into(),
            Value::Num(store_scalars as f64),
        ),
    ]);
    if !smoke_mode() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_evalstore.json");
        std::fs::write(path, doc.render()).expect("write BENCH_evalstore.json");
    }
    println!(
        "  baseline: per-trial {per_trial_ms:.2} ms vs store {store_ms:.2} ms over {} trials \
         ({:.2}x) -> BENCH_evalstore.json",
        plan.len(),
        per_trial_ms / store_ms
    );
}

fn bench_pipeline(c: &mut Criterion) {
    let codes = contracts(contract_count());
    let caches = DisasmCache::build_batch(&codes);
    let enc = Encoders::fit(&caches);
    drop(caches);

    let mut group = c.benchmark_group("featurization_pipeline");
    group.bench_function("naive_per_encoder", |b| b.iter(|| naive_pass(&enc, &codes)));
    group.bench_function("fused_single_pass", |b| b.iter(|| fused_pass(&enc, &codes)));
    let plan = trial_splits(codes.len(), TRIAL_FOLDS);
    group.bench_function("per_trial_reextraction", |b| {
        b.iter(|| per_trial_pass(&codes, &plan))
    });
    group.bench_function("evalstore_gather", |b| b.iter(|| store_pass(&codes, &plan)));
    group.finish();

    write_baseline(&codes, &enc);
    write_evalstore_baseline(&codes);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
