//! Per-opcode usage statistics by class — the data behind Fig. 3, which
//! shows that phishing and benign contracts use individual opcodes at
//! similar rates (so no single-opcode filter works).

use crate::dataset::Dataset;
use phishinghook_evm::disasm::Disassembler;
use std::collections::BTreeMap;

/// Usage distribution of one opcode in one class.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UsageDistribution {
    /// Per-contract usage counts (one entry per contract that contains the
    /// opcode at least zero times — zeros included).
    pub counts: Vec<u32>,
}

impl UsageDistribution {
    /// Mean usage per contract.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().map(|&c| c as f64).sum::<f64>() / self.counts.len() as f64
    }

    /// Quartiles `(q1, median, q3)` of the usage counts.
    pub fn quartiles(&self) -> (f64, f64, f64) {
        if self.counts.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut v: Vec<u32> = self.counts.clone();
        v.sort_unstable();
        let q = |p: f64| -> f64 {
            let idx = ((v.len() - 1) as f64 * p).round() as usize;
            v[idx] as f64
        };
        (q(0.25), q(0.5), q(0.75))
    }
}

/// Per-opcode, per-class usage table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpcodeUsage {
    /// `mnemonic -> (benign distribution, phishing distribution)`.
    pub by_opcode: BTreeMap<String, (UsageDistribution, UsageDistribution)>,
}

/// Computes usage distributions for the given mnemonics over a dataset.
/// Pass the 20 influential opcodes of Fig. 3/Fig. 9, or any other set.
pub fn opcode_usage(data: &Dataset, mnemonics: &[&str]) -> OpcodeUsage {
    let mut usage = OpcodeUsage::default();
    for m in mnemonics {
        usage.by_opcode.insert((*m).to_string(), Default::default());
    }
    for sample in &data.samples {
        let mut counts: BTreeMap<&str, u32> = mnemonics.iter().map(|m| (*m, 0)).collect();
        for instr in Disassembler::new(sample.bytecode.as_bytes()) {
            if let Some(c) = counts.get_mut(instr.mnemonic.name().as_ref()) {
                *c += 1;
            }
        }
        for (m, c) in counts {
            let entry = usage.by_opcode.get_mut(m).expect("preinserted");
            if sample.label == 1 {
                entry.1.counts.push(c);
            } else {
                entry.0.counts.push(c);
            }
        }
    }
    usage
}

/// The 20 influential opcodes highlighted in Fig. 3 and Fig. 9.
pub const FIG3_OPCODES: [&str; 20] = [
    "RETURNDATASIZE",
    "RETURNDATACOPY",
    "GAS",
    "OR",
    "ADDRESS",
    "STATICCALL",
    "LT",
    "SHL",
    "LOG3",
    "RETURN",
    "PUSH1",
    "SWAP3",
    "REVERT",
    "MLOAD",
    "CALLDATALOAD",
    "POP",
    "ISZERO",
    "SELFBALANCE",
    "MSTORE",
    "AND",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bem::{extract_dataset, BemConfig};
    use phishinghook_chain::SimulatedChain;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    #[test]
    fn distributions_cover_both_classes() {
        let corpus = generate_corpus(&CorpusConfig::small(61));
        let chain = SimulatedChain::from_corpus(&corpus);
        let (data, _) = extract_dataset(&chain, &BemConfig::default());
        let usage = opcode_usage(&data, &FIG3_OPCODES);
        assert_eq!(usage.by_opcode.len(), 20);
        let (benign, phishing) = &usage.by_opcode["PUSH1"];
        assert_eq!(benign.counts.len(), data.len() - data.positives());
        assert_eq!(phishing.counts.len(), data.positives());
        // PUSH1 is skeleton mass: both classes use it heavily.
        assert!(benign.mean() > 1.0 && phishing.mean() > 1.0);
    }

    #[test]
    fn quartiles_are_ordered() {
        let d = UsageDistribution {
            counts: vec![1, 5, 2, 9, 7, 3],
        };
        let (q1, q2, q3) = d.quartiles();
        assert!(q1 <= q2 && q2 <= q3);
    }

    #[test]
    fn empty_distribution_is_zeroed() {
        let d = UsageDistribution::default();
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.quartiles(), (0.0, 0.0, 0.0));
    }
}
