//! Trainable-parameter storage with an Adam optimizer.

use crate::tensor::Tensor;
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use rand::Rng;

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Owns every trainable tensor of a model plus its gradient and Adam state.
///
/// Training loop shape: record one tape per mini-batch (reusing it via
/// [`Tape::reset`](crate::tape::Tape::reset)), call
/// [`Tape::backward`](crate::tape::Tape::backward) (which accumulates into
/// the store's gradients), then [`ParamStore::adam_step`] once per
/// mini-batch.
///
/// # Examples
///
/// ```
/// use phishinghook_nn::{ParamStore, Tensor};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let w = store.param(Tensor::he(&[4, 2], 4, &mut rng));
/// assert_eq!(store.value(w).shape(), &[4, 2]);
/// ```
#[derive(Debug, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    adam_m: Vec<Tensor>,
    adam_v: Vec<Tensor>,
    step: usize,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter with an initial value.
    pub fn param(&mut self, init: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(init.shape()));
        self.adam_m.push(Tensor::zeros(init.shape()));
        self.adam_v.push(Tensor::zeros(init.shape()));
        self.values.push(init);
        id
    }

    /// Registers a zero-initialised parameter (biases, norm offsets).
    pub fn zeros(&mut self, shape: &[usize]) -> ParamId {
        self.param(Tensor::zeros(shape))
    }

    /// Registers a He-initialised parameter.
    pub fn he<R: Rng>(&mut self, shape: &[usize], fan_in: usize, rng: &mut R) -> ParamId {
        self.param(Tensor::he(shape, fan_in, rng))
    }

    /// Registers a parameter filled with a constant.
    pub fn full(&mut self, shape: &[usize], value: f32) -> ParamId {
        let mut t = Tensor::zeros(shape);
        t.data_mut().fill(value);
        self.param(t)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `g` into the stored gradient (called by the tape).
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        let acc = &mut self.grads[id.0];
        debug_assert_eq!(acc.shape(), g.shape());
        for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
            *a += b;
        }
    }

    /// A detached gradient accumulator mirroring this store's tensor
    /// shapes, zero-initialised. The data-parallel trainer hands one to
    /// each shard's [`Tape::backward_into`](crate::tape::Tape::backward_into)
    /// so workers never touch the store, then folds the buffers back with
    /// [`ParamStore::add_grad_buffer`] in a fixed shard order.
    pub fn grad_buffer(&self) -> GradBuffer {
        GradBuffer {
            grads: self
                .values
                .iter()
                .map(|t| Tensor::zeros(t.shape()))
                .collect(),
        }
    }

    /// Adds every tensor of `buf` into the stored gradients. The trainer
    /// calls this once per shard **in shard-index order**, so the reduction
    /// order — and therefore every fitted bit — is fixed regardless of how
    /// many workers computed the buffers.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was built from a differently-shaped store.
    pub fn add_grad_buffer(&mut self, buf: &GradBuffer) {
        assert_eq!(buf.grads.len(), self.grads.len(), "grad buffer mismatch");
        for (acc, g) in self.grads.iter_mut().zip(&buf.grads) {
            assert_eq!(acc.shape(), g.shape(), "grad buffer shape mismatch");
            for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
                *a += b;
            }
        }
    }

    /// Zeroes all gradients (start of a mini-batch).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// One Adam update over all parameters with the accumulated gradients,
    /// scaled by `1/batch` (pass the mini-batch size).
    pub fn adam_step(&mut self, lr: f32, batch: usize) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        let scale = 1.0 / batch.max(1) as f32;
        for p in 0..self.values.len() {
            let g_tensor = &self.grads[p];
            let m = self.adam_m[p].data_mut();
            let v = self.adam_v[p].data_mut();
            let w = self.values[p].data_mut();
            for i in 0..w.len() {
                let g = g_tensor.data()[i] * scale;
                m[i] = B1 * m[i] + (1.0 - B1) * g;
                v[i] = B2 * v[i] + (1.0 - B2) * g * g;
                w[i] -= lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + EPS);
            }
        }
    }

    /// Serializes every parameter tensor as a flat `(shape, f32 data)`
    /// list — the bit-exact export the persistence layer embeds in model
    /// artifacts. Optimizer state (gradients, Adam moments, step count) is
    /// deliberately excluded: a reloaded model scores, it does not resume
    /// training mid-batch.
    pub fn export_tensors(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.values.len() as u32);
        for t in &self.values {
            w.put_u32(t.shape().len() as u32);
            for &d in t.shape() {
                w.put_usize(d);
            }
            w.put_f32_slice(t.data());
        }
        w.into_bytes()
    }

    /// Restores parameter values from [`ParamStore::export_tensors`] bytes
    /// into a structurally identical store (same tensor count and shapes —
    /// the store a freshly built model of the same configuration owns).
    /// Gradients and Adam state are reset, as on a fresh store.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] when the tensor count or any shape
    /// disagrees with this store, [`ArtifactError::Corrupt`] on a
    /// truncated or malformed payload.
    pub fn import_tensors(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let count = r.take_u32()? as usize;
        if count != self.values.len() {
            return Err(ArtifactError::Mismatch(format!(
                "parameter store holds {} tensors, artifact holds {count}",
                self.values.len()
            )));
        }
        let mut incoming = Vec::with_capacity(count);
        for i in 0..count {
            // Each dimension occupies 8 bytes; the bounded count keeps a
            // crafted payload from forcing a huge pre-allocation.
            let rank = r
                .take_count_u32(8)
                .map_err(|e| ArtifactError::Corrupt(format!("tensor {i} rank: {e}")))?;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(r.take_usize()?);
            }
            let data = r.take_f32_slice()?;
            if data.len() != shape.iter().product::<usize>() {
                return Err(ArtifactError::Corrupt(format!(
                    "tensor {i}: {} values for shape {shape:?}",
                    data.len()
                )));
            }
            if shape != self.values[i].shape() {
                return Err(ArtifactError::Mismatch(format!(
                    "tensor {i}: artifact shape {shape:?} vs store shape {:?}",
                    self.values[i].shape()
                )));
            }
            incoming.push(Tensor::from_vec(&shape, data));
        }
        r.expect_exhausted("parameter tensors")?;
        // All validated; commit atomically.
        for (slot, t) in self.values.iter_mut().zip(incoming) {
            *slot = t;
        }
        for g in self
            .grads
            .iter_mut()
            .chain(&mut self.adam_m)
            .chain(&mut self.adam_v)
        {
            g.data_mut().fill(0.0);
        }
        self.step = 0;
        Ok(())
    }

    /// Freezes a parameter by zeroing its future updates: gradient is still
    /// accumulated but `adam_step_masked` skips the listed ids (used by
    /// ESCORT's transfer-learning phase).
    pub fn adam_step_masked(&mut self, lr: f32, batch: usize, frozen: &[ParamId]) {
        // Save frozen values, step, then restore.
        let saved: Vec<(ParamId, Tensor)> = frozen
            .iter()
            .map(|&id| (id, self.values[id.0].clone()))
            .collect();
        self.adam_step(lr, batch);
        for (id, v) in saved {
            self.values[id.0] = v;
        }
    }
}

/// Gradients detached from any [`ParamStore`]: one zero-initialised tensor
/// per parameter, in store order. Produced by [`ParamStore::grad_buffer`],
/// filled by [`Tape::backward_into`](crate::tape::Tape::backward_into),
/// folded back with [`ParamStore::add_grad_buffer`]. This is the per-shard
/// sink that lets mini-batch shards run on worker threads while the
/// gradient *reduction* stays a fixed-order fold on the caller's thread.
#[derive(Debug, Default)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// Zeroes every tensor (start of the next shard, reusing the buffer).
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Adds `g` into the buffered gradient (called by the tape).
    pub(crate) fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        let acc = &mut self.grads[id.0];
        debug_assert_eq!(acc.shape(), g.shape());
        for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_reduces_a_quadratic() {
        // Minimize (w - 3)^2 by feeding grad = 2(w - 3).
        let mut store = ParamStore::new();
        let id = store.param(Tensor::scalar(0.0));
        for _ in 0..500 {
            store.zero_grads();
            let w = store.value(id).item();
            store.accumulate_grad(id, &Tensor::scalar(2.0 * (w - 3.0)));
            store.adam_step(0.05, 1);
        }
        assert!((store.value(id).item() - 3.0).abs() < 0.05);
    }

    #[test]
    fn masked_step_freezes_parameters() {
        let mut store = ParamStore::new();
        let a = store.param(Tensor::scalar(1.0));
        let b = store.param(Tensor::scalar(1.0));
        store.accumulate_grad(a, &Tensor::scalar(1.0));
        store.accumulate_grad(b, &Tensor::scalar(1.0));
        store.adam_step_masked(0.1, 1, &[a]);
        assert_eq!(store.value(a).item(), 1.0);
        assert!(store.value(b).item() < 1.0);
    }

    #[test]
    fn zero_grads_clears() {
        let mut store = ParamStore::new();
        let a = store.param(Tensor::scalar(0.0));
        store.accumulate_grad(a, &Tensor::scalar(5.0));
        store.zero_grads();
        assert_eq!(store.grad(a).item(), 0.0);
    }

    #[test]
    fn tensor_export_round_trips_bit_exactly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let a = store.he(&[3, 4], 3, &mut rng);
        let b = store.zeros(&[5]);
        store.accumulate_grad(b, &Tensor::from_vec(&[5], vec![1.0; 5]));
        store.adam_step(0.1, 1);
        let exported = store.export_tensors();

        // A structurally identical store with different values.
        let mut fresh = ParamStore::new();
        fresh.he(&[3, 4], 3, &mut rng);
        fresh.zeros(&[5]);
        fresh.import_tensors(&exported).unwrap();
        assert_eq!(fresh.value(a).data(), store.value(a).data());
        assert_eq!(fresh.value(b).data(), store.value(b).data());
        // Optimizer state resets on import.
        assert_eq!(fresh.grad(b).data(), &[0.0; 5]);
    }

    #[test]
    fn import_rejects_shape_and_count_mismatches() {
        use phishinghook_artifact::ArtifactError;
        let mut store = ParamStore::new();
        store.zeros(&[2, 2]);
        let exported = store.export_tensors();

        let mut wrong_count = ParamStore::new();
        wrong_count.zeros(&[2, 2]);
        wrong_count.zeros(&[1]);
        assert!(matches!(
            wrong_count.import_tensors(&exported),
            Err(ArtifactError::Mismatch(_))
        ));

        let mut wrong_shape = ParamStore::new();
        wrong_shape.zeros(&[4]);
        assert!(matches!(
            wrong_shape.import_tensors(&exported),
            Err(ArtifactError::Mismatch(_))
        ));

        let mut same = ParamStore::new();
        same.zeros(&[2, 2]);
        assert!(matches!(
            same.import_tensors(&exported[..exported.len() - 2]),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn scalar_count_sums_all() {
        let mut store = ParamStore::new();
        store.zeros(&[2, 3]);
        store.zeros(&[4]);
        assert_eq!(store.scalar_count(), 10);
        assert_eq!(store.len(), 2);
    }
}
