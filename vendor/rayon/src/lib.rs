//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! Implements the one pattern this workspace uses —
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` — with real
//! parallelism over `std::thread::scope`. The input range is split into one
//! contiguous chunk per worker and results are concatenated in order, so
//! output ordering (and therefore every downstream seed-derived computation)
//! is deterministic and identical to the sequential path.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Number of worker threads used by parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Parallel iterator type.
    type Iter;

    /// Starts a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range, ready to collect.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map across a thread pool and collects results in input
    /// order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParallelResults<T>,
    {
        let ParMap { range, f } = self;
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return C::from_ordered(Vec::new());
        }
        let workers = current_num_threads().min(n).max(1);
        if workers == 1 {
            return C::from_ordered(range.map(f).collect());
        }
        let chunk = n.div_ceil(workers);
        let f = &f;
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = range.start + w * chunk;
                    let hi = (lo + chunk).min(range.end);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        C::from_ordered(out)
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelResults<T> {
    /// Builds the collection from in-order results.
    fn from_ordered(v: Vec<T>) -> Self;
}

impl<T> FromParallelResults<T> for Vec<T> {
    fn from_ordered(v: Vec<T>) -> Self {
        v
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParMap, ParRange};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn empty_range() {
        let v: Vec<u8> = (5..5).into_par_iter().map(|_| 0u8).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn matches_sequential() {
        let par: Vec<u64> = (0..257)
            .into_par_iter()
            .map(|i| (i as u64).pow(2))
            .collect();
        let seq: Vec<u64> = (0..257).map(|i| (i as u64).pow(2)).collect();
        assert_eq!(par, seq);
    }
}
