//! Ablation: the deduplication step. The paper deduplicates bit-identical
//! proxy clones *before* splitting; skipping that step leaks clones across
//! the train/test boundary and inflates the apparent accuracy.

use phishinghook::dataset::{Dataset, Sample};
use phishinghook::prelude::*;
use phishinghook_bench::{banner, RunScale};

fn eval(dataset: &Dataset, profile: &EvalProfile) -> Metrics {
    let folds = dataset.stratified_folds(3, 3);
    let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);
    let ctx = EvalContext::new(dataset, profile);
    evaluate_trial(&ctx, ModelKind::RandomForest, &train_idx, &test_idx, 3).metrics
}

fn main() {
    let scale = RunScale::from_args();
    banner("Ablation - dedup before split vs clone leakage", scale);
    let n = scale.corpus_size();
    let corpus = generate_corpus(&CorpusConfig {
        unique_phishing: n,
        unique_benign: n,
        clone_factor: 5.05,
        ..CorpusConfig::small(0xAB2)
    });
    let chain = SimulatedChain::from_corpus(&corpus);

    // With dedup (the paper's pipeline).
    let (deduped, report) = extract_dataset(&chain, &BemConfig::default());
    // Without dedup: every deployment (clones included) becomes a sample.
    let leaky = Dataset::new(
        chain
            .records()
            .iter()
            .map(|r| Sample {
                bytecode: r.bytecode.clone(),
                label: u8::from(r.flagged),
                month: r.month,
            })
            .collect(),
    );

    let profile = scale.profile();
    let clean = eval(&deduped, &profile);
    let leaked = eval(&leaky, &profile);

    println!(
        "deduplicated:   {:>6} samples, accuracy {:.4}",
        deduped.len(),
        clean.accuracy
    );
    println!(
        "clone-leaking:  {:>6} samples, accuracy {:.4}",
        leaky.len(),
        leaked.accuracy
    );
    println!(
        "\noptimistic bias from skipping dedup: {:+.4} accuracy ({} deployments -> {} unique)",
        leaked.accuracy - clean.accuracy,
        report.scanned,
        report.unique
    );
}
