//! Domain-typed JSON helpers for the regeneration binaries.
//!
//! The generic tree/parser ([`Value`], [`parse`], [`MAX_DEPTH`]) was
//! promoted to [`phishinghook::json`] when the serving tier became a
//! second consumer; this module re-exports it and keeps only the typed
//! helpers for the shapes the binaries exchange (`table2.json`,
//! `fig5_study.json`).

use phishinghook::scalability::ScalabilityCell;
use phishinghook::{Metrics, ModelKind, ScalabilityStudy, TrialOutcome};

pub use phishinghook::json::{parse, Value, MAX_DEPTH};

fn trial_to_value(t: &TrialOutcome) -> Value {
    Value::Obj(vec![
        ("accuracy".into(), Value::Num(t.metrics.accuracy)),
        ("f1".into(), Value::Num(t.metrics.f1)),
        ("precision".into(), Value::Num(t.metrics.precision)),
        ("recall".into(), Value::Num(t.metrics.recall)),
        ("train_seconds".into(), Value::Num(t.train_seconds)),
        ("infer_seconds".into(), Value::Num(t.infer_seconds)),
    ])
}

fn trial_from_value(v: &Value) -> Option<TrialOutcome> {
    Some(TrialOutcome {
        metrics: Metrics {
            accuracy: v.get("accuracy")?.as_f64()?,
            f1: v.get("f1")?.as_f64()?,
            precision: v.get("precision")?.as_f64()?,
            recall: v.get("recall")?.as_f64()?,
        },
        train_seconds: v.get("train_seconds")?.as_f64()?,
        infer_seconds: v.get("infer_seconds")?.as_f64()?,
    })
}

/// Serializes per-model trial lists (the `table2.json` artifact).
pub fn trials_to_json(results: &[(ModelKind, Vec<TrialOutcome>)]) -> String {
    Value::Arr(
        results
            .iter()
            .map(|(kind, trials)| {
                Value::Obj(vec![
                    ("model".into(), Value::Str(kind.id().into())),
                    (
                        "trials".into(),
                        Value::Arr(trials.iter().map(trial_to_value).collect()),
                    ),
                ])
            })
            .collect(),
    )
    .render()
}

/// Parses the `table2.json` artifact back into per-model trial lists.
pub fn trials_from_json(input: &str) -> Option<Vec<(ModelKind, Vec<TrialOutcome>)>> {
    let doc = parse(input)?;
    let mut out = Vec::new();
    for entry in doc.as_arr()? {
        let kind = ModelKind::from_id(entry.get("model")?.as_str()?)?;
        let trials = entry
            .get("trials")?
            .as_arr()?
            .iter()
            .map(trial_from_value)
            .collect::<Option<Vec<_>>>()?;
        out.push((kind, trials));
    }
    Some(out)
}

/// Serializes a full scalability study (the `fig5_study.json` artifact
/// fig6/fig7 reload instead of re-running the nine-cell trial matrix).
pub fn scalability_to_json(study: &ScalabilityStudy) -> String {
    Value::Obj(vec![
        ("folds".into(), Value::Num(study.folds as f64)),
        (
            "cells".into(),
            Value::Arr(
                study
                    .cells
                    .iter()
                    .map(|cell| {
                        Value::Obj(vec![
                            ("model".into(), Value::Str(cell.model.id().into())),
                            ("ratio".into(), Value::Num(cell.ratio)),
                            ("trial".into(), trial_to_value(&cell.outcome)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Parses the `fig5_study.json` artifact back into a scalability study.
pub fn scalability_from_json(input: &str) -> Option<ScalabilityStudy> {
    let doc = parse(input)?;
    let folds = doc.get("folds")?.as_f64()? as usize;
    let mut cells = Vec::new();
    for cell in doc.get("cells")?.as_arr()? {
        cells.push(ScalabilityCell {
            model: ModelKind::from_id(cell.get("model")?.as_str()?)?,
            ratio: cell.get("ratio")?.as_f64()?,
            outcome: trial_from_value(cell.get("trial")?)?,
        });
    }
    Some(ScalabilityStudy { cells, folds })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_round_trip() {
        let results = vec![(
            ModelKind::RandomForest,
            vec![TrialOutcome {
                metrics: Metrics {
                    accuracy: 0.9,
                    f1: 0.8,
                    precision: 0.7,
                    recall: 0.6,
                },
                train_seconds: 1.25,
                infer_seconds: 0.5,
            }],
        )];
        let json = trials_to_json(&results);
        let parsed = trials_from_json(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, ModelKind::RandomForest);
        assert_eq!(parsed[0].1[0].metrics.accuracy, 0.9);
        assert_eq!(parsed[0].1[0].train_seconds, 1.25);
    }

    #[test]
    fn scalability_round_trip() {
        let study = ScalabilityStudy {
            cells: vec![ScalabilityCell {
                model: ModelKind::ScsGuard,
                ratio: 1.0 / 3.0,
                outcome: TrialOutcome {
                    metrics: Metrics {
                        accuracy: 0.91,
                        f1: 0.9,
                        precision: 0.89,
                        recall: 0.92,
                    },
                    train_seconds: 2.5,
                    infer_seconds: 0.25,
                },
            }],
            folds: 4,
        };
        let parsed = scalability_from_json(&scalability_to_json(&study)).unwrap();
        assert_eq!(parsed.folds, 4);
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.cells[0].model, ModelKind::ScsGuard);
        // The 1/3 ratio must survive the round trip bit-exactly: the study
        // accessors match ratios with an epsilon compare.
        assert_eq!(parsed.cells[0].ratio, 1.0 / 3.0);
        assert_eq!(parsed.cells[0].outcome.metrics.accuracy, 0.91);
    }
}
