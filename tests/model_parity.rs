//! Smoke parity across all sixteen models: each trains through the unified
//! `Model` trait dispatch on the synthetic corpus and produces coherent
//! metrics. Mirrors Table II's qualitative structure — HSCs strong, ESCORT
//! near chance.

use phishinghook::prelude::*;

fn shared_context() -> (Dataset, EvalContext) {
    let corpus = generate_corpus(&CorpusConfig::small(404));
    let chain = SimulatedChain::from_corpus(&corpus);
    let dataset = extract_dataset(&chain, &BemConfig::default()).0;
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    (dataset, ctx)
}

#[test]
fn all_sixteen_models_run_and_report_valid_metrics() {
    let (dataset, ctx) = shared_context();
    let folds = dataset.stratified_folds(3, 5);
    let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);

    for kind in ModelKind::ALL {
        let outcome = evaluate_trial(&ctx, kind, &train_idx, &test_idx, 5);
        let m = outcome.metrics;
        for v in [m.accuracy, m.f1, m.precision, m.recall] {
            assert!((0.0..=1.0).contains(&v), "{kind}: metric out of range");
        }
        assert!(outcome.train_seconds >= 0.0);
        assert!(outcome.infer_seconds >= 0.0);
        // Nothing should be catastrophically below chance on a balanced set.
        assert!(
            m.accuracy > 0.30,
            "{kind}: accuracy {} below sanity floor",
            m.accuracy
        );
    }
}

#[test]
fn histogram_classifiers_beat_the_vulnerability_detector() {
    // The paper's headline structural finding: HSCs ≈ 90%+, ESCORT ≈ 56%.
    let (dataset, ctx) = shared_context();
    let folds = dataset.stratified_folds(3, 9);
    let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);

    let rf = evaluate_trial(&ctx, ModelKind::RandomForest, &train_idx, &test_idx, 9);
    let escort = evaluate_trial(&ctx, ModelKind::Escort, &train_idx, &test_idx, 9);
    assert!(
        rf.metrics.accuracy > escort.metrics.accuracy,
        "RF {} should beat ESCORT {}",
        rf.metrics.accuracy,
        escort.metrics.accuracy
    );
    assert!(
        rf.metrics.accuracy > 0.75,
        "RF accuracy = {}",
        rf.metrics.accuracy
    );
}

#[test]
fn boosting_trio_is_competitive_with_the_forest() {
    let (dataset, ctx) = shared_context();
    let folds = dataset.stratified_folds(3, 13);
    let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);
    for kind in [ModelKind::Xgboost, ModelKind::Lightgbm, ModelKind::Catboost] {
        let outcome = evaluate_trial(&ctx, kind, &train_idx, &test_idx, 13);
        assert!(
            outcome.metrics.accuracy > 0.7,
            "{kind}: accuracy {}",
            outcome.metrics.accuracy
        );
    }
}
