//! Dense `f32` tensors with explicit shapes.

use rand::Rng;

/// A dense row-major tensor.
///
/// # Examples
///
/// ```
/// use phishinghook_nn::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor of a shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![v],
        }
    }

    /// Uniform random tensor in `[-scale, scale]`.
    pub fn random<R: Rng>(shape: &[usize], scale: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(|_| rng.gen_range(-scale..=scale)).collect(),
        }
    }

    /// Kaiming/He-style initialisation for a fan-in.
    pub fn he<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let scale = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::random(shape, scale, rng)
    }

    /// Shape slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The single value of a scalar/1-element tensor.
    ///
    /// # Panics
    ///
    /// Panics unless `len() == 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    /// Consumes the tensor, returning its flat data buffer (used by the
    /// tape's arena to recycle allocations across [`Tape::reset`] calls).
    ///
    /// [`Tape::reset`]: crate::Tape::reset
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the data under a new shape (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Rows × cols view check for 2-D ops.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(
            self.shape.len(),
            2,
            "expected 2-D tensor, got {:?}",
            self.shape
        );
        (self.shape[0], self.shape[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.dims2(), (2, 2));
        assert_eq!(t.data()[3], 4.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        Tensor::from_vec(&[2, 3], vec![0.0; 5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.reshaped(&[2, 2]);
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.data(), t.data());
    }
}
