//! A tiny EVM assembler used by the contract templates.
//!
//! [`Asm`] is an append-only byte builder with helpers for the encodings the
//! templates need (width-minimal `PUSH`, 4-byte selectors, 20-byte
//! addresses). It intentionally does *not* resolve labels: synthetic jump
//! targets are patched by [`Asm::patch_u16`] after layout, mirroring how the
//! dispatcher is laid out by solc.

use phishinghook_evm::opcodes::op;
use phishinghook_evm::Bytecode;

/// Append-only EVM bytecode builder.
///
/// # Examples
///
/// ```
/// use phishinghook_synth::asm::Asm;
/// use phishinghook_evm::opcodes::op;
///
/// let mut asm = Asm::new();
/// asm.op(op::PUSH1).byte(0x80).op(op::PUSH1).byte(0x40).op(op::MSTORE);
/// assert_eq!(asm.build().to_hex(), "0x6080604052");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    bytes: Vec<u8>,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Asm { bytes: Vec::new() }
    }

    /// Current length in bytes (the offset the next emitted byte will get).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Emits a raw opcode byte.
    pub fn op(&mut self, opcode: u8) -> &mut Self {
        self.bytes.push(opcode);
        self
    }

    /// Emits a raw data byte (e.g. a `PUSH1` immediate).
    pub fn byte(&mut self, b: u8) -> &mut Self {
        self.bytes.push(b);
        self
    }

    /// Emits raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Emits the width-minimal `PUSHn` for a value (`PUSH0` for zero).
    pub fn push_uint(&mut self, value: u64) -> &mut Self {
        if value == 0 {
            return self.op(op::PUSH0);
        }
        let be = value.to_be_bytes();
        let skip = be.iter().take_while(|&&b| b == 0).count();
        let imm = &be[skip..];
        self.bytes.push(op::PUSH1 + (imm.len() - 1) as u8);
        self.bytes.extend_from_slice(imm);
        self
    }

    /// Emits `PUSH1 v`.
    pub fn push1(&mut self, v: u8) -> &mut Self {
        self.op(op::PUSH1).byte(v)
    }

    /// Emits `PUSH2` with a big-endian 16-bit immediate (jump targets).
    pub fn push2(&mut self, v: u16) -> &mut Self {
        self.op(op::PUSH2).raw(&v.to_be_bytes())
    }

    /// Emits `PUSH4` with a function selector.
    pub fn push_selector(&mut self, selector: u32) -> &mut Self {
        self.op(op::PUSH4).raw(&selector.to_be_bytes())
    }

    /// Emits `PUSH20` with an address.
    pub fn push_address(&mut self, address: &[u8; 20]) -> &mut Self {
        self.op(op::PUSH20).raw(address)
    }

    /// Emits `PUSH32` with a full word (event topics).
    pub fn push_word(&mut self, word: &[u8; 32]) -> &mut Self {
        self.op(op::PUSH32).raw(word)
    }

    /// Emits a `PUSH2 0x0000` placeholder and returns the offset of its
    /// immediate for later patching.
    pub fn push2_placeholder(&mut self) -> usize {
        self.op(op::PUSH2);
        let at = self.bytes.len();
        self.raw(&[0, 0]);
        at
    }

    /// Patches a 16-bit big-endian value previously reserved with
    /// [`Asm::push2_placeholder`].
    ///
    /// # Panics
    ///
    /// Panics if `at + 2` exceeds the current length.
    pub fn patch_u16(&mut self, at: usize, value: u16) {
        assert!(at + 2 <= self.bytes.len(), "patch out of range");
        self.bytes[at..at + 2].copy_from_slice(&value.to_be_bytes());
    }

    /// Finishes and returns the bytecode.
    pub fn build(self) -> Bytecode {
        Bytecode::new(self.bytes)
    }

    /// Borrowing view of the bytes emitted so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::disasm::disassemble;

    #[test]
    fn push_uint_picks_minimal_width() {
        let mut a = Asm::new();
        a.push_uint(0);
        a.push_uint(0x7F);
        a.push_uint(0x1234);
        a.push_uint(0xAABBCCDD);
        let code = a.build();
        let instrs = disassemble(code.as_bytes());
        let names: Vec<String> = instrs
            .iter()
            .map(|i| i.mnemonic.name().into_owned())
            .collect();
        assert_eq!(names, ["PUSH0", "PUSH1", "PUSH2", "PUSH4"]);
        assert_eq!(instrs[3].operand, vec![0xAA, 0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn placeholder_patching() {
        let mut a = Asm::new();
        let at = a.push2_placeholder();
        a.op(op::JUMPI);
        a.patch_u16(at, 0xBEEF);
        assert_eq!(a.as_bytes(), &[op::PUSH2, 0xBE, 0xEF, op::JUMPI]);
    }

    #[test]
    fn selector_and_address_widths() {
        let mut a = Asm::new();
        a.push_selector(0xa9059cbb); // transfer(address,uint256)
        a.push_address(&[0x11; 20]);
        let instrs = disassemble(a.build().as_bytes());
        assert_eq!(instrs[0].operand.len(), 4);
        assert_eq!(instrs[1].operand.len(), 20);
    }

    #[test]
    #[should_panic(expected = "patch out of range")]
    fn patch_bounds_checked() {
        let mut a = Asm::new();
        a.patch_u16(0, 1);
    }
}
