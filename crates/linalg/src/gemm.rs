//! Blocked dense kernels over raw `f32` slices.
//!
//! These are the shared compute primitives under both [`Matrix`] and the
//! autodiff tape in `phishinghook-nn`: a cache-blocked GEMM with packed
//! B-panels, a tiled transpose, and `dot`/`axpy` inner loops. Keeping them
//! slice-shaped (no owning type) lets both layers call straight into one
//! kernel and lets callers reuse output storage across calls
//! (`matmul_into` / `transpose_into`).
//!
//! **SIMD tiers.** The GEMM micro-kernel and `axpy` dispatch at runtime
//! (`is_x86_feature_detected!`, cached per process) to AVX-512F, AVX2 or
//! NEON lane-parallel inner loops, with the scalar loop kept as the
//! bit-exact reference (on x86-64 the compiler auto-vectorizes it to the
//! SSE2 baseline). Vector lanes map to *distinct output columns* — the `n`
//! dimension — so each `C[i][j]` still receives exactly one rounded
//! multiply and one rounded add per `k` step, in strictly increasing `k`
//! order; no tier uses a fused multiply-add (FMA skips the product's
//! rounding and would change bits). `PHISHINGHOOK_FORCE_SCALAR=1` pins the
//! scalar reference for A/B runs; CI runs this crate's tests both ways.
//!
//! **Threading.** Large products shard A's row blocks across scoped
//! threads ([`par::pool_size`](crate::par), overridable with
//! `PHISHINGHOOK_THREADS`). Workers own disjoint output-row ranges and
//! share nothing but the read-only inputs — each row's computation is
//! identical to the single-threaded one, so the result is bit-identical at
//! every worker count, deterministic by construction.
//!
//! **Accumulation-order contract:** for every output element, products are
//! accumulated in strictly increasing `k` order, independent of blocking,
//! SIMD tier and thread count — so `C[i][j]` is bit-identical whether the
//! row arrived alone (a GEMV-shaped call) or inside a larger batch. The
//! batched training/inference paths rely on this for their bit-parity
//! guarantees.
//!
//! [`Matrix`]: crate::Matrix

use crate::par;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// k-dimension block: one packed B-panel spans `KC` rows of B.
const KC: usize = 256;
/// n-dimension block: columns per packed B-panel. `KC × NC` f32s is 64 KiB
/// — sized so the packed panel stays (mostly) L1-resident while the
/// register-tiled micro-kernel streams it once per four-row group.
const NC: usize = 64;
/// Transpose tile side.
const TC: usize = 32;
/// Below this `k·n` footprint (f32s) the direct loop beats packing.
const SMALL_B: usize = 16 * 1024;
/// Row-sharding engages only at or above this `m·k·n` multiply-accumulate
/// count: smaller products finish faster than the scoped-thread spawns.
const MT_MIN_MACS: usize = 4 << 20;
/// Minimum output rows per worker, so a shard amortizes its spawn.
const MT_MIN_ROWS: usize = 32;

thread_local! {
    /// Per-thread packing arena so steady-state GEMMs never allocate.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// SIMD tier selection
// ---------------------------------------------------------------------------

/// Micro-kernel tier, resolved once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Simd {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

#[cfg(target_arch = "x86_64")]
fn best_simd() -> Simd {
    // avx512f gating also requires avx2 so the tier can assume 256-bit ops.
    if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2") {
        Simd::Avx512
    } else if is_x86_feature_detected!("avx2") {
        Simd::Avx2
    } else {
        Simd::Scalar
    }
}

#[cfg(target_arch = "aarch64")]
fn best_simd() -> Simd {
    // NEON is part of the aarch64 baseline.
    Simd::Neon
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn best_simd() -> Simd {
    Simd::Scalar
}

fn detect_simd() -> Simd {
    let forced =
        std::env::var_os("PHISHINGHOOK_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        Simd::Scalar
    } else {
        best_simd()
    }
}

const SIMD_UNINIT: u8 = 0;

fn simd_code(s: Simd) -> u8 {
    match s {
        Simd::Scalar => 1,
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => 2,
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 => 3,
        #[cfg(target_arch = "aarch64")]
        Simd::Neon => 4,
    }
}

fn simd_from_code(c: u8) -> Simd {
    match c {
        #[cfg(target_arch = "x86_64")]
        2 => Simd::Avx2,
        #[cfg(target_arch = "x86_64")]
        3 => Simd::Avx512,
        #[cfg(target_arch = "aarch64")]
        4 => Simd::Neon,
        _ => Simd::Scalar,
    }
}

fn active_simd() -> Simd {
    static CACHE: AtomicU8 = AtomicU8::new(SIMD_UNINIT);
    let c = CACHE.load(Ordering::Relaxed);
    if c != SIMD_UNINIT {
        return simd_from_code(c);
    }
    let s = detect_simd();
    CACHE.store(simd_code(s), Ordering::Relaxed);
    s
}

/// Name of the runtime-selected micro-kernel tier — `"scalar"`, `"avx2"`,
/// `"avx512f"` or `"neon"`. Benches record it and skip SIMD-speedup floors
/// when only the scalar reference is available.
pub fn active_simd_name() -> &'static str {
    match active_simd() {
        Simd::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 => "avx512f",
        #[cfg(target_arch = "aarch64")]
        Simd::Neon => "neon",
    }
}

// ---------------------------------------------------------------------------
// Lane-parallel inner loops
// ---------------------------------------------------------------------------
//
// Every vector op below is a separate multiply and add (`mul_ps` then
// `add_ps`, never an FMA): the scalar reference rounds each product before
// accumulating, and a fused multiply-add would skip that rounding and
// change bits. Lanes are distinct `j` columns, so each lane performs
// exactly the scalar per-element sequence.
//
// The panel kernels are register-tiled: a tile of C accumulators is
// loaded once, accumulated in registers across the whole `kk` loop, and
// stored once. Where the C value lives (register vs memory) cannot change
// an f32 rounding, so the result stays bit-identical to the scalar
// reference — but the inner loop stops being store-bound, which is where
// the SIMD speedup actually comes from.

#[cfg(target_arch = "x86_64")]
mod lanes_x86 {
    use std::arch::x86_64::*;

    /// Four-row register-tiled panel kernel, AVX2:
    /// `r?[j] += Σ_kk a?[kk] · panel[kk·nc + j]`. Tiles of 16 columns hold
    /// eight accumulators (eight independent dependency chains to cover
    /// the `add` latency); per element the accumulation is one rounded
    /// multiply and one rounded add per `kk`, `kk` ascending — the exact
    /// scalar sequence.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2`; the `a?` slices share one length
    /// `kc`, `panel` holds at least `kc·nc` elements and every `r?` at
    /// least `nc`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn quad_panel_avx2(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        nc: usize,
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
    ) {
        let kc = a0.len();
        let bp = panel.as_ptr();
        let (p0, p1) = (r0.as_mut_ptr(), r1.as_mut_ptr());
        let (p2, p3) = (r2.as_mut_ptr(), r3.as_mut_ptr());
        let mut j = 0;
        while j + 16 <= nc {
            let mut c00 = _mm256_loadu_ps(p0.add(j));
            let mut c01 = _mm256_loadu_ps(p0.add(j + 8));
            let mut c10 = _mm256_loadu_ps(p1.add(j));
            let mut c11 = _mm256_loadu_ps(p1.add(j + 8));
            let mut c20 = _mm256_loadu_ps(p2.add(j));
            let mut c21 = _mm256_loadu_ps(p2.add(j + 8));
            let mut c30 = _mm256_loadu_ps(p3.add(j));
            let mut c31 = _mm256_loadu_ps(p3.add(j + 8));
            for kk in 0..kc {
                let b0 = _mm256_loadu_ps(bp.add(kk * nc + j));
                let b1 = _mm256_loadu_ps(bp.add(kk * nc + j + 8));
                let va0 = _mm256_set1_ps(a0[kk]);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(va0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(va0, b1));
                let va1 = _mm256_set1_ps(a1[kk]);
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(va1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(va1, b1));
                let va2 = _mm256_set1_ps(a2[kk]);
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(va2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(va2, b1));
                let va3 = _mm256_set1_ps(a3[kk]);
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(va3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(va3, b1));
            }
            _mm256_storeu_ps(p0.add(j), c00);
            _mm256_storeu_ps(p0.add(j + 8), c01);
            _mm256_storeu_ps(p1.add(j), c10);
            _mm256_storeu_ps(p1.add(j + 8), c11);
            _mm256_storeu_ps(p2.add(j), c20);
            _mm256_storeu_ps(p2.add(j + 8), c21);
            _mm256_storeu_ps(p3.add(j), c30);
            _mm256_storeu_ps(p3.add(j + 8), c31);
            j += 16;
        }
        while j + 8 <= nc {
            let mut c0 = _mm256_loadu_ps(p0.add(j));
            let mut c1 = _mm256_loadu_ps(p1.add(j));
            let mut c2 = _mm256_loadu_ps(p2.add(j));
            let mut c3 = _mm256_loadu_ps(p3.add(j));
            for kk in 0..kc {
                let b0 = _mm256_loadu_ps(bp.add(kk * nc + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(a0[kk]), b0));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(a1[kk]), b0));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(a2[kk]), b0));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(a3[kk]), b0));
            }
            _mm256_storeu_ps(p0.add(j), c0);
            _mm256_storeu_ps(p1.add(j), c1);
            _mm256_storeu_ps(p2.add(j), c2);
            _mm256_storeu_ps(p3.add(j), c3);
            j += 8;
        }
        super::quad_panel_tail(j, a0, a1, a2, a3, panel, nc, r0, r1, r2, r3);
    }

    /// [`quad_panel_avx2`] at 16 lanes: tiles of 32 columns, eight
    /// accumulators.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f`; same slice preconditions as
    /// [`quad_panel_avx2`].
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn quad_panel_avx512(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        nc: usize,
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
    ) {
        let kc = a0.len();
        let bp = panel.as_ptr();
        let (p0, p1) = (r0.as_mut_ptr(), r1.as_mut_ptr());
        let (p2, p3) = (r2.as_mut_ptr(), r3.as_mut_ptr());
        let mut j = 0;
        while j + 32 <= nc {
            let mut c00 = _mm512_loadu_ps(p0.add(j));
            let mut c01 = _mm512_loadu_ps(p0.add(j + 16));
            let mut c10 = _mm512_loadu_ps(p1.add(j));
            let mut c11 = _mm512_loadu_ps(p1.add(j + 16));
            let mut c20 = _mm512_loadu_ps(p2.add(j));
            let mut c21 = _mm512_loadu_ps(p2.add(j + 16));
            let mut c30 = _mm512_loadu_ps(p3.add(j));
            let mut c31 = _mm512_loadu_ps(p3.add(j + 16));
            for kk in 0..kc {
                let b0 = _mm512_loadu_ps(bp.add(kk * nc + j));
                let b1 = _mm512_loadu_ps(bp.add(kk * nc + j + 16));
                let va0 = _mm512_set1_ps(a0[kk]);
                c00 = _mm512_add_ps(c00, _mm512_mul_ps(va0, b0));
                c01 = _mm512_add_ps(c01, _mm512_mul_ps(va0, b1));
                let va1 = _mm512_set1_ps(a1[kk]);
                c10 = _mm512_add_ps(c10, _mm512_mul_ps(va1, b0));
                c11 = _mm512_add_ps(c11, _mm512_mul_ps(va1, b1));
                let va2 = _mm512_set1_ps(a2[kk]);
                c20 = _mm512_add_ps(c20, _mm512_mul_ps(va2, b0));
                c21 = _mm512_add_ps(c21, _mm512_mul_ps(va2, b1));
                let va3 = _mm512_set1_ps(a3[kk]);
                c30 = _mm512_add_ps(c30, _mm512_mul_ps(va3, b0));
                c31 = _mm512_add_ps(c31, _mm512_mul_ps(va3, b1));
            }
            _mm512_storeu_ps(p0.add(j), c00);
            _mm512_storeu_ps(p0.add(j + 16), c01);
            _mm512_storeu_ps(p1.add(j), c10);
            _mm512_storeu_ps(p1.add(j + 16), c11);
            _mm512_storeu_ps(p2.add(j), c20);
            _mm512_storeu_ps(p2.add(j + 16), c21);
            _mm512_storeu_ps(p3.add(j), c30);
            _mm512_storeu_ps(p3.add(j + 16), c31);
            j += 32;
        }
        while j + 16 <= nc {
            let mut c0 = _mm512_loadu_ps(p0.add(j));
            let mut c1 = _mm512_loadu_ps(p1.add(j));
            let mut c2 = _mm512_loadu_ps(p2.add(j));
            let mut c3 = _mm512_loadu_ps(p3.add(j));
            for kk in 0..kc {
                let b0 = _mm512_loadu_ps(bp.add(kk * nc + j));
                c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(a0[kk]), b0));
                c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(a1[kk]), b0));
                c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(a2[kk]), b0));
                c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(a3[kk]), b0));
            }
            _mm512_storeu_ps(p0.add(j), c0);
            _mm512_storeu_ps(p1.add(j), c1);
            _mm512_storeu_ps(p2.add(j), c2);
            _mm512_storeu_ps(p3.add(j), c3);
            j += 16;
        }
        super::quad_panel_tail(j, a0, a1, a2, a3, panel, nc, r0, r1, r2, r3);
    }

    /// `out[j] += alpha * x[j]`, 8 lanes at a time.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2`; slice lengths must match.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(alpha: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let va = _mm256_set1_ps(alpha);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= n {
            let s = _mm256_add_ps(
                _mm256_loadu_ps(op.add(j)),
                _mm256_mul_ps(va, _mm256_loadu_ps(xp.add(j))),
            );
            _mm256_storeu_ps(op.add(j), s);
            j += 8;
        }
        while j < n {
            out[j] += alpha * x[j];
            j += 1;
        }
    }

    /// [`axpy_avx2`] at 16 lanes.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f`; slice lengths must match.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy_avx512(alpha: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let va = _mm512_set1_ps(alpha);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let s = _mm512_add_ps(
                _mm512_loadu_ps(op.add(j)),
                _mm512_mul_ps(va, _mm512_loadu_ps(xp.add(j))),
            );
            _mm512_storeu_ps(op.add(j), s);
            j += 16;
        }
        while j < n {
            out[j] += alpha * x[j];
            j += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod lanes_neon {
    use std::arch::aarch64::*;

    /// Four-row register-tiled panel kernel, NEON: tiles of 8 columns hold
    /// eight accumulators, C stays in registers across the `kk` loop. Same
    /// per-element rounding sequence as the scalar reference.
    ///
    /// # Safety
    ///
    /// The `a?` slices share one length `kc`, `panel` holds at least
    /// `kc·nc` elements and every `r?` at least `nc` (NEON itself is part
    /// of the aarch64 baseline).
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn quad_panel_neon(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        nc: usize,
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
    ) {
        let kc = a0.len();
        let bp = panel.as_ptr();
        let (p0, p1) = (r0.as_mut_ptr(), r1.as_mut_ptr());
        let (p2, p3) = (r2.as_mut_ptr(), r3.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= nc {
            let mut c00 = vld1q_f32(p0.add(j));
            let mut c01 = vld1q_f32(p0.add(j + 4));
            let mut c10 = vld1q_f32(p1.add(j));
            let mut c11 = vld1q_f32(p1.add(j + 4));
            let mut c20 = vld1q_f32(p2.add(j));
            let mut c21 = vld1q_f32(p2.add(j + 4));
            let mut c30 = vld1q_f32(p3.add(j));
            let mut c31 = vld1q_f32(p3.add(j + 4));
            for kk in 0..kc {
                let b0 = vld1q_f32(bp.add(kk * nc + j));
                let b1 = vld1q_f32(bp.add(kk * nc + j + 4));
                let va0 = vdupq_n_f32(a0[kk]);
                c00 = vaddq_f32(c00, vmulq_f32(va0, b0));
                c01 = vaddq_f32(c01, vmulq_f32(va0, b1));
                let va1 = vdupq_n_f32(a1[kk]);
                c10 = vaddq_f32(c10, vmulq_f32(va1, b0));
                c11 = vaddq_f32(c11, vmulq_f32(va1, b1));
                let va2 = vdupq_n_f32(a2[kk]);
                c20 = vaddq_f32(c20, vmulq_f32(va2, b0));
                c21 = vaddq_f32(c21, vmulq_f32(va2, b1));
                let va3 = vdupq_n_f32(a3[kk]);
                c30 = vaddq_f32(c30, vmulq_f32(va3, b0));
                c31 = vaddq_f32(c31, vmulq_f32(va3, b1));
            }
            vst1q_f32(p0.add(j), c00);
            vst1q_f32(p0.add(j + 4), c01);
            vst1q_f32(p1.add(j), c10);
            vst1q_f32(p1.add(j + 4), c11);
            vst1q_f32(p2.add(j), c20);
            vst1q_f32(p2.add(j + 4), c21);
            vst1q_f32(p3.add(j), c30);
            vst1q_f32(p3.add(j + 4), c31);
            j += 8;
        }
        while j + 4 <= nc {
            let mut c0 = vld1q_f32(p0.add(j));
            let mut c1 = vld1q_f32(p1.add(j));
            let mut c2 = vld1q_f32(p2.add(j));
            let mut c3 = vld1q_f32(p3.add(j));
            for kk in 0..kc {
                let b0 = vld1q_f32(bp.add(kk * nc + j));
                c0 = vaddq_f32(c0, vmulq_f32(vdupq_n_f32(a0[kk]), b0));
                c1 = vaddq_f32(c1, vmulq_f32(vdupq_n_f32(a1[kk]), b0));
                c2 = vaddq_f32(c2, vmulq_f32(vdupq_n_f32(a2[kk]), b0));
                c3 = vaddq_f32(c3, vmulq_f32(vdupq_n_f32(a3[kk]), b0));
            }
            vst1q_f32(p0.add(j), c0);
            vst1q_f32(p1.add(j), c1);
            vst1q_f32(p2.add(j), c2);
            vst1q_f32(p3.add(j), c3);
            j += 4;
        }
        super::quad_panel_tail(j, a0, a1, a2, a3, panel, nc, r0, r1, r2, r3);
    }

    /// `out[j] += alpha * x[j]`, 4 lanes at a time.
    ///
    /// # Safety
    ///
    /// Slice lengths must match.
    #[target_feature(enable = "neon")]
    pub unsafe fn axpy_neon(alpha: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let va = vdupq_n_f32(alpha);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            vst1q_f32(
                op.add(j),
                vaddq_f32(vld1q_f32(op.add(j)), vmulq_f32(va, vld1q_f32(xp.add(j)))),
            );
            j += 4;
        }
        while j < n {
            out[j] += alpha * x[j];
            j += 1;
        }
    }
}

/// Scalar per-column tail of the quad-row panel kernels: columns `j0..nc`,
/// each accumulated over `kk` in increasing order — the same per-element
/// sequence as the vector tiles and the scalar reference.
#[allow(clippy::too_many_arguments, dead_code)]
fn quad_panel_tail(
    j0: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
    nc: usize,
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
) {
    for j in j0..nc {
        let (mut s0, mut s1) = (r0[j], r1[j]);
        let (mut s2, mut s3) = (r2[j], r3[j]);
        for kk in 0..a0.len() {
            let bv = panel[kk * nc + j];
            s0 += a0[kk] * bv;
            s1 += a1[kk] * bv;
            s2 += a2[kk] * bv;
            s3 += a3[kk] * bv;
        }
        r0[j] = s0;
        r1[j] = s1;
        r2[j] = s2;
        r3[j] = s3;
    }
}

/// The scalar reference for the quad-row panel kernel: `kk` outer,
/// per element one rounded multiply then one rounded add, `kk` ascending.
/// Every SIMD tier reproduces this per-element sequence exactly; only the
/// loop nesting and where C lives (register vs memory) differ, neither of
/// which affects f32 rounding.
#[allow(clippy::too_many_arguments)]
fn quad_panel_scalar(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
    nc: usize,
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
) {
    for kk in 0..a0.len() {
        let brow = &panel[kk * nc..kk * nc + nc];
        let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
        for j in 0..nc {
            let bv = brow[j];
            r0[j] += v0 * bv;
            r1[j] += v1 * bv;
            r2[j] += v2 * bv;
            r3[j] += v3 * bv;
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn quad_panel(
    simd: Simd,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
    nc: usize,
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
) {
    let kc = a0.len();
    debug_assert!(a1.len() == kc && a2.len() == kc && a3.len() == kc);
    debug_assert!(panel.len() >= kc * nc);
    debug_assert!(r0.len() >= nc && r1.len() >= nc && r2.len() >= nc && r3.len() >= nc);
    match simd {
        Simd::Scalar => quad_panel_scalar(a0, a1, a2, a3, panel, nc, r0, r1, r2, r3),
        // Safety: each tier is selected only after runtime feature
        // detection, and the slice-length preconditions are asserted above.
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => unsafe {
            lanes_x86::quad_panel_avx2(a0, a1, a2, a3, panel, nc, r0, r1, r2, r3)
        },
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 => unsafe {
            lanes_x86::quad_panel_avx512(a0, a1, a2, a3, panel, nc, r0, r1, r2, r3)
        },
        #[cfg(target_arch = "aarch64")]
        Simd::Neon => unsafe {
            lanes_neon::quad_panel_neon(a0, a1, a2, a3, panel, nc, r0, r1, r2, r3)
        },
    }
}

#[inline(always)]
fn axpy_dispatch(simd: Simd, alpha: f32, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match simd {
        Simd::Scalar => axpy_scalar_impl(alpha, x, out),
        // Safety: tier selected after runtime detection, lengths equal.
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => unsafe { lanes_x86::axpy_avx2(alpha, x, out) },
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 => unsafe { lanes_x86::axpy_avx512(alpha, x, out) },
        #[cfg(target_arch = "aarch64")]
        Simd::Neon => unsafe { lanes_neon::axpy_neon(alpha, x, out) },
    }
}

/// The scalar `axpy` loop, 4-way unrolled. Element-wise, so neither the
/// unroll nor any lane width can change a result bit.
fn axpy_scalar_impl(alpha: f32, x: &[f32], out: &mut [f32]) {
    let chunks = x.len() / 4;
    let (x4, xt) = x.split_at(chunks * 4);
    let (o4, ot) = out.split_at_mut(chunks * 4);
    for (xc, oc) in x4.chunks_exact(4).zip(o4.chunks_exact_mut(4)) {
        oc[0] += alpha * xc[0];
        oc[1] += alpha * xc[1];
        oc[2] += alpha * xc[2];
        oc[3] += alpha * xc[3];
    }
    for (o, &v) in ot.iter_mut().zip(xt) {
        *o += alpha * v;
    }
}

/// `out[..n] += alpha * x[..n]` on the runtime-selected SIMD tier.
///
/// Element-wise (each element gets exactly one rounded multiply and one
/// rounded add), so every tier is bit-identical to [`axpy_scalar`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy length mismatch");
    axpy_dispatch(active_simd(), alpha, x, out);
}

/// The scalar reference for [`axpy`] — the path `PHISHINGHOOK_FORCE_SCALAR`
/// pins, kept public so parity tests and benches can call it explicitly.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy_scalar(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy length mismatch");
    axpy_scalar_impl(alpha, x, out);
}

/// Dot product with four independent accumulators (final reduction
/// `(s0 + s1) + (s2 + s3)`), unrolled 4-way.
///
/// This is deliberately **not** widened beyond four accumulators: the
/// accumulator count is part of the result's bit pattern, and every caller
/// (`vecops::dot` delegates here — there is exactly one dot kernel) relies
/// on it staying stable across hardware tiers.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let chunks = a.len() / 4;
    let (a4, at) = a.split_at(chunks * 4);
    let (b4, bt) = b.split_at(chunks * 4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        s0 += ac[0] * bc[0];
        s1 += ac[1] * bc[1];
        s2 += ac[2] * bc[2];
        s3 += ac[3] * bc[3];
    }
    let mut tail = 0.0f32;
    for (&x, &y) in at.iter().zip(bt) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

// ---------------------------------------------------------------------------
// Blocked GEMM
// ---------------------------------------------------------------------------

/// The register-blocked inner kernel: multiplies the `k0..k0+kc` columns
/// of `m` rows of `A` (row stride `lda`) by a contiguous `kc × nc` B-panel
/// into the `j0..j0+nc` columns of `m` output rows (row stride `ldo`),
/// accumulating in place.
///
/// Output rows are processed **four at a time**, so each loaded B element
/// feeds four accumulating rows — the batch dimension is what pays for the
/// register blocking, which is why one batched `(B, d)` GEMM beats `B`
/// separate GEMV calls on identical FLOPs. The `j` loop runs on the
/// selected SIMD tier with lanes mapped to output columns. Per output
/// element the `kk` order is strictly increasing, and the tail-row path
/// accumulates in the same order, so every row's bits are independent of
/// how many rows ride alongside it and of the lane width.
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    simd: Simd,
    m: usize,
    kc: usize,
    nc: usize,
    a: &[f32],
    lda: usize,
    k0: usize,
    panel: &[f32],
    out: &mut [f32],
    ldo: usize,
    j0: usize,
) {
    let mut i = 0;
    let mut rest = out;
    while i + 4 <= m {
        let (block, tail) = rest.split_at_mut(4 * ldo);
        rest = tail;
        let (r0, b1) = block.split_at_mut(ldo);
        let (r1, b2) = b1.split_at_mut(ldo);
        let (r2, r3) = b2.split_at_mut(ldo);
        let r0 = &mut r0[j0..j0 + nc];
        let r1 = &mut r1[j0..j0 + nc];
        let r2 = &mut r2[j0..j0 + nc];
        let r3 = &mut r3[j0..j0 + nc];
        let a0 = &a[i * lda + k0..i * lda + k0 + kc];
        let a1 = &a[(i + 1) * lda + k0..(i + 1) * lda + k0 + kc];
        let a2 = &a[(i + 2) * lda + k0..(i + 2) * lda + k0 + kc];
        let a3 = &a[(i + 3) * lda + k0..(i + 3) * lda + k0 + kc];
        quad_panel(simd, a0, a1, a2, a3, &panel[..kc * nc], nc, r0, r1, r2, r3);
        i += 4;
    }
    for (ti, row) in rest.chunks_exact_mut(ldo).enumerate() {
        let ri = i + ti;
        let out_row = &mut row[j0..j0 + nc];
        for kk in 0..kc {
            axpy_dispatch(
                simd,
                a[ri * lda + k0 + kk],
                &panel[kk * nc..kk * nc + nc],
                out_row,
            );
        }
    }
}

/// One worker's share of a product: `out = A · B` for `m` rows of `A`,
/// with `out` already zeroed. Small products feed B straight into the
/// register-blocked kernel; larger ones block over `k` and `n` with the
/// current B-panel packed contiguously into a per-thread arena, so the
/// inner loops stream cache-resident memory regardless of `n`'s stride.
fn matmul_rows(simd: Simd, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    if k * n <= SMALL_B {
        // B is already one contiguous k×n panel.
        block_kernel(simd, m, k, n, a, k, 0, b, out, n, 0);
        return;
    }
    PACK_BUF.with(|cell| {
        let mut pack = cell.borrow_mut();
        let mut j0 = 0;
        while j0 < n {
            let nc = NC.min(n - j0);
            let mut k0 = 0;
            while k0 < k {
                let kc = KC.min(k - k0);
                // Pack B[k0..k0+kc, j0..j0+nc] row-contiguously.
                pack.clear();
                pack.reserve(kc * nc);
                for kk in 0..kc {
                    pack.extend_from_slice(&b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + nc]);
                }
                block_kernel(simd, m, kc, nc, a, k, k0, &pack, out, n, j0);
                k0 += kc;
            }
            j0 += nc;
        }
    });
}

/// Worker count for row-sharding an `(m, k, n)` product under a cap
/// (`0` = the shared pool policy, including `PHISHINGHOOK_THREADS`).
fn gemm_workers(m: usize, k: usize, n: usize, max_threads: usize) -> usize {
    let macs = m.saturating_mul(k).saturating_mul(n);
    if macs < MT_MIN_MACS {
        return 1;
    }
    let cap = if max_threads == 0 {
        par::pool_size(m)
    } else {
        max_threads.min(m).max(1)
    };
    cap.min(m / MT_MIN_ROWS).max(1)
}

/// `out = A · B` for row-major `A (m×k)`, `B (k×n)`, `out (m×n)`, on the
/// runtime-selected SIMD tier, row-sharded across the worker pool when the
/// product is large enough to amortize the spawns.
///
/// `out` is fully overwritten (no read of its prior contents). The dense
/// path has no per-element zero test: a uniformly-predictable inner loop
/// beats skipping the occasional zero, and adding a `±0.0` product never
/// changes a finite accumulation bit.
///
/// **Accumulation-order contract:** panels advance n-major then k-major
/// and the kernel walks `kk` upward, so for every output element the
/// products arrive in strictly increasing `k` order regardless of shape,
/// SIMD tier or thread count — `C[i][j]` is bit-identical whether row `i`
/// is multiplied alone or inside a batch.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` shape.
pub fn matmul_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_into_dispatch(true, 0, m, k, n, a, b, out);
}

/// The scalar-reference, single-threaded twin of [`matmul_into`] — the
/// path `PHISHINGHOOK_FORCE_SCALAR=1` pins process-wide, kept public so
/// parity tests and benches can call it explicitly.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` shape.
pub fn matmul_into_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_into_dispatch(false, 1, m, k, n, a, b, out);
}

/// Test/bench seam under [`matmul_into`] with the kernel tier and thread
/// cap explicit: `simd == false` forces the scalar reference kernel
/// (`true` uses the best runtime-detected tier, which may still be
/// scalar); `max_threads` caps the row-sharded fan-out (`0` = the shared
/// pool policy, `1` = single-threaded). Every combination produces
/// bit-identical output — the proptests assert it.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` shape.
#[allow(clippy::too_many_arguments)]
pub fn matmul_into_dispatch(
    simd: bool,
    max_threads: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul lhs shape mismatch");
    assert_eq!(b.len(), k * n, "matmul rhs shape mismatch");
    assert_eq!(out.len(), m * n, "matmul out shape mismatch");
    out.fill(0.0);
    // Degenerate shapes: nothing to accumulate (and the kernel's row
    // chunking cannot take a zero stride).
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let simd = if simd { active_simd() } else { Simd::Scalar };
    let workers = gemm_workers(m, k, n, max_threads);
    if workers <= 1 {
        matmul_rows(simd, m, k, n, a, b, out);
        return;
    }
    // Contiguous row shards: worker `w` owns output rows
    // `w·rows_per .. min((w+1)·rows_per, m)` and the matching rows of A.
    // Shards share only the read-only inputs, and each row's computation
    // is exactly the single-threaded one, so the result is bit-identical
    // at every worker count.
    let rows_per = m.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let rows = out_chunk.len() / n;
            let a_chunk = &a[w * rows_per * k..w * rows_per * k + rows * k];
            scope.spawn(move || matmul_rows(simd, rows, k, n, a_chunk, b, out_chunk));
        }
    });
}

/// `out = Aᵀ` for row-major `A (rows×cols)`, `out (cols×rows)`, written in
/// `TC×TC` tiles so both the read and the write stay within a few cache
/// lines per step. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if a slice length disagrees with the shape.
pub fn transpose_into(rows: usize, cols: usize, a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), rows * cols, "transpose input shape mismatch");
    assert_eq!(out.len(), rows * cols, "transpose output shape mismatch");
    let mut r0 = 0;
    while r0 < rows {
        let rt = TC.min(rows - r0);
        let mut c0 = 0;
        while c0 < cols {
            let ct = TC.min(cols - c0);
            for r in r0..r0 + rt {
                for c in c0..c0 + ct {
                    out[c * rows + r] = a[r * cols + c];
                }
            }
            c0 += ct;
        }
        r0 += rt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..=1.0)).collect()
    }

    fn reference_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn blocked_matmul_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        // Shapes straddling the packing threshold and block boundaries.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (16, 64, 1),
            (2, 300, 200),
            (5, 513, 131),
        ] {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut out = vec![f32::NAN; m * n];
            matmul_into(m, k, n, &a, &b, &mut out);
            let want = reference_matmul(m, k, n, &a, &b);
            assert_eq!(bits(&out), bits(&want), "({m},{k},{n})");
        }
    }

    #[test]
    fn row_in_batch_matches_row_alone_bitwise() {
        // The contract the batched NN paths rely on: a sample's output row
        // is invariant to the batch it rides in.
        let mut rng = StdRng::seed_from_u64(11);
        let (b_rows, k, n) = (9usize, 310usize, 150usize);
        let a = random_vec(b_rows * k, &mut rng);
        let w = random_vec(k * n, &mut rng);
        let mut batched = vec![0.0f32; b_rows * n];
        matmul_into(b_rows, k, n, &a, &w, &mut batched);
        for i in 0..b_rows {
            let mut solo = vec![0.0f32; n];
            matmul_into(1, k, n, &a[i * k..(i + 1) * k], &w, &mut solo);
            assert_eq!(bits(&solo), bits(&batched[i * n..(i + 1) * n]), "row {i}");
        }
    }

    #[test]
    fn simd_tiers_match_scalar_on_fixed_shapes() {
        // Deterministic complement to the proptests below: both the
        // SMALL_B direct path and the packed path, with every lane-tail
        // residue class for the widest (16-lane) tier.
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, k, n) in &[
            (1usize, 7usize, 3usize),
            (4, 16, 16),
            (5, 33, 17),   // quad tail row + ragged lanes
            (6, 129, 100), // SMALL_B boundary region
            (9, 300, 141), // packed path, ragged panel edges
        ] {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut scalar = vec![f32::NAN; m * n];
            matmul_into_scalar(m, k, n, &a, &b, &mut scalar);
            let mut simd = vec![f32::NAN; m * n];
            matmul_into_dispatch(true, 1, m, k, n, &a, &b, &mut simd);
            assert_eq!(bits(&scalar), bits(&simd), "({m},{k},{n})");
        }
    }

    #[test]
    fn threaded_matmul_matches_single_thread_at_every_pool_size() {
        // Big enough to clear MT_MIN_MACS and MT_MIN_ROWS, so the shards
        // genuinely engage; every worker count must be bit-identical.
        let (m, k, n) = (320usize, 160usize, 96usize);
        assert!(m * k * n >= MT_MIN_MACS && m / MT_MIN_ROWS >= 4);
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let mut single = vec![0.0f32; m * n];
        matmul_into_dispatch(true, 1, m, k, n, &a, &b, &mut single);
        for workers in [2usize, 3, 4, 5, 8] {
            let mut multi = vec![f32::NAN; m * n];
            matmul_into_dispatch(true, workers, m, k, n, &a, &b, &mut multi);
            assert_eq!(bits(&single), bits(&multi), "workers {workers}");
            // The scalar kernel must also be thread-count-invariant.
            let mut multi_scalar = vec![f32::NAN; m * n];
            matmul_into_dispatch(false, workers, m, k, n, &a, &b, &mut multi_scalar);
            let mut single_scalar = vec![0.0f32; m * n];
            matmul_into_scalar(m, k, n, &a, &b, &mut single_scalar);
            assert_eq!(
                bits(&single_scalar),
                bits(&multi_scalar),
                "scalar workers {workers}"
            );
        }
    }

    #[test]
    fn transpose_tiles_cover_ragged_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(r, c) in &[(1usize, 1usize), (33, 65), (32, 32), (100, 7)] {
            let a = random_vec(r * c, &mut rng);
            let mut out = vec![0.0f32; r * c];
            transpose_into(r, c, &a, &mut out);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(out[j * r + i], a[i * c + j]);
                }
            }
        }
    }

    #[test]
    fn unrolled_dot_and_axpy_handle_tails() {
        for len in 0..9usize {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| 2.0 * i as f32 - 3.0).collect();
            let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b), want, "len {len}");
            let mut out = vec![1.0f32; len];
            axpy(0.5, &a, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, 1.0 + 0.5 * a[i]);
            }
        }
    }

    #[test]
    fn simd_name_is_reported() {
        let name = active_simd_name();
        assert!(["scalar", "avx2", "avx512f", "neon"].contains(&name));
    }

    #[test]
    #[should_panic(expected = "matmul out shape mismatch")]
    fn matmul_into_checks_out_shape() {
        matmul_into(2, 2, 2, &[0.0; 4], &[0.0; 4], &mut [0.0; 3]);
    }

    #[test]
    fn degenerate_shapes_are_empty_or_zero() {
        // Zero-column, zero-row and zero-inner products must not panic.
        matmul_into(2, 3, 0, &[1.0; 6], &[], &mut []);
        matmul_into(0, 3, 2, &[], &[1.0; 6], &mut []);
        let mut out = [f32::NAN; 4];
        matmul_into(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, [0.0; 4]);
    }

    proptest! {
        /// SIMD and scalar GEMM are bit-identical over random shapes,
        /// covering non-multiple-of-lane tails, quad-row tails and both
        /// sides of the SMALL_B packing threshold (k·n spans ≈16..60k).
        #[test]
        fn simd_matmul_matches_scalar_bitwise(
            m in 1usize..12,
            k in 1usize..300,
            n in 1usize..200,
            seed in 0u64..1_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut scalar = vec![f32::NAN; m * n];
            matmul_into_scalar(m, k, n, &a, &b, &mut scalar);
            let mut simd = vec![f32::NAN; m * n];
            matmul_into_dispatch(true, 1, m, k, n, &a, &b, &mut simd);
            prop_assert_eq!(bits(&scalar), bits(&simd));
        }

        /// SIMD and scalar axpy are bit-identical, tails included.
        #[test]
        fn simd_axpy_matches_scalar_bitwise(
            alpha in -2.0f32..2.0,
            xs in proptest::collection::vec(-1e3f32..1e3, 0..70),
            seed in 0u64..1_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = random_vec(xs.len(), &mut rng);
            let mut scalar = base.clone();
            axpy_scalar(alpha, &xs, &mut scalar);
            let mut simd = base;
            axpy(alpha, &xs, &mut simd);
            prop_assert_eq!(bits(&scalar), bits(&simd));
        }
    }
}
