//! Linear models: logistic regression and a linear soft-margin SVM.
//!
//! Both are trained by full-batch Adam on the raw (unnormalized) histogram
//! features, as the paper feeds them; Adam's per-coordinate step sizes make
//! the optimization robust to the wildly different count scales without
//! touching the input representation.

use crate::classifier::{validate_fit_inputs, Classifier};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_linalg::Matrix;

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// Serializes the fitted `Option<LinearModel>` both linear classifiers own.
fn export_linear(model: &Option<LinearModel>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match model {
        None => w.put_u8(0),
        Some(m) => {
            w.put_u8(1);
            w.put_f32_slice(&m.weights);
            w.put_f32(m.bias);
        }
    }
    w.into_bytes()
}

/// Inverse of [`export_linear`].
fn import_linear(bytes: &[u8]) -> Result<Option<LinearModel>, ArtifactError> {
    let mut r = ByteReader::new(bytes);
    let model = match r.take_u8()? {
        0 => None,
        1 => Some(LinearModel {
            weights: r.take_f32_slice()?,
            bias: r.take_f32()?,
        }),
        tag => {
            return Err(ArtifactError::Corrupt(format!(
                "linear model tag {tag} (expected 0 or 1)"
            )))
        }
    };
    r.expect_exhausted("linear model state")?;
    Ok(model)
}

/// Shared Adam-based trainer for linear decision functions.
#[derive(Debug, Clone)]
struct LinearModel {
    weights: Vec<f32>,
    bias: f32,
}

impl LinearModel {
    fn score(&self, row: &[f32]) -> f32 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f32>()
    }

    /// Runs Adam on a gradient callback: `grad(score, label) -> dLoss/dScore`.
    fn train(
        x: &Matrix,
        y: &[u8],
        epochs: usize,
        lr: f32,
        l2: f32,
        grad: impl Fn(f32, f32) -> f32,
    ) -> LinearModel {
        let (n, d) = x.shape();
        let mut model = LinearModel {
            weights: vec![0.0; d],
            bias: 0.0,
        };
        let (mut m, mut v) = (vec![0.0f32; d + 1], vec![0.0f32; d + 1]);
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);

        for t in 1..=epochs {
            let mut gw = vec![0.0f32; d];
            let mut gb = 0.0f32;
            #[allow(clippy::needless_range_loop)] // r indexes x rows and y
            for r in 0..n {
                let row = x.row(r);
                let g = grad(model.score(row), y[r] as f32);
                if g != 0.0 {
                    for (gi, xi) in gw.iter_mut().zip(row) {
                        *gi += g * xi;
                    }
                    gb += g;
                }
            }
            let scale = 1.0 / n as f32;
            for (gi, wi) in gw.iter_mut().zip(&model.weights) {
                *gi = *gi * scale + l2 * wi;
            }
            gb *= scale;

            let bc1 = 1.0 - b1.powi(t as i32);
            let bc2 = 1.0 - b2.powi(t as i32);
            for i in 0..d {
                m[i] = b1 * m[i] + (1.0 - b1) * gw[i];
                v[i] = b2 * v[i] + (1.0 - b2) * gw[i] * gw[i];
                model.weights[i] -= lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
            }
            m[d] = b1 * m[d] + (1.0 - b1) * gb;
            v[d] = b2 * v[d] + (1.0 - b2) * gb * gb;
            model.bias -= lr * (m[d] / bc1) / ((v[d] / bc2).sqrt() + eps);
        }
        model
    }
}

/// L2-regularized logistic regression.
///
/// # Examples
///
/// ```
/// use phishinghook_linalg::Matrix;
/// use phishinghook_ml::{Classifier, LogisticRegression};
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![9.0], vec![10.0]]);
/// let mut lr = LogisticRegression::default();
/// lr.fit(&x, &[0, 0, 1, 1]);
/// assert_eq!(lr.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Training epochs (full-batch Adam steps).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    model: Option<LinearModel>,
}

impl LogisticRegression {
    /// Default hyper-parameters with a custom epoch budget.
    pub fn with_epochs(epochs: usize) -> Self {
        LogisticRegression {
            epochs,
            ..LogisticRegression::default()
        }
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            epochs: 800,
            learning_rate: 0.3,
            l2: 1e-3,
            model: None,
        }
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        self.model = Some(LinearModel::train(
            x,
            y,
            self.epochs,
            self.learning_rate,
            self.l2,
            |score, label| sigmoid(score) - label,
        ));
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let model = self.model.as_ref().expect("predict before fit");
        (0..x.rows())
            .map(|r| sigmoid(model.score(x.row(r))))
            .collect()
    }

    fn export_state(&self) -> Vec<u8> {
        export_linear(&self.model)
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        self.model = import_linear(bytes)?;
        Ok(())
    }
}

/// Linear soft-margin SVM trained on the hinge loss. `predict_proba` maps
/// the margin through a fixed sigmoid so the common interface holds (the
/// ordering, hence `predict`, is exactly the SVM decision function).
///
/// # Examples
///
/// ```
/// use phishinghook_linalg::Matrix;
/// use phishinghook_ml::{Classifier, LinearSvm};
///
/// let x = Matrix::from_rows(&[vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]]);
/// let mut svm = LinearSvm::default();
/// svm.fit(&x, &[0, 0, 1, 1]);
/// assert_eq!(svm.predict(&x), vec![0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Training epochs (full-batch Adam steps).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength (inverse margin softness).
    pub l2: f32,
    model: Option<LinearModel>,
}

impl LinearSvm {
    /// Default hyper-parameters with a custom epoch budget.
    pub fn with_epochs(epochs: usize) -> Self {
        LinearSvm {
            epochs,
            ..LinearSvm::default()
        }
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm {
            epochs: 800,
            learning_rate: 0.3,
            l2: 5e-4,
            model: None,
        }
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        self.model = Some(LinearModel::train(
            x,
            y,
            self.epochs,
            self.learning_rate,
            self.l2,
            |score, label| {
                let sign = 2.0 * label - 1.0; // {0,1} -> {-1,+1}
                if sign * score < 1.0 {
                    -sign
                } else {
                    0.0
                }
            },
        ));
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let model = self.model.as_ref().expect("predict before fit");
        (0..x.rows())
            .map(|r| sigmoid(model.score(x.row(r))))
            .collect()
    }

    fn export_state(&self) -> Vec<u8> {
        export_linear(&self.model)
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        self.model = import_linear(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_blobs(n: usize, sep: f32, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = (i % 2) as u8;
            let center = if label == 1 { sep } else { -sep };
            rows.push(vec![
                center + rng.gen_range(-1.0f32..1.0),
                center + rng.gen_range(-1.0f32..1.0),
            ]);
            y.push(label);
        }
        (Matrix::from_rows(&rows), y)
    }

    fn accuracy(pred: &[u8], y: &[u8]) -> f32 {
        pred.iter().zip(y).filter(|(a, b)| a == b).count() as f32 / y.len() as f32
    }

    #[test]
    fn logistic_separates_blobs() {
        let (x, y) = gaussian_blobs(400, 2.0, 1);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        assert!(accuracy(&lr.predict(&x), &y) > 0.97);
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = gaussian_blobs(400, 2.0, 2);
        let mut svm = LinearSvm::default();
        svm.fit(&x, &y);
        assert!(accuracy(&svm.predict(&x), &y) > 0.97);
    }

    #[test]
    fn raw_count_scales_are_handled() {
        // Feature scales differing by 1000x, as raw opcode counts do.
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let label = (i % 2) as u8;
            let big = if label == 1 { 900.0 } else { 600.0 };
            rows.push(vec![
                big + rng.gen_range(-100.0f32..100.0),
                rng.gen_range(0.0..2.0),
            ]);
            y.push(label);
        }
        let x = Matrix::from_rows(&rows);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        assert!(accuracy(&lr.predict(&x), &y) > 0.9);
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = gaussian_blobs(100, 1.0, 5);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        assert!(lr.predict_proba(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn unfitted_predict_panics() {
        let x = Matrix::zeros(1, 1);
        LogisticRegression::default().predict_proba(&x);
    }
}
