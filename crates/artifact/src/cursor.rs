//! Primitive byte cursors: explicit little-endian writes, checked reads.
//!
//! [`ByteWriter`] appends to an owned buffer and cannot fail;
//! [`ByteReader`] walks a borrowed slice and returns
//! [`ArtifactError::Corrupt`] the moment a read runs past the end, which
//! is what turns a truncated artifact into a typed load error instead of a
//! panic. Variable-length fields (strings, slices) are length-prefixed —
//! `u32` for strings, `u64` for element counts — so payloads are
//! self-delimiting without any escape machinery.

use crate::error::ArtifactError;

/// Growing little-endian byte sink.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrowed view of the buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the on-disk form is width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` by bit pattern (exact round trip, NaN included).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with no prefix (caller knows the length).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u64`-count-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64`-count-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a `u64`-count-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a `u64`-count-prefixed `f32` slice (bit-exact).
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f32(v);
        }
    }
}

/// Checked little-endian cursor over a borrowed payload.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless the payload was consumed exactly — the guard each
    /// fixed-schema decoder runs last, so trailing garbage is rejected.
    pub fn expect_exhausted(&self, what: &str) -> Result<(), ArtifactError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(ArtifactError::Corrupt(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Corrupt(format!(
                "unexpected end of payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and checks it fits a `usize` (32-bit hosts).
    pub fn take_usize(&mut self) -> Result<usize, ArtifactError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| ArtifactError::Corrupt(format!("count {v} overflows usize")))
    }

    /// Reads an `f32` by bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an `f64` by bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, ArtifactError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Corrupt("string field is not UTF-8".into()))
    }

    /// Reads a `u64`-count-prefixed byte slice.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], ArtifactError> {
        let len = self.take_count(1)?;
        self.take(len)
    }

    /// Reads a `u64`-count-prefixed `u32` slice.
    pub fn take_u32_slice(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let len = self.take_count(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_u32()?);
        }
        Ok(out)
    }

    /// Reads a `u64`-count-prefixed `u64` slice.
    pub fn take_u64_slice(&mut self) -> Result<Vec<u64>, ArtifactError> {
        let len = self.take_count(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_u64()?);
        }
        Ok(out)
    }

    /// Reads a `u64`-count-prefixed `f32` slice (bit-exact).
    pub fn take_f32_slice(&mut self) -> Result<Vec<f32>, ArtifactError> {
        let len = self.take_count(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_f32()?);
        }
        Ok(out)
    }

    /// Reads a `u64` element count and bounds it by the bytes actually
    /// left (each element occupies at least `min_elem_bytes` on the wire),
    /// so a corrupted or crafted count can never drive an absurd
    /// pre-allocation. The slice readers use it internally; domain
    /// decoders with their own count-prefixed lists should reuse it
    /// rather than re-deriving the bound.
    pub fn take_count(&mut self, min_elem_bytes: usize) -> Result<usize, ArtifactError> {
        let len = self.take_usize()?;
        self.check_count(len, min_elem_bytes)?;
        Ok(len)
    }

    /// [`ByteReader::take_count`] for a `u32`-prefixed list.
    pub fn take_count_u32(&mut self, min_elem_bytes: usize) -> Result<usize, ArtifactError> {
        let len = self.take_u32()? as usize;
        self.check_count(len, min_elem_bytes)?;
        Ok(len)
    }

    fn check_count(&self, len: usize, min_elem_bytes: usize) -> Result<(), ArtifactError> {
        if len
            .checked_mul(min_elem_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(ArtifactError::Corrupt(format!(
                "count {len} exceeds the {} bytes left in the payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_usize(99);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_str("opcode");
        w.put_bytes(&[1, 2, 3]);
        w.put_u32_slice(&[4, 5]);
        w.put_u64_slice(&[6]);
        w.put_f32_slice(&[f32::NAN, 1.5]);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 300);
        assert_eq!(r.take_u32().unwrap(), 70_000);
        assert_eq!(r.take_u64().unwrap(), 1 << 40);
        assert_eq!(r.take_usize().unwrap(), 99);
        assert_eq!(r.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.take_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.take_str().unwrap(), "opcode");
        assert_eq!(r.take_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.take_u32_slice().unwrap(), vec![4, 5]);
        assert_eq!(r.take_u64_slice().unwrap(), vec![6]);
        let fs = r.take_f32_slice().unwrap();
        assert!(fs[0].is_nan());
        assert_eq!(fs[1], 1.5);
        r.expect_exhausted("test payload").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.take_u64(), Err(ArtifactError::Corrupt(_))));
    }

    #[test]
    fn lying_counts_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_f32_slice(), Err(ArtifactError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.take_u8().unwrap();
        assert!(matches!(
            r.expect_exhausted("unit"),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn non_utf8_string_is_corrupt() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_str(), Err(ArtifactError::Corrupt(_))));
    }
}
