//! `phishinghook-scannerd <codelog> [seed] [--resume]`
//!
//! The scanner role of the multi-process fleet: replays a deterministic
//! drifted chain ([`DriftScenario`]) in time order and appends every
//! labeled deployment to the append-only CodeLog journal that a separate
//! `phishinghook-ingestd tail` process follows. The two processes share
//! nothing but the journal file.
//!
//! `--resume` reopens an existing journal the way a restarted (or
//! crashed) scanner would: [`CodeLogWriter::resume`] truncates any torn
//! tail a `kill -9` left behind, and the scan skips the records that
//! already survived — the journal ends up with the exact same content a
//! never-killed scanner would have written.
//!
//! Environment knobs:
//!
//! * `PHISHINGHOOK_SCAN_SYNC_EVERY` — fsync cadence in records (default 32)
//! * `PHISHINGHOOK_SCAN_THROTTLE_US` — per-record pause, so a tailer
//!   visibly follows a *live* journal (default 0)
//! * `PHISHINGHOOK_FAULT_CODELOG_TORN_APPEND` — abort mid-append on the
//!   N-th record, leaving a torn tail (the fault-injection harness)

use phishinghook::ExtractionStream;
use phishinghook_evm::CodeLogWriter;
use phishinghook_ingest::DriftScenario;
use phishinghook_synth::Month;
use std::process::ExitCode;
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed = 42u64;
    let mut resume = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--resume" {
            resume = true;
        } else if path.is_none() {
            path = Some(arg);
        } else {
            seed = arg.parse()?;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: phishinghook-scannerd <codelog> [seed] [--resume]");
        std::process::exit(2);
    };

    let sync_every = env_u64("PHISHINGHOOK_SCAN_SYNC_EVERY", 32).max(1);
    let throttle = Duration::from_micros(env_u64("PHISHINGHOOK_SCAN_THROTTLE_US", 0));

    let mut writer = if resume {
        CodeLogWriter::resume(&path)?
    } else {
        CodeLogWriter::create(&path)?
    };
    let skip = writer.records();
    if resume {
        println!("phishinghook-scannerd: resumed {path} past {skip} surviving records");
    }

    // The same seed always replays the same chain, so a resumed scan
    // deterministically re-generates — and skips — what already landed.
    let scenario = DriftScenario::small(seed);
    let chain = scenario.build();
    let stream = ExtractionStream::new(&chain, Month::FIRST, Month::LAST);
    let mut written = 0u64;
    for (i, sample) in stream.enumerate() {
        if (i as u64) < skip {
            continue;
        }
        writer.append_labeled(&sample.bytecode, sample.label, sample.month.0 as u16)?;
        written += 1;
        if writer.records() % sync_every == 0 {
            writer.sync()?;
        }
        if !throttle.is_zero() {
            std::thread::sleep(throttle);
        }
    }
    writer.sync()?;
    println!(
        "phishinghook-scannerd: {} records in {path} ({written} new)",
        writer.records()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("phishinghook-scannerd: {e}");
            ExitCode::FAILURE
        }
    }
}
