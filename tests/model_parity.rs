//! Smoke parity across all sixteen models: each trains on the synthetic
//! corpus and produces coherent metrics. Mirrors Table II's qualitative
//! structure — HSCs strong, ESCORT near chance.

use phishinghook::prelude::*;

fn shared_dataset() -> Dataset {
    let corpus = generate_corpus(&CorpusConfig::small(404));
    let chain = SimulatedChain::from_corpus(&corpus);
    extract_dataset(&chain, &BemConfig::default()).0
}

#[test]
fn all_sixteen_models_run_and_report_valid_metrics() {
    let dataset = shared_dataset();
    let folds = dataset.stratified_folds(3, 5);
    let (train, test) = dataset.fold_split(&folds, 0);
    let profile = EvalProfile::quick();

    for kind in ModelKind::ALL {
        let outcome = train_and_evaluate(kind, &train, &test, &profile, 5);
        let m = outcome.metrics;
        for v in [m.accuracy, m.f1, m.precision, m.recall] {
            assert!((0.0..=1.0).contains(&v), "{kind}: metric out of range");
        }
        assert!(outcome.train_seconds >= 0.0);
        assert!(outcome.infer_seconds >= 0.0);
        // Nothing should be catastrophically below chance on a balanced set.
        assert!(
            m.accuracy > 0.30,
            "{kind}: accuracy {} below sanity floor",
            m.accuracy
        );
    }
}

#[test]
fn histogram_classifiers_beat_the_vulnerability_detector() {
    // The paper's headline structural finding: HSCs ≈ 90%+, ESCORT ≈ 56%.
    let dataset = shared_dataset();
    let folds = dataset.stratified_folds(3, 9);
    let (train, test) = dataset.fold_split(&folds, 0);
    let profile = EvalProfile::quick();

    let rf = train_and_evaluate(ModelKind::RandomForest, &train, &test, &profile, 9);
    let escort = train_and_evaluate(ModelKind::Escort, &train, &test, &profile, 9);
    assert!(
        rf.metrics.accuracy > escort.metrics.accuracy,
        "RF {} should beat ESCORT {}",
        rf.metrics.accuracy,
        escort.metrics.accuracy
    );
    assert!(
        rf.metrics.accuracy > 0.75,
        "RF accuracy = {}",
        rf.metrics.accuracy
    );
}

#[test]
fn boosting_trio_is_competitive_with_the_forest() {
    let dataset = shared_dataset();
    let folds = dataset.stratified_folds(3, 13);
    let (train, test) = dataset.fold_split(&folds, 0);
    let profile = EvalProfile::quick();
    for kind in [ModelKind::Xgboost, ModelKind::Lightgbm, ModelKind::Catboost] {
        let outcome = train_and_evaluate(kind, &train, &test, &profile, 13);
        assert!(
            outcome.metrics.accuracy > 0.7,
            "{kind}: accuracy {}",
            outcome.metrics.accuracy
        );
    }
}
