//! The typed failure surface of every persistence path.

use std::fmt;

/// Why an artifact could not be written, parsed or applied.
///
/// Every decode path in the workspace funnels into this type: a malformed
/// or truncated artifact surfaces as an `Err` the caller can report, never
/// as a panic inside the serving process.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// Wrong magic, unsupported format version, or a container-level
    /// structural violation.
    Format(String),
    /// A section's stored checksum disagrees with its payload.
    Checksum(String),
    /// A payload is truncated or structurally invalid.
    Corrupt(String),
    /// A required section is absent from the container.
    MissingSection(String),
    /// Decoded state disagrees with the geometry the receiver expects
    /// (tensor shapes, matrix layout, model kind, vocabulary sizes).
    Mismatch(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
            ArtifactError::Format(m) => write!(f, "not a readable artifact: {m}"),
            ArtifactError::Checksum(m) => write!(f, "artifact checksum mismatch: {m}"),
            ArtifactError::Corrupt(m) => write!(f, "corrupt artifact payload: {m}"),
            ArtifactError::MissingSection(m) => write!(f, "artifact section missing: {m}"),
            ArtifactError::Mismatch(m) => write!(f, "artifact state mismatch: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_distinct_and_prefixed() {
        let variants = [
            ArtifactError::Format("bad magic".into()),
            ArtifactError::Checksum("meta".into()),
            ArtifactError::Corrupt("truncated".into()),
            ArtifactError::MissingSection("model".into()),
            ArtifactError::Mismatch("shape".into()),
        ];
        let rendered: Vec<String> = variants.iter().map(ToString::to_string).collect();
        let unique: std::collections::HashSet<_> = rendered.iter().collect();
        assert_eq!(unique.len(), rendered.len());
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: ArtifactError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, ArtifactError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
