//! Frequency-encoded RGB images of disassembled bytecode — the ViT+Freq
//! representation.
//!
//! "A lookup table encodes each opcode and operand of the disassembled
//! bytecode to a numerical value which corresponds to their frequency of
//! appearance in the training set. [...] The concept relies on assigning
//! higher pixel intensity values in the R, G, and B channels to the most
//! frequently encountered mnemonics, operands and gas consumptions."
//! (§IV-B)
//!
//! One decoded instruction becomes one pixel: R from the op's training-set
//! frequency (a dense [`OpId`]-indexed table), G from the operand's, B from
//! the gas value's. The lookup tables are built exactly once, on the
//! training split's [`DisasmCache`]s; encoding reads the shared cache and
//! allocates nothing but the output image.

use crate::featurizer::{FeatureVec, Featurizer};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_evm::{DisasmCache, OpId};
use std::collections::HashMap;

/// Default image side used by the [`Featurizer`] impl.
pub const DEFAULT_SIDE: usize = 32;

/// Fitted frequency tables plus the output image geometry.
///
/// Encoders built by [`FreqImageEncoder::fit`] retain the raw instruction
/// counts (in memory only — never serialized) so
/// [`FreqImageEncoder::extend_fit`] can fold new contracts in and
/// renormalize exactly as a full refit would.
#[derive(Debug, Clone)]
pub struct FreqImageEncoder {
    side: usize,
    /// Dense `OpId::index() -> intensity` table.
    mnemonic_freq: Vec<f32>,
    operand_freq: HashMap<Vec<u8>, f32>,
    gas_freq: HashMap<Option<u32>, f32>,
    /// Raw counts behind the three tables; empty after
    /// [`FreqImageEncoder::read_state`] (counts are not serialized).
    mnemonic_counts: Vec<u64>,
    operand_counts: HashMap<Vec<u8>, u64>,
    gas_counts: HashMap<Option<u32>, u64>,
}

impl FreqImageEncoder {
    /// Fits the three lookup tables (op id, operand, gas) on the training
    /// caches and fixes the image side.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn fit(training: &[DisasmCache], side: usize) -> Self {
        assert!(side > 0, "image side must be positive");
        let mut encoder = FreqImageEncoder {
            side,
            mnemonic_freq: Vec::new(),
            operand_freq: HashMap::new(),
            gas_freq: HashMap::new(),
            mnemonic_counts: vec![0u64; OpId::CARDINALITY],
            operand_counts: HashMap::new(),
            gas_counts: HashMap::new(),
        };
        encoder.count(training);
        encoder.renormalize();
        encoder
    }

    /// Accumulates instruction counts from `caches` into the raw tables.
    fn count(&mut self, caches: &[DisasmCache]) {
        for cache in caches {
            for op in cache.ops() {
                self.mnemonic_counts[op.id.index()] += 1;
                *self.operand_counts.entry(op.operand.to_vec()).or_insert(0) += 1;
                *self.gas_counts.entry(op.gas()).or_insert(0) += 1;
            }
        }
    }

    /// Recomputes the three normalized intensity tables from the raw
    /// counts.
    fn renormalize(&mut self) {
        self.mnemonic_freq = normalize_dense(&self.mnemonic_counts);
        self.operand_freq = normalize(&self.operand_counts);
        self.gas_freq = normalize(&self.gas_counts);
    }

    /// `true` when this encoder still holds the raw counts a refit needs
    /// (i.e. it was fitted in this process, not restored from an artifact).
    pub fn can_extend(&self) -> bool {
        !self.mnemonic_counts.is_empty()
    }

    /// Folds freshly observed caches into the raw counts and renormalizes
    /// — byte-for-byte what a full refit on the concatenated fit set would
    /// produce, at O(new) scan cost.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] when the encoder was restored from an
    /// artifact: artifacts carry the normalized tables, not the raw
    /// counts, so extending it could silently diverge from a refit.
    pub fn extend_fit(&mut self, new: &[DisasmCache]) -> Result<(), ArtifactError> {
        if !self.can_extend() {
            return Err(ArtifactError::Mismatch(
                "frequency-image encoder was restored from an artifact and carries no raw \
                 counts; refit instead of extending"
                    .into(),
            ));
        }
        self.count(new);
        self.renormalize();
        Ok(())
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Length of the produced feature vector (`3 · side²`).
    pub fn len(&self) -> usize {
        3 * self.side * self.side
    }

    /// Always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes the three fitted lookup tables plus the image side.
    /// Hash-map tables are written in sorted key order so identical
    /// encoders always serialize to identical bytes.
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.side);
        w.put_f32_slice(&self.mnemonic_freq);

        let mut operands: Vec<(&Vec<u8>, f32)> =
            self.operand_freq.iter().map(|(k, &v)| (k, v)).collect();
        operands.sort_by(|a, b| a.0.cmp(b.0));
        w.put_usize(operands.len());
        for (key, v) in operands {
            w.put_bytes(key);
            w.put_f32(v);
        }

        // Option<u32> keys sort None first, then by gas value.
        let mut gas: Vec<(Option<u32>, f32)> =
            self.gas_freq.iter().map(|(&k, &v)| (k, v)).collect();
        gas.sort_by_key(|(k, _)| *k);
        w.put_usize(gas.len());
        for (key, v) in gas {
            match key {
                None => w.put_u8(0),
                Some(g) => {
                    w.put_u8(1);
                    w.put_u32(g);
                }
            }
            w.put_f32(v);
        }
    }

    /// Rebuilds a fitted encoder from [`FreqImageEncoder::write_state`]
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Corrupt`] on truncation, a zero side, or a
    /// mnemonic table that does not cover the opcode id space.
    pub fn read_state(r: &mut ByteReader<'_>) -> Result<Self, ArtifactError> {
        let side = r.take_usize()?;
        if side == 0 {
            return Err(ArtifactError::Corrupt("image side must be positive".into()));
        }
        let mnemonic_freq = r.take_f32_slice()?;
        if mnemonic_freq.len() != OpId::CARDINALITY {
            return Err(ArtifactError::Corrupt(format!(
                "mnemonic table holds {} entries, expected {}",
                mnemonic_freq.len(),
                OpId::CARDINALITY
            )));
        }
        let n_ops = r.take_usize()?;
        let mut operand_freq = HashMap::with_capacity(n_ops.min(1 << 16));
        for _ in 0..n_ops {
            let key = r.take_bytes()?.to_vec();
            let v = r.take_f32()?;
            if operand_freq.insert(key, v).is_some() {
                return Err(ArtifactError::Corrupt("duplicate operand table key".into()));
            }
        }
        let n_gas = r.take_usize()?;
        let mut gas_freq = HashMap::with_capacity(n_gas.min(1 << 16));
        for _ in 0..n_gas {
            let key = match r.take_u8()? {
                0 => None,
                1 => Some(r.take_u32()?),
                tag => {
                    return Err(ArtifactError::Corrupt(format!(
                        "gas key tag {tag} (expected 0 or 1)"
                    )))
                }
            };
            let v = r.take_f32()?;
            if gas_freq.insert(key, v).is_some() {
                return Err(ArtifactError::Corrupt(format!(
                    "duplicate gas table key {key:?}"
                )));
            }
        }
        Ok(FreqImageEncoder {
            side,
            mnemonic_freq,
            operand_freq,
            gas_freq,
            mnemonic_counts: Vec::new(),
            operand_counts: HashMap::new(),
            gas_counts: HashMap::new(),
        })
    }

    /// Encodes one contract: instruction `k` becomes pixel `k` with channel
    /// intensities given by the fitted frequency tables (unseen entries get
    /// intensity 0, like any out-of-vocabulary element).
    pub fn encode(&self, contract: &DisasmCache) -> Vec<f32> {
        let pixels = self.side * self.side;
        let mut out = vec![0.0f32; 3 * pixels];
        for (k, op) in contract.ops().take(pixels).enumerate() {
            out[k] = self.mnemonic_freq[op.id.index()];
            out[pixels + k] = self.operand_freq.get(op.operand).copied().unwrap_or(0.0);
            out[2 * pixels + k] = self.gas_freq.get(&op.gas()).copied().unwrap_or(0.0);
        }
        out
    }
}

impl Featurizer for FreqImageEncoder {
    const NAME: &'static str = "freq_image";

    fn fit(training: &[DisasmCache]) -> Self {
        FreqImageEncoder::fit(training, DEFAULT_SIDE)
    }

    fn encode(&self, contract: &DisasmCache) -> FeatureVec {
        FeatureVec::Dense(self.encode(contract))
    }
}

/// Log-scaled max-normalization: the most frequent entry gets intensity 1.
fn normalize<K: std::hash::Hash + Eq + Clone>(counts: &HashMap<K, u64>) -> HashMap<K, f32> {
    let max = counts.values().copied().max().unwrap_or(1) as f32;
    counts
        .iter()
        .map(|(k, &c)| (k.clone(), (1.0 + c as f32).ln() / (1.0 + max).ln()))
        .collect()
}

/// Dense-table variant of [`normalize`]; zero counts stay at intensity 0.
fn normalize_dense(counts: &[u64]) -> Vec<f32> {
    let max = counts.iter().copied().max().unwrap_or(1).max(1) as f32;
    let denom = (1.0 + max).ln();
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                (1.0 + c as f32).ln() / denom
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::Bytecode;

    fn cache(hex: &str) -> DisasmCache {
        DisasmCache::build(&Bytecode::from_hex(hex).unwrap())
    }

    #[test]
    fn most_frequent_mnemonic_gets_highest_red() {
        // PUSH1 appears twice, MSTORE once.
        let train = vec![cache("0x6080604052")];
        let enc = FreqImageEncoder::fit(&train, 4);
        let img = enc.encode(&train[0]);
        let push1_red = img[0];
        let mstore_red = img[2];
        assert!(push1_red > mstore_red, "{push1_red} vs {mstore_red}");
        assert!((push1_red - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unseen_instruction_is_dark() {
        let train = vec![cache("0x6080")];
        let enc = FreqImageEncoder::fit(&train, 4);
        let img = enc.encode(&cache("0x01")); // ADD never seen
                                              // Gas 3 was seen (PUSH1 has gas 3, ADD also gas 3) so blue may fire,
                                              // but the red (mnemonic) channel must be zero.
        assert_eq!(img[0], 0.0);
    }

    #[test]
    fn output_dimensions() {
        let enc = FreqImageEncoder::fit(&[cache("0x6080")], 8);
        assert_eq!(enc.encode(&cache("0x6080")).len(), 3 * 64);
        assert_eq!(enc.len(), 192);
    }

    #[test]
    fn intensities_in_unit_range() {
        let train: Vec<DisasmCache> = vec![cache("0x6080604052"), cache("0x010203")];
        let enc = FreqImageEncoder::fit(&train, 8);
        for c in &train {
            assert!(enc.encode(c).iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn extend_fit_equals_full_refit() {
        let old = vec![cache("0x6080604052")];
        let new = vec![cache("0x010203"), cache("0x52525233")];
        let mut extended = FreqImageEncoder::fit(&old, 4);
        assert!(extended.can_extend());
        extended.extend_fit(&new).unwrap();
        let all: Vec<DisasmCache> = old.iter().chain(new.iter()).cloned().collect();
        let refit = FreqImageEncoder::fit(&all, 4);
        let mut a = phishinghook_artifact::ByteWriter::new();
        let mut b = phishinghook_artifact::ByteWriter::new();
        extended.write_state(&mut a);
        refit.write_state(&mut b);
        assert_eq!(a.into_bytes(), b.into_bytes());
        for c in all.iter() {
            assert_eq!(extended.encode(c), refit.encode(c));
        }
        // Restored encoders have no counts to extend.
        let mut w = phishinghook_artifact::ByteWriter::new();
        refit.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored =
            FreqImageEncoder::read_state(&mut phishinghook_artifact::ByteReader::new(&bytes))
                .unwrap();
        assert!(!restored.can_extend());
        assert!(matches!(
            restored.extend_fit(&new),
            Err(ArtifactError::Mismatch(_))
        ));
    }

    #[test]
    fn empty_code_is_black() {
        let enc = FreqImageEncoder::fit(&[cache("0x6080")], 4);
        assert!(enc.encode(&cache("0x")).iter().all(|&v| v == 0.0));
    }
}
