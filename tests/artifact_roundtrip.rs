//! Cold-start parity acceptance test: for every one of the sixteen
//! `ModelKind`s, a detector serialized to its artifact form and
//! reconstructed from bytes alone (as a fresh process would) produces
//! scores bit-identical to the detector that trained it. A `ModelZoo`
//! round-trips the same way.

use phishinghook::prelude::*;
use phishinghook_evm::DisasmCache;

fn fixture() -> (Dataset, EvalContext) {
    let corpus = generate_corpus(&CorpusConfig::small(808));
    let chain = SimulatedChain::from_corpus(&corpus);
    let dataset = extract_dataset(&chain, &BemConfig::default()).0;
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    (dataset, ctx)
}

#[test]
fn every_model_kind_reloads_with_bit_identical_scores() {
    let (dataset, ctx) = fixture();
    let folds = dataset.stratified_folds(3, 21);
    let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);
    let held_out: Vec<DisasmCache> = test_idx.iter().map(|&i| ctx.caches()[i].clone()).collect();

    for kind in ModelKind::ALL {
        let trained = Detector::train_on(&ctx, kind, &train_idx, 21);
        let expected = trained.score_batch(&held_out);

        // The artifact is the only thing that crosses the process
        // boundary: reconstruct from bytes, never from the context.
        let reloaded = Detector::from_bytes(&trained.to_bytes())
            .unwrap_or_else(|e| panic!("{kind}: reload failed: {e}"));
        assert_eq!(reloaded.kind(), kind);
        assert_eq!(reloaded.encoding(), kind.encoding());
        assert_eq!(reloaded.parameter_count(), trained.parameter_count());
        let served = reloaded.score_batch(&held_out);
        assert_eq!(
            served, expected,
            "{kind}: cold-start scores must be bit-identical to the training process"
        );
        // Single-contract scoring agrees too (separate encode path).
        assert_eq!(
            reloaded.score_cache(&held_out[0]),
            expected[0],
            "{kind}: single-contract cold-start score"
        );
    }
}

#[test]
fn zoo_artifact_reloads_with_bit_identical_verdicts() {
    let (_, ctx) = fixture();
    // One kind per category keeps the zoo representative and fast.
    let kinds = [
        ModelKind::RandomForest,
        ModelKind::VitFreq,
        ModelKind::ScsGuard,
        ModelKind::Escort,
    ];
    let zoo = ModelZoo::train(&ctx, &kinds, 5);
    let caches: Vec<DisasmCache> = ctx.caches().as_slice()[..6].to_vec();
    let expected = zoo.score_batch(&caches);

    let reloaded = ModelZoo::from_bytes(&zoo.to_bytes()).unwrap();
    assert_eq!(reloaded.kinds(), kinds.to_vec());
    let verdicts = reloaded.score_batch(&caches);
    assert_eq!(
        verdicts, expected,
        "reloaded zoo verdicts must be bit-identical"
    );
}
