//! Gradient-boosted decision trees in the three industrial styles the paper
//! benchmarks: XGBoost (exact greedy, depth-wise), LightGBM (histogram bins,
//! leaf-wise) and CatBoost (oblivious/symmetric trees).
//!
//! All three share the same second-order logistic-loss machinery: with
//! `p = σ(score)`, the gradient is `g = p − y` and the hessian
//! `h = p (1 − p)`; split gain and leaf weights follow the standard
//! Newton formulas `gain = ½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`
//! and `w = −G/(H+λ)`.

use crate::classifier::{checked_u32_count, positive_rate, validate_fit_inputs, Classifier};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_linalg::Matrix;

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

// ---------------------------------------------------------------------------
// Fitted-state codec shared by the three boosters
// ---------------------------------------------------------------------------

/// Serializes one binary split node (XGBoost and LightGBM share the layout).
fn write_split_node(
    w: &mut ByteWriter,
    feature: u32,
    threshold: f32,
    left: u32,
    right: u32,
    weight: f32,
    is_leaf: bool,
) {
    w.put_u32(feature);
    w.put_f32(threshold);
    w.put_u32(left);
    w.put_u32(right);
    w.put_f32(weight);
    w.put_u8(u8::from(is_leaf));
}

/// Decoded form of [`write_split_node`].
type SplitNode = (u32, f32, u32, u32, f32, bool);

fn read_split_nodes(r: &mut ByteReader<'_>) -> Result<Vec<SplitNode>, ArtifactError> {
    // 21 bytes per node on the wire; bounding the count by the payload
    // keeps a crafted artifact from forcing a huge pre-allocation.
    let count = checked_u32_count(r, 21, "boosted tree node arena")?;
    if count == 0 {
        // Boosting always emits at least a root leaf; an empty arena
        // would panic the first predict_row.
        return Err(ArtifactError::Corrupt(
            "empty boosted tree node arena".into(),
        ));
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push((
            r.take_u32()?,
            r.take_f32()?,
            r.take_u32()?,
            r.take_u32()?,
            r.take_f32()?,
            r.take_u8()? != 0,
        ));
    }
    for (i, n) in nodes.iter().enumerate() {
        // As in the CART arena: children sit strictly deeper, which bounds
        // indices and rules out traversal cycles in a corrupted artifact.
        if !n.5
            && (n.2 as usize >= count
                || n.3 as usize >= count
                || n.2 as usize <= i
                || n.3 as usize <= i)
        {
            return Err(ArtifactError::Corrupt(format!(
                "boosted tree node {i} has invalid children in a {count}-node arena"
            )));
        }
    }
    Ok(nodes)
}

/// Shared boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage (learning rate) η.
    pub learning_rate: f32,
    /// Maximum tree depth (XGBoost/CatBoost) or a depth cap for LightGBM.
    pub max_depth: usize,
    /// Maximum leaves for leaf-wise growth (LightGBM only).
    pub max_leaves: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f32,
    /// Minimum gain γ to accept a split.
    pub gamma: f32,
    /// Minimum hessian sum per child.
    pub min_child_weight: f32,
}

impl Default for BoostParams {
    fn default() -> Self {
        BoostParams {
            n_rounds: 120,
            learning_rate: 0.15,
            max_depth: 6,
            max_leaves: 31,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

// ---------------------------------------------------------------------------
// Quantile binning (LightGBM / CatBoost)
// ---------------------------------------------------------------------------

/// Quantile-binned view of a dataset: per-feature bin ids plus the raw upper
/// bound of each bin, so fitted splits transfer back to raw features.
#[derive(Debug, Clone)]
struct BinnedData {
    /// `bins[f][r]` = bin id of sample `r` on feature `f`.
    bins: Vec<Vec<u8>>,
    /// `uppers[f][b]` = largest raw value in bin `b` of feature `f`.
    uppers: Vec<Vec<f32>>,
}

impl BinnedData {
    fn fit(x: &Matrix, max_bins: usize) -> Self {
        let (n, d) = x.shape();
        let mut bins = Vec::with_capacity(d);
        let mut uppers = Vec::with_capacity(d);
        for f in 0..d {
            let mut values: Vec<f32> = (0..n).map(|r| x[(r, f)]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values.dedup();
            // Choose ≤ max_bins - 1 cut points at (approximate) quantiles of
            // the distinct values.
            let cuts: Vec<f32> = if values.len() <= max_bins {
                values.clone()
            } else {
                (1..=max_bins)
                    .map(|q| values[(q * values.len() / max_bins).min(values.len() - 1)])
                    .collect()
            };
            let col_bins: Vec<u8> = (0..n)
                .map(|r| {
                    let v = x[(r, f)];
                    cuts.partition_point(|&c| c < v).min(cuts.len() - 1) as u8
                })
                .collect();
            bins.push(col_bins);
            uppers.push(cuts);
        }
        BinnedData { bins, uppers }
    }

    fn n_bins(&self, f: usize) -> usize {
        self.uppers[f].len()
    }

    /// Raw threshold equivalent of "bin id <= b".
    fn threshold(&self, f: usize, b: usize) -> f32 {
        self.uppers[f][b]
    }
}

/// Outer codec shared by the two binary-split boosters: base score, tree
/// count, then one node arena per tree. Parameterized by per-node
/// accessors so XGBoost's and LightGBM's structurally identical (but
/// distinct) node types share one wire format by construction.
fn export_split_forest<T, N>(
    base_score: f32,
    trees: &[T],
    nodes: impl Fn(&T) -> &[N],
    split: impl Fn(&N) -> SplitNode,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f32(base_score);
    w.put_u32(trees.len() as u32);
    for tree in trees {
        let arena = nodes(tree);
        w.put_u32(arena.len() as u32);
        for n in arena {
            let (feature, threshold, left, right, weight, is_leaf) = split(n);
            write_split_node(&mut w, feature, threshold, left, right, weight, is_leaf);
        }
    }
    w.into_bytes()
}

/// Inverse of [`export_split_forest`].
fn import_split_forest<T, N>(
    bytes: &[u8],
    what: &str,
    make_node: impl Fn(SplitNode) -> N,
    make_tree: impl Fn(Vec<N>) -> T,
) -> Result<(f32, Vec<T>), ArtifactError> {
    let mut r = ByteReader::new(bytes);
    let base_score = r.take_f32()?;
    // Each serialized tree is at least its 4-byte node count.
    let count = checked_u32_count(&mut r, 4, what)?;
    let mut trees = Vec::with_capacity(count);
    for _ in 0..count {
        let arena = read_split_nodes(&mut r)?;
        trees.push(make_tree(arena.into_iter().map(&make_node).collect()));
    }
    r.expect_exhausted(what)?;
    Ok((base_score, trees))
}

// ---------------------------------------------------------------------------
// XGBoost-style trees (exact greedy on raw values, depth-wise)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct XgbNode {
    feature: u32,
    threshold: f32,
    left: u32,
    right: u32,
    weight: f32,
    is_leaf: bool,
}

#[derive(Debug, Clone)]
struct XgbTree {
    nodes: Vec<XgbNode>,
}

impl XgbTree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf {
                return node.weight;
            }
            i = if row[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    fn fit(x: &Matrix, g: &[f32], h: &[f32], params: &BoostParams) -> XgbTree {
        let mut tree = XgbTree {
            nodes: vec![XgbNode {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                weight: 0.0,
                is_leaf: true,
            }],
        };
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        tree.build(x, g, h, &mut idx, 0, 0, params);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        g: &[f32],
        h: &[f32],
        idx: &mut [usize],
        node: usize,
        depth: usize,
        params: &BoostParams,
    ) {
        let gsum: f32 = idx.iter().map(|&i| g[i]).sum();
        let hsum: f32 = idx.iter().map(|&i| h[i]).sum();
        self.nodes[node].weight = -gsum / (hsum + params.lambda);

        if depth >= params.max_depth || idx.len() < 2 {
            return;
        }

        let parent_score = gsum * gsum / (hsum + params.lambda);
        let mut best: Option<(f32, usize, f32)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        for f in 0..x.cols() {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_by(|&a, &b| {
                x[(a, f)]
                    .partial_cmp(&x[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let (mut gl, mut hl) = (0.0f32, 0.0f32);
            for k in 0..order.len() - 1 {
                let i = order[k];
                gl += g[i];
                hl += h[i];
                let v = x[(i, f)];
                let v_next = x[(order[k + 1], f)];
                if v == v_next {
                    continue;
                }
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - parent_score)
                    - params.gamma;
                if gain > 1e-7 {
                    match best {
                        Some((bg, _, _)) if gain <= bg => {}
                        _ => best = Some((gain, f, (v + v_next) / 2.0)),
                    }
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return;
        };
        let mut split = 0usize;
        for i in 0..idx.len() {
            if x[(idx[i], feature)] <= threshold {
                idx.swap(i, split);
                split += 1;
            }
        }
        let left = self.nodes.len();
        let right = left + 1;
        for _ in 0..2 {
            self.nodes.push(XgbNode {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                weight: 0.0,
                is_leaf: true,
            });
        }
        self.nodes[node] = XgbNode {
            feature: feature as u32,
            threshold,
            left: left as u32,
            right: right as u32,
            weight: self.nodes[node].weight,
            is_leaf: false,
        };
        let (l, r) = idx.split_at_mut(split);
        self.build(x, g, h, l, left, depth + 1, params);
        self.build(x, g, h, r, right, depth + 1, params);
    }
}

/// XGBoost-style classifier: exact greedy split finding, depth-wise growth,
/// second-order logistic loss.
#[derive(Debug, Clone)]
pub struct XgbClassifier {
    /// Boosting hyper-parameters.
    pub params: BoostParams,
    base_score: f32,
    trees: Vec<XgbTree>,
}

impl XgbClassifier {
    /// Creates an unfitted model.
    pub fn new(params: BoostParams) -> Self {
        XgbClassifier {
            params,
            base_score: 0.0,
            trees: Vec::new(),
        }
    }
}

impl Default for XgbClassifier {
    fn default() -> Self {
        XgbClassifier::new(BoostParams::default())
    }
}

impl Classifier for XgbClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        let n = x.rows();
        let prior = positive_rate(y).clamp(1e-5, 1.0 - 1e-5);
        self.base_score = (prior / (1.0 - prior)).ln();
        self.trees.clear();
        let mut scores = vec![self.base_score; n];
        let mut g = vec![0.0f32; n];
        let mut h = vec![0.0f32; n];
        for _ in 0..self.params.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                g[i] = p - y[i] as f32;
                h[i] = (p * (1.0 - p)).max(1e-8);
            }
            let tree = XgbTree::fit(x, &g, &h, &self.params);
            #[allow(clippy::needless_range_loop)] // i indexes scores and x rows
            for i in 0..n {
                scores[i] += self.params.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "predict before fit");
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                let score: f32 = self.base_score
                    + self
                        .trees
                        .iter()
                        .map(|t| self.params.learning_rate * t.predict_row(row))
                        .sum::<f32>();
                sigmoid(score)
            })
            .collect()
    }

    fn export_state(&self) -> Vec<u8> {
        export_split_forest(
            self.base_score,
            &self.trees,
            |t| t.nodes.as_slice(),
            |n| (n.feature, n.threshold, n.left, n.right, n.weight, n.is_leaf),
        )
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        let (base_score, trees) = import_split_forest(
            bytes,
            "xgboost state",
            |(feature, threshold, left, right, weight, is_leaf)| XgbNode {
                feature,
                threshold,
                left,
                right,
                weight,
                is_leaf,
            },
            |nodes| XgbTree { nodes },
        )?;
        self.base_score = base_score;
        self.trees = trees;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LightGBM-style trees (histogram bins, leaf-wise best-first growth)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct LgbmNode {
    feature: u32,
    threshold: f32,
    left: u32,
    right: u32,
    weight: f32,
    is_leaf: bool,
}

#[derive(Debug, Clone)]
struct LgbmTree {
    nodes: Vec<LgbmNode>,
}

struct LeafCandidate {
    node: usize,
    indices: Vec<usize>,
    gain: f32,
    feature: usize,
    bin: usize,
}

impl LgbmTree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            if node.is_leaf {
                return node.weight;
            }
            i = if row[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Best (gain, feature, bin) split of a leaf from per-bin histograms.
    fn best_split(
        binned: &BinnedData,
        indices: &[usize],
        g: &[f32],
        h: &[f32],
        params: &BoostParams,
    ) -> Option<(f32, usize, usize)> {
        let gsum: f32 = indices.iter().map(|&i| g[i]).sum();
        let hsum: f32 = indices.iter().map(|&i| h[i]).sum();
        let parent_score = gsum * gsum / (hsum + params.lambda);
        let mut best: Option<(f32, usize, usize)> = None;
        for f in 0..binned.bins.len() {
            let nb = binned.n_bins(f);
            if nb < 2 {
                continue;
            }
            let mut hist_g = vec![0.0f32; nb];
            let mut hist_h = vec![0.0f32; nb];
            for &i in indices {
                let b = binned.bins[f][i] as usize;
                hist_g[b] += g[i];
                hist_h[b] += h[i];
            }
            let (mut gl, mut hl) = (0.0f32, 0.0f32);
            for b in 0..nb - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - parent_score)
                    - params.gamma;
                if gain > 1e-7 {
                    match best {
                        Some((bg, _, _)) if gain <= bg => {}
                        _ => best = Some((gain, f, b)),
                    }
                }
            }
        }
        best
    }

    fn fit(
        x: &Matrix,
        binned: &BinnedData,
        g: &[f32],
        h: &[f32],
        params: &BoostParams,
    ) -> LgbmTree {
        let mut tree = LgbmTree {
            nodes: vec![LgbmNode {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                weight: 0.0,
                is_leaf: true,
            }],
        };
        let root_idx: Vec<usize> = (0..x.rows()).collect();
        let newton = |indices: &[usize]| {
            let gs: f32 = indices.iter().map(|&i| g[i]).sum();
            let hs: f32 = indices.iter().map(|&i| h[i]).sum();
            -gs / (hs + params.lambda)
        };
        tree.nodes[0].weight = newton(&root_idx);

        let mut frontier: Vec<LeafCandidate> = Vec::new();
        if let Some((gain, feature, bin)) = Self::best_split(binned, &root_idx, g, h, params) {
            frontier.push(LeafCandidate {
                node: 0,
                indices: root_idx,
                gain,
                feature,
                bin,
            });
        }
        let mut leaves = 1usize;

        while leaves < params.max_leaves {
            // Best-first: split the frontier leaf with maximal gain.
            let Some(pos) = frontier
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.gain
                        .partial_cmp(&b.1.gain)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let cand = frontier.swap_remove(pos);
            let threshold = binned.threshold(cand.feature, cand.bin);
            let (li, ri): (Vec<usize>, Vec<usize>) = cand
                .indices
                .iter()
                .partition(|&&i| binned.bins[cand.feature][i] as usize <= cand.bin);
            if li.is_empty() || ri.is_empty() {
                continue;
            }
            let left = tree.nodes.len();
            let right = left + 1;
            tree.nodes.push(LgbmNode {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                weight: newton(&li),
                is_leaf: true,
            });
            tree.nodes.push(LgbmNode {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
                weight: newton(&ri),
                is_leaf: true,
            });
            let n = &mut tree.nodes[cand.node];
            n.feature = cand.feature as u32;
            n.threshold = threshold;
            n.left = left as u32;
            n.right = right as u32;
            n.is_leaf = false;
            leaves += 1;

            for (child, idxs) in [(left, li), (right, ri)] {
                if let Some((gain, feature, bin)) = Self::best_split(binned, &idxs, g, h, params) {
                    frontier.push(LeafCandidate {
                        node: child,
                        indices: idxs,
                        gain,
                        feature,
                        bin,
                    });
                }
            }
        }
        tree
    }
}

/// LightGBM-style classifier: quantile-histogram split finding with
/// leaf-wise (best-first) growth capped at `max_leaves`.
#[derive(Debug, Clone)]
pub struct LgbmClassifier {
    /// Boosting hyper-parameters.
    pub params: BoostParams,
    /// Number of histogram bins.
    pub max_bins: usize,
    base_score: f32,
    trees: Vec<LgbmTree>,
}

impl LgbmClassifier {
    /// Creates an unfitted model.
    pub fn new(params: BoostParams, max_bins: usize) -> Self {
        LgbmClassifier {
            params,
            max_bins,
            base_score: 0.0,
            trees: Vec::new(),
        }
    }
}

impl Default for LgbmClassifier {
    fn default() -> Self {
        LgbmClassifier::new(BoostParams::default(), 48)
    }
}

impl Classifier for LgbmClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        let n = x.rows();
        let binned = BinnedData::fit(x, self.max_bins);
        let prior = positive_rate(y).clamp(1e-5, 1.0 - 1e-5);
        self.base_score = (prior / (1.0 - prior)).ln();
        self.trees.clear();
        let mut scores = vec![self.base_score; n];
        let mut g = vec![0.0f32; n];
        let mut h = vec![0.0f32; n];
        for _ in 0..self.params.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                g[i] = p - y[i] as f32;
                h[i] = (p * (1.0 - p)).max(1e-8);
            }
            let tree = LgbmTree::fit(x, &binned, &g, &h, &self.params);
            #[allow(clippy::needless_range_loop)] // i indexes scores and x rows
            for i in 0..n {
                scores[i] += self.params.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "predict before fit");
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                let score: f32 = self.base_score
                    + self
                        .trees
                        .iter()
                        .map(|t| self.params.learning_rate * t.predict_row(row))
                        .sum::<f32>();
                sigmoid(score)
            })
            .collect()
    }

    fn export_state(&self) -> Vec<u8> {
        export_split_forest(
            self.base_score,
            &self.trees,
            |t| t.nodes.as_slice(),
            |n| (n.feature, n.threshold, n.left, n.right, n.weight, n.is_leaf),
        )
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        let (base_score, trees) = import_split_forest(
            bytes,
            "lightgbm state",
            |(feature, threshold, left, right, weight, is_leaf)| LgbmNode {
                feature,
                threshold,
                left,
                right,
                weight,
                is_leaf,
            },
            |nodes| LgbmTree { nodes },
        )?;
        self.base_score = base_score;
        self.trees = trees;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// CatBoost-style trees (oblivious/symmetric)
// ---------------------------------------------------------------------------

/// One oblivious tree: the same `(feature, threshold)` test at every node of
/// a level, so a depth-`d` tree is `d` tests and `2^d` leaf weights.
#[derive(Debug, Clone)]
struct ObliviousTree {
    features: Vec<u32>,
    thresholds: Vec<f32>,
    leaves: Vec<f32>,
}

impl ObliviousTree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        let mut leaf = 0usize;
        for (l, (&f, &t)) in self.features.iter().zip(&self.thresholds).enumerate() {
            if row[f as usize] > t {
                leaf |= 1 << l;
            }
        }
        self.leaves[leaf]
    }

    fn fit(
        x: &Matrix,
        binned: &BinnedData,
        g: &[f32],
        h: &[f32],
        params: &BoostParams,
    ) -> ObliviousTree {
        let n = x.rows();
        let mut leaf_of = vec![0usize; n];
        let mut features = Vec::new();
        let mut thresholds = Vec::new();

        for level in 0..params.max_depth {
            let n_groups = 1usize << level;
            // For each candidate (feature, bin): score = Σ_groups split score.
            let mut best: Option<(f32, usize, usize)> = None;
            for f in 0..binned.bins.len() {
                let nb = binned.n_bins(f);
                if nb < 2 {
                    continue;
                }
                // Histograms per (group, bin).
                let mut hist_g = vec![0.0f32; n_groups * nb];
                let mut hist_h = vec![0.0f32; n_groups * nb];
                for i in 0..n {
                    let slot = leaf_of[i] * nb + binned.bins[f][i] as usize;
                    hist_g[slot] += g[i];
                    hist_h[slot] += h[i];
                }
                for b in 0..nb - 1 {
                    let mut score = 0.0f32;
                    let mut valid = false;
                    for grp in 0..n_groups {
                        let (mut gl, mut hl, mut gt, mut ht) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                        for bb in 0..nb {
                            let slot = grp * nb + bb;
                            gt += hist_g[slot];
                            ht += hist_h[slot];
                            if bb <= b {
                                gl += hist_g[slot];
                                hl += hist_h[slot];
                            }
                        }
                        let (gr, hr) = (gt - gl, ht - hl);
                        score += gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda);
                        if hl >= params.min_child_weight && hr >= params.min_child_weight {
                            valid = true;
                        }
                    }
                    if valid {
                        match best {
                            Some((bs, _, _)) if score <= bs => {}
                            _ => best = Some((score, f, b)),
                        }
                    }
                }
            }
            let Some((_, f, b)) = best else {
                break;
            };
            let t = binned.threshold(f, b);
            features.push(f as u32);
            thresholds.push(t);
            #[allow(clippy::needless_range_loop)] // i indexes bins and leaf_of
            for i in 0..n {
                if binned.bins[f][i] as usize > b {
                    leaf_of[i] |= 1 << level;
                }
            }
        }

        let n_leaves = 1usize << features.len();
        let mut gsum = vec![0.0f32; n_leaves];
        let mut hsum = vec![0.0f32; n_leaves];
        for i in 0..n {
            gsum[leaf_of[i]] += g[i];
            hsum[leaf_of[i]] += h[i];
        }
        let leaves: Vec<f32> = gsum
            .iter()
            .zip(&hsum)
            .map(|(gs, hs)| -gs / (hs + params.lambda))
            .collect();
        ObliviousTree {
            features,
            thresholds,
            leaves,
        }
    }
}

/// CatBoost-style classifier: gradient boosting over oblivious (symmetric)
/// trees on quantile-binned features.
#[derive(Debug, Clone)]
pub struct CatBoostClassifier {
    /// Boosting hyper-parameters (`max_depth` = oblivious-tree depth).
    pub params: BoostParams,
    /// Number of histogram bins.
    pub max_bins: usize,
    base_score: f32,
    trees: Vec<ObliviousTree>,
}

impl CatBoostClassifier {
    /// Creates an unfitted model.
    pub fn new(params: BoostParams, max_bins: usize) -> Self {
        CatBoostClassifier {
            params,
            max_bins,
            base_score: 0.0,
            trees: Vec::new(),
        }
    }
}

impl Default for CatBoostClassifier {
    fn default() -> Self {
        CatBoostClassifier::new(
            BoostParams {
                max_depth: 5,
                ..BoostParams::default()
            },
            48,
        )
    }
}

impl Classifier for CatBoostClassifier {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        validate_fit_inputs(x, y);
        let n = x.rows();
        let binned = BinnedData::fit(x, self.max_bins);
        let prior = positive_rate(y).clamp(1e-5, 1.0 - 1e-5);
        self.base_score = (prior / (1.0 - prior)).ln();
        self.trees.clear();
        let mut scores = vec![self.base_score; n];
        let mut g = vec![0.0f32; n];
        let mut h = vec![0.0f32; n];
        for _ in 0..self.params.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                g[i] = p - y[i] as f32;
                h[i] = (p * (1.0 - p)).max(1e-8);
            }
            let tree = ObliviousTree::fit(x, &binned, &g, &h, &self.params);
            #[allow(clippy::needless_range_loop)] // i indexes scores and x rows
            for i in 0..n {
                scores[i] += self.params.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "predict before fit");
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                let score: f32 = self.base_score
                    + self
                        .trees
                        .iter()
                        .map(|t| self.params.learning_rate * t.predict_row(row))
                        .sum::<f32>();
                sigmoid(score)
            })
            .collect()
    }

    fn export_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_f32(self.base_score);
        w.put_u32(self.trees.len() as u32);
        for tree in &self.trees {
            w.put_u32_slice(&tree.features);
            w.put_f32_slice(&tree.thresholds);
            w.put_f32_slice(&tree.leaves);
        }
        w.into_bytes()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let base_score = r.take_f32()?;
        // Each serialized oblivious tree is at least three 8-byte counts.
        let count = checked_u32_count(&mut r, 24, "oblivious tree list")?;
        let mut trees = Vec::with_capacity(count);
        for i in 0..count {
            let features = r.take_u32_slice()?;
            let thresholds = r.take_f32_slice()?;
            let leaves = r.take_f32_slice()?;
            // Depth bound first: it caps the 1 << len below (a 64+-test
            // tree would overflow the shift) and no sane oblivious tree
            // exceeds it (training depth is single digits).
            if features.len() > 32 {
                return Err(ArtifactError::Corrupt(format!(
                    "oblivious tree {i}: implausible depth {}",
                    features.len()
                )));
            }
            if thresholds.len() != features.len() || leaves.len() != 1usize << features.len() {
                return Err(ArtifactError::Corrupt(format!(
                    "oblivious tree {i}: {} tests, {} thresholds, {} leaves",
                    features.len(),
                    thresholds.len(),
                    leaves.len()
                )));
            }
            trees.push(ObliviousTree {
                features,
                thresholds,
                leaves,
            });
        }
        r.expect_exhausted("catboost state")?;
        self.base_score = base_score;
        self.trees = trees;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(&rows), y)
    }

    fn accuracy(pred: &[u8], y: &[u8]) -> f32 {
        pred.iter().zip(y).filter(|(a, b)| a == b).count() as f32 / y.len() as f32
    }

    fn small_params() -> BoostParams {
        BoostParams {
            n_rounds: 40,
            ..BoostParams::default()
        }
    }

    #[test]
    fn xgb_learns_xor() {
        let (x, y) = xor_data(400, 1);
        let mut m = XgbClassifier::new(small_params());
        m.fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.97);
    }

    #[test]
    fn lgbm_learns_xor() {
        let (x, y) = xor_data(400, 2);
        let mut m = LgbmClassifier::new(small_params(), 32);
        m.fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.96);
    }

    #[test]
    fn catboost_learns_xor() {
        let (x, y) = xor_data(400, 3);
        let mut m = CatBoostClassifier::new(small_params(), 32);
        m.fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn binning_respects_order() {
        let x = Matrix::from_rows(&[vec![1.0], vec![5.0], vec![2.0], vec![9.0]]);
        let b = BinnedData::fit(&x, 4);
        // Bin ids must be monotone in the raw value.
        let bins = &b.bins[0];
        assert!(bins[0] <= bins[2] && bins[2] <= bins[1] && bins[1] <= bins[3]);
    }

    #[test]
    fn base_score_matches_prior_on_constant_data() {
        // With constant features, every model predicts (close to) the prior.
        let x = Matrix::from_rows(&vec![vec![1.0]; 10]);
        let y = [1, 1, 1, 1, 1, 1, 0, 0, 0, 0];
        let mut m = XgbClassifier::new(BoostParams {
            n_rounds: 5,
            ..BoostParams::default()
        });
        m.fit(&x, &y);
        let p = m.predict_proba(&x)[0];
        assert!((p - 0.6).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn oblivious_tree_is_symmetric() {
        let (x, y) = xor_data(200, 5);
        let mut m = CatBoostClassifier::new(
            BoostParams {
                n_rounds: 1,
                max_depth: 3,
                ..BoostParams::default()
            },
            16,
        );
        m.fit(&x, &y);
        let t = &m.trees[0];
        assert!(t.features.len() <= 3);
        assert_eq!(t.leaves.len(), 1 << t.features.len());
    }

    #[test]
    fn probabilities_bounded_all_variants() {
        let (x, y) = xor_data(150, 7);
        let mut xgb = XgbClassifier::new(small_params());
        let mut lgb = LgbmClassifier::new(small_params(), 16);
        let mut cat = CatBoostClassifier::new(small_params(), 16);
        xgb.fit(&x, &y);
        lgb.fit(&x, &y);
        cat.fit(&x, &y);
        for p in xgb
            .predict_proba(&x)
            .into_iter()
            .chain(lgb.predict_proba(&x))
            .chain(cat.predict_proba(&x))
        {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
