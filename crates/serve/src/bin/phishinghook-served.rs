//! `phishinghook-served <artifact.phk> [bind-addr]`
//!
//! Loads a saved artifact once (single read, zero-copy section slices)
//! and serves it over HTTP with the micro-batching queue. The artifact
//! type is sniffed from its sections: a container with a `cascade`
//! section starts the two-stage cascade engine (cheap calibrated screen
//! → uncertainty-band escalation → deep confirmer), anything else the
//! flat single-detector engine. The queue knobs come from the
//! environment:
//!
//! * `PHISHINGHOOK_MAX_BATCH` — jobs coalesced per model call (default 64)
//! * `PHISHINGHOOK_BATCH_WAIT_US` — max coalescing wait (default 200)
//! * `PHISHINGHOOK_QUEUE_CAP` — queue bound; overflow answers 429 (default 1024)
//! * `PHISHINGHOOK_SERVE_WORKERS` — warm worker pool size (default: available cores)

use phishinghook::{CascadeDetector, Detector};
use phishinghook_artifact::OwnedArtifact;
use phishinghook_serve::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: phishinghook-served <artifact.phk> [bind-addr]");
        return ExitCode::from(2);
    };
    let bind = args.next().unwrap_or_else(|| "127.0.0.1:7877".to_string());

    let artifact = match OwnedArtifact::open(&path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("phishinghook-served: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServerConfig::from_env();

    // Sniff the artifact type: a cascade container carries a "cascade"
    // section; a flat detector does not.
    let (server, banner) = if artifact.section("cascade").is_ok() {
        let cascade = match CascadeDetector::from_artifact(&artifact) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("phishinghook-served: cannot decode {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let banner = format!(
            "cascade {} → {} (band [{:.3}, {:.3}], budget {:.0}%)",
            cascade.screen().kind().id(),
            cascade.confirm().kind().id(),
            cascade.band().0,
            cascade.band().1,
            cascade.escalate_budget() * 100.0
        );
        match Server::start_cascade(Arc::new(cascade), bind.as_str(), cfg) {
            Ok(s) => (s, banner),
            Err(e) => {
                eprintln!("phishinghook-served: cannot bind {bind}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let detector = match Detector::from_artifact(&artifact) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("phishinghook-served: cannot decode {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let kind = detector.kind();
        let banner = format!("{} ({})", kind.name(), kind.id());
        match Server::start(Arc::new(detector), bind.as_str(), cfg) {
            Ok(s) => (s, banner),
            Err(e) => {
                eprintln!("phishinghook-served: cannot bind {bind}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "phishinghook-served: {banner} listening on http://{}",
        server.local_addr()
    );
    println!(
        "  max_batch={} batch_wait={}us queue_cap={} workers={}",
        cfg.queue.max_batch,
        cfg.queue.batch_wait.as_micros(),
        cfg.queue.capacity,
        cfg.queue.workers
    );
    println!("  POST /predict {{\"bytecode\":\"0x…\"}} | POST /predict_batch {{\"contracts\":[…]}} | GET /healthz");

    // Serve until killed; the acceptor and workers own their threads.
    loop {
        std::thread::park();
    }
}
