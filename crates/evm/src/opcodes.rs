//! The EVM opcode registry for the Shanghai fork.
//!
//! This is the substrate behind the paper's Table I: all **144** opcodes that
//! exist as of the Shanghai update (block 17,034,870), each with its byte
//! value, mnemonic, static gas cost, immediate-operand width and a short
//! description. The registry includes the two opcodes the paper had to add to
//! `evmdasm` ([`PUSH0`](op::PUSH0) and [`INVALID`](op::INVALID)).
//!
//! # Examples
//!
//! ```
//! use phishinghook_evm::opcodes::{opcode_info, SHANGHAI_OPCODE_COUNT};
//!
//! let add = opcode_info(0x01).expect("ADD is defined");
//! assert_eq!(add.mnemonic, "ADD");
//! assert_eq!(add.gas, Some(3));
//! assert_eq!(SHANGHAI_OPCODE_COUNT, 144);
//! ```

use std::fmt;

/// Functional category of an opcode, following the grouping of the Yellow
/// Paper's Appendix H.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// `STOP` and arithmetic operations (`ADD`, `MUL`, ...).
    StopArithmetic,
    /// Comparison and bitwise logic (`LT`, `AND`, `SHL`, ...).
    ComparisonBitwise,
    /// Keccak-256 hashing (`SHA3`).
    Sha3,
    /// Environmental information (`ADDRESS`, `CALLER`, `CALLDATALOAD`, ...).
    Environment,
    /// Block information (`TIMESTAMP`, `NUMBER`, ...).
    Block,
    /// Stack, memory, storage and flow operations (`POP`, `MLOAD`, `JUMP`, ...).
    StackMemoryFlow,
    /// Push operations (`PUSH0`..`PUSH32`).
    Push,
    /// Duplication operations (`DUP1`..`DUP16`).
    Dup,
    /// Exchange operations (`SWAP1`..`SWAP16`).
    Swap,
    /// Logging operations (`LOG0`..`LOG4`).
    Log,
    /// System operations (`CREATE`, `CALL`, `REVERT`, `SELFDESTRUCT`, ...).
    System,
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpCategory::StopArithmetic => "stop/arithmetic",
            OpCategory::ComparisonBitwise => "comparison/bitwise",
            OpCategory::Sha3 => "sha3",
            OpCategory::Environment => "environment",
            OpCategory::Block => "block",
            OpCategory::StackMemoryFlow => "stack/memory/flow",
            OpCategory::Push => "push",
            OpCategory::Dup => "dup",
            OpCategory::Swap => "swap",
            OpCategory::Log => "log",
            OpCategory::System => "system",
        };
        f.write_str(name)
    }
}

/// Static metadata describing one EVM opcode.
///
/// The `gas` field is the *static* cost from the Shanghai gas schedule;
/// dynamic components (memory expansion, cold-access surcharges, ...) are out
/// of scope, exactly as in the paper's disassembly output. `INVALID` carries
/// no cost (the paper's Table I prints `NaN`), represented here as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpcodeInfo {
    /// Encoded byte value (e.g. `0x01` for `ADD`).
    pub byte: u8,
    /// Human-readable mnemonic (e.g. `"ADD"`).
    pub mnemonic: &'static str,
    /// Static gas cost; `None` for the designated `INVALID` instruction.
    pub gas: Option<u32>,
    /// Number of immediate operand bytes following the opcode (`PUSHn` only).
    pub immediates: u8,
    /// Functional category.
    pub category: OpCategory,
    /// One-line description, following Table I of the paper.
    pub description: &'static str,
}

impl OpcodeInfo {
    /// Returns `true` if this opcode carries inline immediate bytes.
    pub fn has_immediates(&self) -> bool {
        self.immediates > 0
    }

    /// Returns `true` for opcodes that unconditionally end a basic block
    /// (`STOP`, `RETURN`, `REVERT`, `INVALID`, `SELFDESTRUCT`, `JUMP`).
    pub fn is_terminator(&self) -> bool {
        matches!(self.byte, 0x00 | 0x56 | 0xF3 | 0xFD | 0xFE | 0xFF)
    }
}

impl fmt::Display for OpcodeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic)
    }
}

macro_rules! opcode_table {
    ($(($byte:expr, $name:ident, $gas:expr, $imm:expr, $cat:ident, $desc:expr)),+ $(,)?) => {
        /// Byte constants for every Shanghai opcode, for programmatic
        /// bytecode construction.
        ///
        /// # Examples
        ///
        /// ```
        /// use phishinghook_evm::opcodes::op;
        /// let prologue = [op::PUSH1, 0x80, op::PUSH1, 0x40, op::MSTORE];
        /// assert_eq!(prologue[4], 0x52);
        /// ```
        pub mod op {
            $(#[doc = $desc] pub const $name: u8 = $byte;)+
        }

        /// All opcodes defined in the Shanghai fork, in ascending byte order.
        pub static SHANGHAI_OPCODES: &[OpcodeInfo] = &[
            $(OpcodeInfo {
                byte: $byte,
                mnemonic: stringify!($name),
                gas: $gas,
                immediates: $imm,
                category: OpCategory::$cat,
                description: $desc,
            }),+
        ];
    };
}

#[rustfmt::skip]
opcode_table! {
    (0x00, STOP,           Some(0),     0, StopArithmetic,    "Halts execution"),
    (0x01, ADD,            Some(3),     0, StopArithmetic,    "Addition operation"),
    (0x02, MUL,            Some(5),     0, StopArithmetic,    "Multiplication operation"),
    (0x03, SUB,            Some(3),     0, StopArithmetic,    "Subtraction operation"),
    (0x04, DIV,            Some(5),     0, StopArithmetic,    "Integer division operation"),
    (0x05, SDIV,           Some(5),     0, StopArithmetic,    "Signed integer division operation (truncated)"),
    (0x06, MOD,            Some(5),     0, StopArithmetic,    "Modulo remainder operation"),
    (0x07, SMOD,           Some(5),     0, StopArithmetic,    "Signed modulo remainder operation"),
    (0x08, ADDMOD,         Some(8),     0, StopArithmetic,    "Modulo addition operation"),
    (0x09, MULMOD,         Some(8),     0, StopArithmetic,    "Modulo multiplication operation"),
    (0x0A, EXP,            Some(10),    0, StopArithmetic,    "Exponential operation"),
    (0x0B, SIGNEXTEND,     Some(5),     0, StopArithmetic,    "Extend length of two's complement signed integer"),
    (0x10, LT,             Some(3),     0, ComparisonBitwise, "Less-than comparison"),
    (0x11, GT,             Some(3),     0, ComparisonBitwise, "Greater-than comparison"),
    (0x12, SLT,            Some(3),     0, ComparisonBitwise, "Signed less-than comparison"),
    (0x13, SGT,            Some(3),     0, ComparisonBitwise, "Signed greater-than comparison"),
    (0x14, EQ,             Some(3),     0, ComparisonBitwise, "Equality comparison"),
    (0x15, ISZERO,         Some(3),     0, ComparisonBitwise, "Is-zero comparison"),
    (0x16, AND,            Some(3),     0, ComparisonBitwise, "Bitwise AND operation"),
    (0x17, OR,             Some(3),     0, ComparisonBitwise, "Bitwise OR operation"),
    (0x18, XOR,            Some(3),     0, ComparisonBitwise, "Bitwise XOR operation"),
    (0x19, NOT,            Some(3),     0, ComparisonBitwise, "Bitwise NOT operation"),
    (0x1A, BYTE,           Some(3),     0, ComparisonBitwise, "Retrieve single byte from word"),
    (0x1B, SHL,            Some(3),     0, ComparisonBitwise, "Left shift operation"),
    (0x1C, SHR,            Some(3),     0, ComparisonBitwise, "Logical right shift operation"),
    (0x1D, SAR,            Some(3),     0, ComparisonBitwise, "Arithmetic (signed) right shift operation"),
    (0x20, SHA3,           Some(30),    0, Sha3,              "Compute Keccak-256 hash"),
    (0x30, ADDRESS,        Some(2),     0, Environment,       "Get address of currently executing account"),
    (0x31, BALANCE,        Some(100),   0, Environment,       "Get balance of the given account"),
    (0x32, ORIGIN,         Some(2),     0, Environment,       "Get execution origination address"),
    (0x33, CALLER,         Some(2),     0, Environment,       "Get caller address"),
    (0x34, CALLVALUE,      Some(2),     0, Environment,       "Get deposited value by the instruction/transaction"),
    (0x35, CALLDATALOAD,   Some(3),     0, Environment,       "Get input data of current environment"),
    (0x36, CALLDATASIZE,   Some(2),     0, Environment,       "Get size of input data in current environment"),
    (0x37, CALLDATACOPY,   Some(3),     0, Environment,       "Copy input data in current environment to memory"),
    (0x38, CODESIZE,       Some(2),     0, Environment,       "Get size of code running in current environment"),
    (0x39, CODECOPY,       Some(3),     0, Environment,       "Copy code running in current environment to memory"),
    (0x3A, GASPRICE,       Some(2),     0, Environment,       "Get price of gas in current environment"),
    (0x3B, EXTCODESIZE,    Some(100),   0, Environment,       "Get size of an account's code"),
    (0x3C, EXTCODECOPY,    Some(100),   0, Environment,       "Copy an account's code to memory"),
    (0x3D, RETURNDATASIZE, Some(2),     0, Environment,       "Get size of output data from the previous call"),
    (0x3E, RETURNDATACOPY, Some(3),     0, Environment,       "Copy output data from the previous call to memory"),
    (0x3F, EXTCODEHASH,    Some(100),   0, Environment,       "Get hash of an account's code"),
    (0x40, BLOCKHASH,      Some(20),    0, Block,             "Get the hash of one of the 256 most recent blocks"),
    (0x41, COINBASE,       Some(2),     0, Block,             "Get the block's beneficiary address"),
    (0x42, TIMESTAMP,      Some(2),     0, Block,             "Get the block's timestamp"),
    (0x43, NUMBER,         Some(2),     0, Block,             "Get the block's number"),
    (0x44, PREVRANDAO,     Some(2),     0, Block,             "Get the previous block's RANDAO mix"),
    (0x45, GASLIMIT,       Some(2),     0, Block,             "Get the block's gas limit"),
    (0x46, CHAINID,        Some(2),     0, Block,             "Get the chain ID"),
    (0x47, SELFBALANCE,    Some(5),     0, Block,             "Get balance of currently executing account"),
    (0x48, BASEFEE,        Some(2),     0, Block,             "Get the base fee"),
    (0x50, POP,            Some(2),     0, StackMemoryFlow,   "Remove item from stack"),
    (0x51, MLOAD,          Some(3),     0, StackMemoryFlow,   "Load word from memory"),
    (0x52, MSTORE,         Some(3),     0, StackMemoryFlow,   "Save word to memory"),
    (0x53, MSTORE8,        Some(3),     0, StackMemoryFlow,   "Save byte to memory"),
    (0x54, SLOAD,          Some(100),   0, StackMemoryFlow,   "Load word from storage"),
    (0x55, SSTORE,         Some(100),   0, StackMemoryFlow,   "Save word to storage"),
    (0x56, JUMP,           Some(8),     0, StackMemoryFlow,   "Alter the program counter"),
    (0x57, JUMPI,          Some(10),    0, StackMemoryFlow,   "Conditionally alter the program counter"),
    (0x58, PC,             Some(2),     0, StackMemoryFlow,   "Get the value of the program counter"),
    (0x59, MSIZE,          Some(2),     0, StackMemoryFlow,   "Get the size of active memory in bytes"),
    (0x5A, GAS,            Some(2),     0, StackMemoryFlow,   "Get the amount of available gas"),
    (0x5B, JUMPDEST,       Some(1),     0, StackMemoryFlow,   "Mark a valid destination for jumps"),
    (0x5F, PUSH0,          Some(2),     0, Push,              "Place value 0 on stack"),
    (0x60, PUSH1,          Some(3),     1, Push,              "Place 1-byte item on stack"),
    (0x61, PUSH2,          Some(3),     2, Push,              "Place 2-byte item on stack"),
    (0x62, PUSH3,          Some(3),     3, Push,              "Place 3-byte item on stack"),
    (0x63, PUSH4,          Some(3),     4, Push,              "Place 4-byte item on stack"),
    (0x64, PUSH5,          Some(3),     5, Push,              "Place 5-byte item on stack"),
    (0x65, PUSH6,          Some(3),     6, Push,              "Place 6-byte item on stack"),
    (0x66, PUSH7,          Some(3),     7, Push,              "Place 7-byte item on stack"),
    (0x67, PUSH8,          Some(3),     8, Push,              "Place 8-byte item on stack"),
    (0x68, PUSH9,          Some(3),     9, Push,              "Place 9-byte item on stack"),
    (0x69, PUSH10,         Some(3),    10, Push,              "Place 10-byte item on stack"),
    (0x6A, PUSH11,         Some(3),    11, Push,              "Place 11-byte item on stack"),
    (0x6B, PUSH12,         Some(3),    12, Push,              "Place 12-byte item on stack"),
    (0x6C, PUSH13,         Some(3),    13, Push,              "Place 13-byte item on stack"),
    (0x6D, PUSH14,         Some(3),    14, Push,              "Place 14-byte item on stack"),
    (0x6E, PUSH15,         Some(3),    15, Push,              "Place 15-byte item on stack"),
    (0x6F, PUSH16,         Some(3),    16, Push,              "Place 16-byte item on stack"),
    (0x70, PUSH17,         Some(3),    17, Push,              "Place 17-byte item on stack"),
    (0x71, PUSH18,         Some(3),    18, Push,              "Place 18-byte item on stack"),
    (0x72, PUSH19,         Some(3),    19, Push,              "Place 19-byte item on stack"),
    (0x73, PUSH20,         Some(3),    20, Push,              "Place 20-byte item on stack"),
    (0x74, PUSH21,         Some(3),    21, Push,              "Place 21-byte item on stack"),
    (0x75, PUSH22,         Some(3),    22, Push,              "Place 22-byte item on stack"),
    (0x76, PUSH23,         Some(3),    23, Push,              "Place 23-byte item on stack"),
    (0x77, PUSH24,         Some(3),    24, Push,              "Place 24-byte item on stack"),
    (0x78, PUSH25,         Some(3),    25, Push,              "Place 25-byte item on stack"),
    (0x79, PUSH26,         Some(3),    26, Push,              "Place 26-byte item on stack"),
    (0x7A, PUSH27,         Some(3),    27, Push,              "Place 27-byte item on stack"),
    (0x7B, PUSH28,         Some(3),    28, Push,              "Place 28-byte item on stack"),
    (0x7C, PUSH29,         Some(3),    29, Push,              "Place 29-byte item on stack"),
    (0x7D, PUSH30,         Some(3),    30, Push,              "Place 30-byte item on stack"),
    (0x7E, PUSH31,         Some(3),    31, Push,              "Place 31-byte item on stack"),
    (0x7F, PUSH32,         Some(3),    32, Push,              "Place 32-byte (full word) item on stack"),
    (0x80, DUP1,           Some(3),     0, Dup,               "Duplicate 1st stack item"),
    (0x81, DUP2,           Some(3),     0, Dup,               "Duplicate 2nd stack item"),
    (0x82, DUP3,           Some(3),     0, Dup,               "Duplicate 3rd stack item"),
    (0x83, DUP4,           Some(3),     0, Dup,               "Duplicate 4th stack item"),
    (0x84, DUP5,           Some(3),     0, Dup,               "Duplicate 5th stack item"),
    (0x85, DUP6,           Some(3),     0, Dup,               "Duplicate 6th stack item"),
    (0x86, DUP7,           Some(3),     0, Dup,               "Duplicate 7th stack item"),
    (0x87, DUP8,           Some(3),     0, Dup,               "Duplicate 8th stack item"),
    (0x88, DUP9,           Some(3),     0, Dup,               "Duplicate 9th stack item"),
    (0x89, DUP10,          Some(3),     0, Dup,               "Duplicate 10th stack item"),
    (0x8A, DUP11,          Some(3),     0, Dup,               "Duplicate 11th stack item"),
    (0x8B, DUP12,          Some(3),     0, Dup,               "Duplicate 12th stack item"),
    (0x8C, DUP13,          Some(3),     0, Dup,               "Duplicate 13th stack item"),
    (0x8D, DUP14,          Some(3),     0, Dup,               "Duplicate 14th stack item"),
    (0x8E, DUP15,          Some(3),     0, Dup,               "Duplicate 15th stack item"),
    (0x8F, DUP16,          Some(3),     0, Dup,               "Duplicate 16th stack item"),
    (0x90, SWAP1,          Some(3),     0, Swap,              "Exchange 1st and 2nd stack items"),
    (0x91, SWAP2,          Some(3),     0, Swap,              "Exchange 1st and 3rd stack items"),
    (0x92, SWAP3,          Some(3),     0, Swap,              "Exchange 1st and 4th stack items"),
    (0x93, SWAP4,          Some(3),     0, Swap,              "Exchange 1st and 5th stack items"),
    (0x94, SWAP5,          Some(3),     0, Swap,              "Exchange 1st and 6th stack items"),
    (0x95, SWAP6,          Some(3),     0, Swap,              "Exchange 1st and 7th stack items"),
    (0x96, SWAP7,          Some(3),     0, Swap,              "Exchange 1st and 8th stack items"),
    (0x97, SWAP8,          Some(3),     0, Swap,              "Exchange 1st and 9th stack items"),
    (0x98, SWAP9,          Some(3),     0, Swap,              "Exchange 1st and 10th stack items"),
    (0x99, SWAP10,         Some(3),     0, Swap,              "Exchange 1st and 11th stack items"),
    (0x9A, SWAP11,         Some(3),     0, Swap,              "Exchange 1st and 12th stack items"),
    (0x9B, SWAP12,         Some(3),     0, Swap,              "Exchange 1st and 13th stack items"),
    (0x9C, SWAP13,         Some(3),     0, Swap,              "Exchange 1st and 14th stack items"),
    (0x9D, SWAP14,         Some(3),     0, Swap,              "Exchange 1st and 15th stack items"),
    (0x9E, SWAP15,         Some(3),     0, Swap,              "Exchange 1st and 16th stack items"),
    (0x9F, SWAP16,         Some(3),     0, Swap,              "Exchange 1st and 17th stack items"),
    (0xA0, LOG0,           Some(375),   0, Log,               "Append log record with no topics"),
    (0xA1, LOG1,           Some(750),   0, Log,               "Append log record with one topic"),
    (0xA2, LOG2,           Some(1125),  0, Log,               "Append log record with two topics"),
    (0xA3, LOG3,           Some(1500),  0, Log,               "Append log record with three topics"),
    (0xA4, LOG4,           Some(1875),  0, Log,               "Append log record with four topics"),
    (0xF0, CREATE,         Some(32000), 0, System,            "Create a new account with associated code"),
    (0xF1, CALL,           Some(100),   0, System,            "Message-call into an account"),
    (0xF2, CALLCODE,       Some(100),   0, System,            "Message-call into this account with an alternative account's code"),
    (0xF3, RETURN,         Some(0),     0, System,            "Halt execution returning output data"),
    (0xF4, DELEGATECALL,   Some(100),   0, System,            "Message-call into this account with an alternative account's code, persisting sender and value"),
    (0xF5, CREATE2,        Some(32000), 0, System,            "Create a new account with associated code at a predictable address"),
    (0xFA, STATICCALL,     Some(100),   0, System,            "Static message-call into an account"),
    (0xFD, REVERT,         Some(0),     0, System,            "Halt execution reverting state changes but returning data and remaining gas"),
    (0xFE, INVALID,        None,        0, System,            "Designated invalid instruction"),
    (0xFF, SELFDESTRUCT,   Some(5000),  0, System,            "Halt execution and register account for later deletion"),
}

/// Number of opcodes defined in the Shanghai fork (the paper's "144 opcodes").
pub const SHANGHAI_OPCODE_COUNT: usize = SHANGHAI_OPCODES.len();

/// 256-entry lookup table from byte value to index in [`SHANGHAI_OPCODES`].
static LUT: [i16; 256] = {
    let mut lut = [-1i16; 256];
    let mut i = 0;
    while i < SHANGHAI_OPCODES.len() {
        lut[SHANGHAI_OPCODES[i].byte as usize] = i as i16;
        i += 1;
    }
    lut
};

/// Looks up the Shanghai opcode for a byte value.
///
/// Returns `None` for the 112 byte values that are unassigned in the Shanghai
/// fork (such bytes execute as invalid instructions on chain).
///
/// # Examples
///
/// ```
/// use phishinghook_evm::opcodes::opcode_info;
/// assert_eq!(opcode_info(0x52).unwrap().mnemonic, "MSTORE");
/// assert!(opcode_info(0x0C).is_none());
/// ```
pub fn opcode_info(byte: u8) -> Option<&'static OpcodeInfo> {
    let idx = LUT[byte as usize];
    if idx < 0 {
        None
    } else {
        Some(&SHANGHAI_OPCODES[idx as usize])
    }
}

/// Looks up an opcode by its mnemonic (case-sensitive, e.g. `"MSTORE"`).
///
/// # Examples
///
/// ```
/// use phishinghook_evm::opcodes::opcode_by_mnemonic;
/// assert_eq!(opcode_by_mnemonic("PUSH0").unwrap().byte, 0x5F);
/// assert!(opcode_by_mnemonic("mstore").is_none());
/// ```
pub fn opcode_by_mnemonic(mnemonic: &str) -> Option<&'static OpcodeInfo> {
    SHANGHAI_OPCODES.iter().find(|o| o.mnemonic == mnemonic)
}

/// Returns `true` if `byte` is assigned in the Shanghai fork.
pub fn is_defined(byte: u8) -> bool {
    LUT[byte as usize] >= 0
}

/// Returns the number of immediate bytes that follow `byte` in a code stream
/// (non-zero only for `PUSH1`..`PUSH32`; unassigned bytes take none).
pub fn immediate_len(byte: u8) -> usize {
    if (0x60..=0x7F).contains(&byte) {
        (byte - 0x5F) as usize
    } else {
        0
    }
}

/// Iterates over the mnemonics of all 144 Shanghai opcodes in byte order.
pub fn mnemonics() -> impl Iterator<Item = &'static str> {
    SHANGHAI_OPCODES.iter().map(|o| o.mnemonic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_exactly_144_opcodes() {
        assert_eq!(SHANGHAI_OPCODE_COUNT, 144);
    }

    #[test]
    fn bytes_are_unique_and_sorted() {
        let mut prev: i32 = -1;
        for info in SHANGHAI_OPCODES {
            assert!((info.byte as i32) > prev, "{} out of order", info.mnemonic);
            prev = info.byte as i32;
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<_> = mnemonics().collect();
        assert_eq!(set.len(), SHANGHAI_OPCODE_COUNT);
    }

    #[test]
    fn lookup_round_trips() {
        for info in SHANGHAI_OPCODES {
            assert_eq!(opcode_info(info.byte), Some(info));
            assert_eq!(opcode_by_mnemonic(info.mnemonic), Some(info));
        }
    }

    #[test]
    fn table_one_spot_checks() {
        // The rows printed in the paper's Table I.
        let stop = opcode_info(0x00).unwrap();
        assert_eq!((stop.mnemonic, stop.gas), ("STOP", Some(0)));
        let add = opcode_info(0x01).unwrap();
        assert_eq!((add.mnemonic, add.gas), ("ADD", Some(3)));
        let mul = opcode_info(0x02).unwrap();
        assert_eq!((mul.mnemonic, mul.gas), ("MUL", Some(5)));
        let revert = opcode_info(0xFD).unwrap();
        assert_eq!((revert.mnemonic, revert.gas), ("REVERT", Some(0)));
        let invalid = opcode_info(0xFE).unwrap();
        assert_eq!((invalid.mnemonic, invalid.gas), ("INVALID", None));
        let selfdestruct = opcode_info(0xFF).unwrap();
        assert_eq!(
            (selfdestruct.mnemonic, selfdestruct.gas),
            ("SELFDESTRUCT", Some(5000))
        );
    }

    #[test]
    fn shanghai_additions_present() {
        // The two opcodes the paper added to evmdasm.
        assert_eq!(opcode_info(0x5F).unwrap().mnemonic, "PUSH0");
        assert_eq!(opcode_info(0xFE).unwrap().mnemonic, "INVALID");
    }

    #[test]
    fn push_immediates_match_width() {
        for n in 1..=32u8 {
            let byte = 0x5F + n;
            let info = opcode_info(byte).unwrap();
            assert_eq!(info.immediates, n);
            assert_eq!(immediate_len(byte), n as usize);
        }
        assert_eq!(opcode_info(0x5F).unwrap().immediates, 0);
        assert_eq!(immediate_len(op::MSTORE), 0);
    }

    #[test]
    fn undefined_gaps_are_undefined() {
        for byte in [0x0Cu8, 0x0F, 0x1E, 0x21, 0x2F, 0x49, 0x5C, 0xA5, 0xEF, 0xFB] {
            assert!(opcode_info(byte).is_none(), "0x{byte:02X} should be a gap");
            assert!(!is_defined(byte));
        }
    }

    #[test]
    fn category_counts() {
        let count = |c: OpCategory| SHANGHAI_OPCODES.iter().filter(|o| o.category == c).count();
        assert_eq!(count(OpCategory::Push), 33); // PUSH0..PUSH32
        assert_eq!(count(OpCategory::Dup), 16);
        assert_eq!(count(OpCategory::Swap), 16);
        assert_eq!(count(OpCategory::Log), 5);
        assert_eq!(count(OpCategory::System), 10);
    }

    #[test]
    fn terminators() {
        for m in [
            "STOP",
            "RETURN",
            "REVERT",
            "INVALID",
            "SELFDESTRUCT",
            "JUMP",
        ] {
            assert!(opcode_by_mnemonic(m).unwrap().is_terminator());
        }
        assert!(!opcode_by_mnemonic("JUMPI").unwrap().is_terminator());
    }
}
