//! Acceptance test for the serving subsystem: a trained [`Detector`]'s
//! scores are bit-identical to the trait-dispatched evaluation path over
//! the same seed, and scoring N fresh contracts pays exactly N decodes.
//!
//! `decode_count()` is process-global, so exact-delta assertions are only
//! race-free when nothing else in the process builds caches concurrently.
//! This file deliberately contains exactly one test (the same convention as
//! `tests/evalstore_decode_once.rs`).

use phishinghook::prelude::*;
use phishinghook_evm::{decode_count, Bytecode, DisasmCache};
use phishinghook_serve::{MicroBatcher, QueueConfig};
use phishinghook_synth::{generate_contract, Difficulty, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fresh deployments the detector has never seen (synthesized directly,
/// not drawn from the training chain).
fn fresh_contracts(n: usize) -> Vec<Bytecode> {
    let mut rng = StdRng::seed_from_u64(0xF5E5);
    (0..n)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(4),
                &Difficulty::default(),
                &mut rng,
            )
        })
        .collect()
}

#[test]
fn serving_matches_the_eval_path_and_decodes_each_contract_once() {
    let corpus = generate_corpus(&CorpusConfig::small(121));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let profile = EvalProfile::quick();
    let ctx = EvalContext::new(&dataset, &profile);
    let folds = dataset.stratified_folds(3, 7);
    let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);

    // --- Parity: Detector::score_batch == trait-dispatched eval path. ---
    // One classical kind, one deep kind, and the two-phase ESCORT protocol.
    for kind in [
        ModelKind::RandomForest,
        ModelKind::ScsGuard,
        ModelKind::Escort,
    ] {
        let detector = Detector::train_on(&ctx, kind, &train_idx, 7);

        // The evaluation path, spelled out: same factory, same gathered
        // store rows, same seed.
        let store = ctx.store();
        let matrix = store.matrix(kind.encoding());
        let mut model = kind.build(store.encoders(), &profile, 7);
        if model.wants_pretraining() {
            model.pretrain(
                &matrix.gather_rows(&train_idx),
                &ctx.gather_vuln(&train_idx),
            );
        }
        model.fit(
            &matrix.gather_rows(&train_idx),
            &ctx.gather_labels(&train_idx),
        );
        let eval_probs = model.predict_proba(&matrix.gather_rows(&test_idx));

        // The serving path re-encodes the held-out contracts from their
        // caches instead of gathering store rows.
        let test_caches: Vec<DisasmCache> =
            test_idx.iter().map(|&i| ctx.caches()[i].clone()).collect();
        let served = detector.score_batch(&test_caches);
        assert_eq!(
            served, eval_probs,
            "{kind}: serving scores must be bit-identical to the eval path"
        );
    }

    // --- Decode economy: N fresh contracts, exactly N decodes. ---
    let fresh = fresh_contracts(12);
    let detector = Detector::train(&ctx, ModelKind::RandomForest, 3);
    let before = decode_count();
    let scores = detector.score_codes(&fresh);
    assert_eq!(
        decode_count() - before,
        fresh.len() as u64,
        "scoring N fresh contracts must decode exactly N times"
    );
    assert_eq!(scores.len(), fresh.len());
    assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));

    // Single-contract serving agrees with the batch and adds one decode
    // per call.
    let before = decode_count();
    let solo = detector.score_code(&fresh[0]);
    assert_eq!(decode_count() - before, 1);
    assert_eq!(solo, scores[0]);

    // --- A zoo shares the decode AND the encoding pass. ---
    let zoo = ModelZoo::train(
        &ctx,
        &[ModelKind::RandomForest, ModelKind::Knn, ModelKind::ScsGuard],
        3,
    );
    let before = decode_count();
    let verdicts = zoo.score_codes(&fresh);
    assert_eq!(
        decode_count() - before,
        fresh.len() as u64,
        "a multi-model zoo still decodes each contract exactly once"
    );
    assert_eq!(verdicts.len(), fresh.len());
    for (i, per_model) in verdicts.iter().enumerate() {
        assert_eq!(per_model.len(), 3);
        // The zoo's RandomForest shares training seed + data with the solo
        // detector above: identical scores.
        assert_eq!(per_model[0].kind, ModelKind::RandomForest);
        assert_eq!(per_model[0].probability, scores[i]);
    }

    // --- Micro-batched serving is invisible in the scores. ---
    // The serving tier's queue coalesces concurrent requests into one
    // `score_codes` call; because batched inference is bit-identical to
    // row-wise inference, queue-coalesced scores must equal the direct
    // scores computed above — and pay the same one-decode-per-contract.
    let cfg = QueueConfig {
        max_batch: 5, // not a divisor of 12: exercises a ragged final batch
        batch_wait: std::time::Duration::from_micros(500),
        capacity: 64,
        workers: 2,
    };
    let batcher = MicroBatcher::start(std::sync::Arc::new(detector), cfg);
    let before = decode_count();
    let queued = batcher
        .submit_many(fresh.clone())
        .expect("queue accepts the batch");
    assert_eq!(
        queued, scores,
        "queue-coalesced scores must be bit-identical to direct scoring"
    );
    assert_eq!(
        decode_count() - before,
        fresh.len() as u64,
        "micro-batching adds no extra decodes"
    );

    // Concurrent solo submissions coalesce into shared batches; every
    // caller still sees its own exact score.
    let stats_before = batcher.stats();
    let before = decode_count();
    std::thread::scope(|s| {
        let handles: Vec<_> = fresh
            .iter()
            .zip(&scores)
            .map(|(code, &want)| {
                let batcher = &batcher;
                s.spawn(move || {
                    let got = batcher
                        .submit(code.clone())
                        .expect("queue accepts a solo job");
                    assert_eq!(got, want, "coalesced solo score must match direct scoring");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(decode_count() - before, fresh.len() as u64);
    let stats = batcher.stats();
    assert_eq!(stats.scored - stats_before.scored, fresh.len() as u64);
    batcher.shutdown();

    // The whole zoo behind the queue: same Verdict tree as direct scoring.
    let zoo_batcher = MicroBatcher::start(zoo, QueueConfig { workers: 1, ..cfg });
    let queued_verdicts = zoo_batcher
        .submit_many(fresh.clone())
        .expect("queue accepts the zoo batch");
    assert_eq!(
        queued_verdicts, verdicts,
        "every model kind in the zoo must score bit-identically through the queue"
    );
    zoo_batcher.shutdown();
}
