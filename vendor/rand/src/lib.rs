//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the surface the workspace uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded with SplitMix64), the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`, `fill`), [`SeedableRng`] and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but do
//! **not** match upstream `rand` bit-for-bit.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut iter = dest.chunks_exact_mut(8);
        for chunk in &mut iter {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = iter.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` (a `[u8]` slice or array) with random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled from their "standard" distribution
/// (`rand::distributions::Standard` equivalent).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that can be sampled uniformly (`rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::sample_standard(rng) % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::sample_standard(rng) % width) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Byte containers fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random bytes.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn fill_covers_arrays_and_slices() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut arr = [0u8; 13];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
        let mut v = [0u8; 9];
        rng.fill(&mut v[..]);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
