//! The multi-process shape of the ingestion loop: a pipeline fed by
//! *tailing a live CodeLog* written by a separate scanner process,
//! instead of replaying an in-process chain.
//!
//! ```text
//!  scanner process ──append_labeled──► <codelog>   (crash-prone; torn
//!        │                                          tails are normal)
//!        ▼
//!  CodeLogTailer — follow the journal across torn tails & rotations
//!        │ labeled records
//!        ▼
//!  bootstrap: first N labeled samples (both classes) → baseline train
//!        │                                → publish generation 1
//!        ▼
//!  OnlinePipeline::observe — drift watch → sliding-window retrain
//!        │                                → publish generation N
//!        ▼
//!  <publish-dir>/CURRENT — picked up by every watching serve replica
//! ```
//!
//! The tail driver never trips on a scanner crash: a torn final record
//! is a retryable [`CodeLogError::Truncated`] the tailer waits out, and
//! only real corruption or the idle timeout ([`CodeLogError::Stalled`])
//! ends the run — the latter cleanly, with the report so far.

use crate::pipeline::{IngestConfig, IngestReport, OnlinePipeline, RetrainEvent};
use phishinghook::retry::Clock;
use phishinghook::{Dataset, Detector, EvalContext, Sample};
use phishinghook_artifact::publish::{ArtifactPublisher, PublishedArtifact};
use phishinghook_artifact::ArtifactError;
use phishinghook_evm::{CodeLogError, CodeLogTailer, TailEvent};
use phishinghook_synth::Month;
use std::sync::Arc;

/// Default labeled-sample count collected before the baseline train
/// (`PHISHINGHOOK_BOOTSTRAP_MIN`).
pub const DEFAULT_BOOTSTRAP_MIN: usize = 96;

/// Knobs of one [`run_tail_pipeline`] run.
#[derive(Debug, Clone)]
pub struct TailIngestConfig {
    /// The drift/retrain pipeline configuration used after bootstrap.
    pub ingest: IngestConfig,
    /// Labeled samples collected before the baseline train; the train
    /// also waits for both classes to be present.
    pub bootstrap_min: usize,
}

impl Default for TailIngestConfig {
    fn default() -> Self {
        TailIngestConfig {
            ingest: IngestConfig::default(),
            bootstrap_min: DEFAULT_BOOTSTRAP_MIN,
        }
    }
}

impl TailIngestConfig {
    /// Defaults with the `PHISHINGHOOK_BOOTSTRAP_MIN` environment
    /// override applied.
    pub fn from_env() -> Self {
        let bootstrap_min = std::env::var("PHISHINGHOOK_BOOTSTRAP_MIN")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_BOOTSTRAP_MIN);
        TailIngestConfig {
            ingest: IngestConfig::default(),
            bootstrap_min,
        }
    }
}

/// A notable moment in a tail-driven run, for the caller's logging.
#[derive(Debug, Clone)]
pub enum TailNote {
    /// The baseline trained and published as the first generation.
    Bootstrapped {
        /// The published baseline artifact.
        published: PublishedArtifact,
        /// Labeled samples the baseline saw.
        samples: usize,
    },
    /// A drift signal retrained and republished.
    Retrained(RetrainEvent),
    /// The scanner rotated the journal out from under the tail.
    Rotated {
        /// The replacement journal's identity.
        log_id: u64,
    },
}

/// Why a tail-driven run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailExit {
    /// The journal went idle past the tail's idle timeout — the clean,
    /// expected exit for a finite scanner run.
    Stalled,
}

/// Counters of one completed [`run_tail_pipeline`] run.
#[derive(Debug, Clone)]
pub struct TailReport {
    /// Labeled samples consumed by the baseline bootstrap.
    pub bootstrapped: usize,
    /// Unlabeled (raw) records skipped — the pipeline trains on labels.
    pub unlabeled: usize,
    /// Journal rotations followed.
    pub rotations: u64,
    /// The post-bootstrap pipeline's counters (empty when the run
    /// stalled before bootstrap completed).
    pub pipeline: IngestReport,
    /// Every generation published, baseline included, in order.
    pub generations: Vec<u64>,
    /// Why the run ended.
    pub exit: TailExit,
}

/// A tail-driven run's error: the journal or the publisher failed.
#[derive(Debug)]
pub enum TailError {
    /// The journal is unreadable (corrupt record, bad header, I/O).
    Log(CodeLogError),
    /// Publishing an artifact failed.
    Artifact(ArtifactError),
}

impl std::fmt::Display for TailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailError::Log(e) => write!(f, "journal: {e}"),
            TailError::Artifact(e) => write!(f, "publish: {e}"),
        }
    }
}

impl std::error::Error for TailError {}

impl From<CodeLogError> for TailError {
    fn from(e: CodeLogError) -> Self {
        TailError::Log(e)
    }
}

impl From<ArtifactError> for TailError {
    fn from(e: ArtifactError) -> Self {
        TailError::Artifact(e)
    }
}

/// Drives a [`CodeLogTailer`] into an [`OnlinePipeline`]: bootstraps the
/// baseline from the first labeled records, then adapts online, calling
/// `on_note` at each bootstrap/retrain/rotation. Returns when the
/// journal stalls past the tail's idle timeout; a tail configured
/// without an idle timeout follows the journal forever.
///
/// # Errors
///
/// [`TailError::Log`] on a corrupt or unreadable journal (a *torn* tail
/// is not an error — the tailer waits it out), [`TailError::Artifact`]
/// on a failed publish.
pub fn run_tail_pipeline<C: Clock>(
    tailer: &mut CodeLogTailer<C>,
    publisher: &mut ArtifactPublisher,
    config: &TailIngestConfig,
    mut on_note: impl FnMut(&TailNote),
) -> Result<TailReport, TailError> {
    let mut bootstrap: Vec<Sample> = Vec::new();
    let mut pipeline: Option<OnlinePipeline> = None;
    let mut unlabeled = 0usize;
    let mut rotations = 0u64;
    let mut generations: Vec<u64> = Vec::new();

    loop {
        let entry = match tailer.next_event() {
            Ok(TailEvent::Record(entry)) => entry,
            Ok(TailEvent::Rotated { log_id }) => {
                rotations += 1;
                on_note(&TailNote::Rotated { log_id });
                continue;
            }
            Err(CodeLogError::Stalled { .. }) => break,
            Err(e) => return Err(e.into()),
        };
        let Some(meta) = entry.meta else {
            unlabeled += 1;
            continue;
        };
        let sample = Sample {
            bytecode: entry.code,
            label: meta.label,
            month: Month(meta.month.min(Month::LAST.0 as u16) as u8),
        };

        match pipeline.as_mut() {
            None => {
                bootstrap.push(sample);
                let positives = bootstrap.iter().filter(|s| s.label == 1).count();
                if bootstrap.len() < config.bootstrap_min
                    || positives == 0
                    || positives == bootstrap.len()
                {
                    continue;
                }
                let dataset = Dataset::new(bootstrap.clone());
                let ctx = EvalContext::new(&dataset, &config.ingest.profile);
                let baseline = Detector::train(&ctx, config.ingest.kind, config.ingest.seed);
                let published = publisher.publish(baseline.to_bytes())?;
                generations.push(published.generation);
                on_note(&TailNote::Bootstrapped {
                    published,
                    samples: dataset.len(),
                });
                pipeline = Some(OnlinePipeline::new(
                    Arc::new(baseline),
                    config.ingest.clone(),
                ));
            }
            Some(pipeline) => {
                if let Some(event) = pipeline.observe(sample, publisher)? {
                    generations.push(event.published.generation);
                    on_note(&TailNote::Retrained(event));
                }
            }
        }
    }

    Ok(TailReport {
        bootstrapped: bootstrap.len(),
        unlabeled,
        rotations,
        pipeline: pipeline
            .as_ref()
            .map(|p| p.report().clone())
            .unwrap_or_default(),
        generations,
        exit: TailExit::Stalled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook::retry::FakeClock;
    use phishinghook_evm::{CodeLogWriter, TailConfig};
    use phishinghook_synth::{generate_contract, ContractClass, Difficulty, Family};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join("phk_tail_tests")
            .join(format!("{tag}_{}", std::process::id()))
    }

    /// Appends `n` labeled records alternating classes across months.
    fn scan_into(writer: &mut CodeLogWriter, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let family = Family::ALL[i % Family::ALL.len()];
            let month = Month((i % 12) as u8);
            let code = generate_contract(family, month, &Difficulty::default(), &mut rng);
            let label = u8::from(family.class() == ContractClass::Phishing);
            writer.append_labeled(&code, label, month.0 as u16).unwrap();
        }
        writer.sync().unwrap();
    }

    #[test]
    fn tail_pipeline_bootstraps_and_stalls_cleanly() {
        let dir = temp_dir("bootstrap");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("scan.codelog");
        let mut writer = CodeLogWriter::create(&log).unwrap();
        scan_into(&mut writer, 80, 0x7A11);
        // One unlabeled raw record rides along and must be skipped.
        let mut rng = StdRng::seed_from_u64(9);
        writer
            .append(&generate_contract(
                Family::ALL[0],
                Month(3),
                &Difficulty::default(),
                &mut rng,
            ))
            .unwrap();
        writer.sync().unwrap();

        let clock = FakeClock::new();
        let mut tailer = CodeLogTailer::with_clock(
            &log,
            TailConfig {
                idle_timeout: Some(Duration::from_millis(300)),
                ..TailConfig::default()
            },
            clock,
        );
        let mut publisher = ArtifactPublisher::open(dir.join("artifacts")).unwrap();
        let config = TailIngestConfig {
            bootstrap_min: 48,
            ..TailIngestConfig::default()
        };
        let mut notes = Vec::new();
        let report = run_tail_pipeline(&mut tailer, &mut publisher, &config, |n| {
            notes.push(n.clone())
        })
        .unwrap();

        assert_eq!(report.exit, TailExit::Stalled);
        assert_eq!(report.unlabeled, 1);
        assert!(report.bootstrapped >= 48);
        assert_eq!(report.generations.first(), Some(&1));
        assert!(
            matches!(notes.first(), Some(TailNote::Bootstrapped { .. })),
            "first note is the bootstrap: {notes:?}"
        );
        // The published baseline is the live generation.
        let current = ArtifactPublisher::current(dir.join("artifacts"))
            .unwrap()
            .unwrap();
        assert_eq!(Some(&current.generation), report.generations.last());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_pipeline_waits_out_a_torn_tail() {
        let dir = temp_dir("torn");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("scan.codelog");
        let mut writer = CodeLogWriter::create(&log).unwrap();
        scan_into(&mut writer, 60, 0x7EA2);
        drop(writer);

        // Tear the tail the way a killed scanner would: half a record.
        let full = std::fs::read(&log).unwrap();
        std::fs::write(&log, &full[..full.len() - 7]).unwrap();

        // The tailer must wait at the tear (not fail), and a resumed
        // writer healing the journal lets the run finish.
        let mut writer = CodeLogWriter::resume(&log).unwrap();
        scan_into(&mut writer, 20, 0x7EA3);
        drop(writer);

        let clock = FakeClock::new();
        let mut tailer = CodeLogTailer::with_clock(
            &log,
            TailConfig {
                idle_timeout: Some(Duration::from_millis(300)),
                ..TailConfig::default()
            },
            clock,
        );
        let mut publisher = ArtifactPublisher::open(dir.join("artifacts")).unwrap();
        let config = TailIngestConfig {
            bootstrap_min: 32,
            ..TailIngestConfig::default()
        };
        let report = run_tail_pipeline(&mut tailer, &mut publisher, &config, |_| {}).unwrap();
        assert_eq!(report.exit, TailExit::Stalled);
        assert!(!report.generations.is_empty(), "bootstrap still happened");
        std::fs::remove_dir_all(&dir).ok();
    }
}
