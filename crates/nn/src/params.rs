//! Trainable-parameter storage with an Adam optimizer.

use crate::tensor::Tensor;
use rand::Rng;

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Owns every trainable tensor of a model plus its gradient and Adam state.
///
/// Training loop shape: build a fresh tape per sample, call
/// [`Tape::backward`](crate::tape::Tape::backward) (which accumulates into
/// the store's gradients), then [`ParamStore::adam_step`] once per
/// mini-batch.
///
/// # Examples
///
/// ```
/// use phishinghook_nn::{ParamStore, Tensor};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let w = store.param(Tensor::he(&[4, 2], 4, &mut rng));
/// assert_eq!(store.value(w).shape(), &[4, 2]);
/// ```
#[derive(Debug, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    adam_m: Vec<Tensor>,
    adam_v: Vec<Tensor>,
    step: usize,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter with an initial value.
    pub fn param(&mut self, init: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(init.shape()));
        self.adam_m.push(Tensor::zeros(init.shape()));
        self.adam_v.push(Tensor::zeros(init.shape()));
        self.values.push(init);
        id
    }

    /// Registers a zero-initialised parameter (biases, norm offsets).
    pub fn zeros(&mut self, shape: &[usize]) -> ParamId {
        self.param(Tensor::zeros(shape))
    }

    /// Registers a He-initialised parameter.
    pub fn he<R: Rng>(&mut self, shape: &[usize], fan_in: usize, rng: &mut R) -> ParamId {
        self.param(Tensor::he(shape, fan_in, rng))
    }

    /// Registers a parameter filled with a constant.
    pub fn full(&mut self, shape: &[usize], value: f32) -> ParamId {
        let mut t = Tensor::zeros(shape);
        t.data_mut().fill(value);
        self.param(t)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `g` into the stored gradient (called by the tape).
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        let acc = &mut self.grads[id.0];
        debug_assert_eq!(acc.shape(), g.shape());
        for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
            *a += b;
        }
    }

    /// Zeroes all gradients (start of a mini-batch).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// One Adam update over all parameters with the accumulated gradients,
    /// scaled by `1/batch` (pass the mini-batch size).
    pub fn adam_step(&mut self, lr: f32, batch: usize) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        let scale = 1.0 / batch.max(1) as f32;
        for p in 0..self.values.len() {
            let g_tensor = &self.grads[p];
            let m = self.adam_m[p].data_mut();
            let v = self.adam_v[p].data_mut();
            let w = self.values[p].data_mut();
            for i in 0..w.len() {
                let g = g_tensor.data()[i] * scale;
                m[i] = B1 * m[i] + (1.0 - B1) * g;
                v[i] = B2 * v[i] + (1.0 - B2) * g * g;
                w[i] -= lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + EPS);
            }
        }
    }

    /// Freezes a parameter by zeroing its future updates: gradient is still
    /// accumulated but `adam_step_masked` skips the listed ids (used by
    /// ESCORT's transfer-learning phase).
    pub fn adam_step_masked(&mut self, lr: f32, batch: usize, frozen: &[ParamId]) {
        // Save frozen values, step, then restore.
        let saved: Vec<(ParamId, Tensor)> = frozen
            .iter()
            .map(|&id| (id, self.values[id.0].clone()))
            .collect();
        self.adam_step(lr, batch);
        for (id, v) in saved {
            self.values[id.0] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_reduces_a_quadratic() {
        // Minimize (w - 3)^2 by feeding grad = 2(w - 3).
        let mut store = ParamStore::new();
        let id = store.param(Tensor::scalar(0.0));
        for _ in 0..500 {
            store.zero_grads();
            let w = store.value(id).item();
            store.accumulate_grad(id, &Tensor::scalar(2.0 * (w - 3.0)));
            store.adam_step(0.05, 1);
        }
        assert!((store.value(id).item() - 3.0).abs() < 0.05);
    }

    #[test]
    fn masked_step_freezes_parameters() {
        let mut store = ParamStore::new();
        let a = store.param(Tensor::scalar(1.0));
        let b = store.param(Tensor::scalar(1.0));
        store.accumulate_grad(a, &Tensor::scalar(1.0));
        store.accumulate_grad(b, &Tensor::scalar(1.0));
        store.adam_step_masked(0.1, 1, &[a]);
        assert_eq!(store.value(a).item(), 1.0);
        assert!(store.value(b).item() < 1.0);
    }

    #[test]
    fn zero_grads_clears() {
        let mut store = ParamStore::new();
        let a = store.param(Tensor::scalar(0.0));
        store.accumulate_grad(a, &Tensor::scalar(5.0));
        store.zero_grads();
        assert_eq!(store.grad(a).item(), 0.0);
    }

    #[test]
    fn scalar_count_sums_all() {
        let mut store = ParamStore::new();
        store.zeros(&[2, 3]);
        store.zeros(&[4]);
        assert_eq!(store.scalar_count(), 10);
        assert_eq!(store.len(), 2);
    }
}
