//! # PhishingHook
//!
//! A from-scratch Rust reproduction of *“PhishingHook: Catching Phishing
//! Ethereum Smart Contracts leveraging EVM Opcodes”* (DSN 2025): a framework
//! that detects phishing smart contracts from their deployed bytecode alone,
//! comparing sixteen machine-learning models across four categories
//! (histogram classifiers, vision models, language models and a
//! vulnerability-detection model).
//!
//! The crate wires the paper's four core modules over the substrate crates:
//!
//! * **BEM** ([`bem`]) — bytecode extraction: scan → label scrape →
//!   `eth_getCode` → dedup → balance;
//! * **BDM** — bytecode disassembly (re-exported from
//!   [`phishinghook_evm::disasm`]);
//! * **MEM** ([`mem`]) — training/evaluation of all sixteen models with
//!   10-fold × 3-run cross-validation and timing, dispatched through the
//!   unified [`Model`](phishinghook_models::Model) trait;
//! * **PAM** ([`pam`]) — Shapiro–Wilk / Kruskal–Wallis / Dunn post hoc
//!   statistics;
//!
//! plus the serving layer ([`detector`]) — persistent trained
//! [`Detector`]s and [`ModelZoo`]s scoring fresh contracts straight off
//! `eth_getCode` — and the paper's dedicated experiments: [`scalability`]
//! (Fig. 5–7), [`time_resistance`] (Fig. 8), [`shap_analysis`] (Fig. 9),
//! [`opcode_stats`] (Fig. 3) and the Optuna-style [`hypersearch`] (§IV-C).
//!
//! # Quickstart
//!
//! ```
//! use phishinghook::prelude::*;
//!
//! // 1. Simulate a chain and extract a balanced dataset (BEM).
//! let corpus = generate_corpus(&CorpusConfig::small(42));
//! let chain = SimulatedChain::from_corpus(&corpus);
//! let (dataset, report) = extract_dataset(&chain, &BemConfig::default());
//! assert!(report.unique > 0);
//!
//! // 2. Decode + featurize once, then evaluate the paper's best model on
//! //    one stratified fold (MEM).
//! let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
//! let folds = dataset.stratified_folds(3, 0);
//! let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);
//! let outcome = evaluate_trial(&ctx, ModelKind::RandomForest, &train_idx, &test_idx, 0);
//! assert!(outcome.metrics.accuracy > 0.6);
//!
//! // 3. Keep a trained artifact and screen a fresh deployment (serving).
//! let detector = Detector::train(&ctx, ModelKind::RandomForest, 0);
//! let rpc = RpcProvider::new(&chain);
//! let p = detector.score_address(&rpc, &chain.records()[0].address).unwrap();
//! assert!((0.0..=1.0).contains(&p));
//! ```

#![warn(missing_docs)]

pub mod bem;
pub mod cascade;
pub mod dataset;
pub mod detector;
pub mod drift;
pub mod evalstore;
pub mod hypersearch;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod opcode_stats;
pub mod pam;
pub mod par;
pub mod scalability;
pub mod shap_analysis;
pub mod time_resistance;

pub use bem::{extract_dataset, BemConfig, BemReport, ExtractionStream, StreamStats};
pub use cascade::{pick_band, CascadeConfig, CascadeDetector, CascadeVerdict, StageScore};
pub use dataset::{Dataset, Sample};
pub use detector::{CodeScorer, Detector, ModelZoo, Verdict, PHISHING_THRESHOLD};
pub use drift::{DriftConfig, DriftSignal, DriftWatcher, RollingWindow};
pub use evalstore::EvalContext;
pub use mem::{
    cross_validate, cross_validate_on, cross_validate_on_with, evaluate_models, evaluate_trial,
    evaluate_trial_with, trial_plan, EvalProfile, ModelCategory, ModelKind, TrialOutcome,
    TrialSpec,
};
pub use metrics::{auc, Confusion, Metrics, UnknownMetric, METRIC_NAMES};
pub use pam::{posthoc_analysis, posthoc_over, PosthocReport};
pub use phishinghook_artifact::ArtifactError;
pub use phishinghook_models::Model;
pub use phishinghook_retry as retry;
pub use scalability::{
    run_scalability, run_scalability_on, ScalabilityStudy, SCALABILITY_MODELS, SPLIT_RATIOS,
};
pub use shap_analysis::{shap_analysis, ShapAnalysis};
pub use time_resistance::{run_time_resistance, run_time_resistance_on, TimeResistance};

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::bem::{extract_dataset, BemConfig, BemReport, ExtractionStream};
    pub use crate::cascade::{CascadeConfig, CascadeDetector, CascadeVerdict, StageScore};
    pub use crate::dataset::{Dataset, Sample};
    pub use crate::detector::{CodeScorer, Detector, ModelZoo, Verdict};
    pub use crate::drift::{DriftConfig, DriftSignal, DriftWatcher};
    pub use crate::evalstore::EvalContext;
    pub use crate::hypersearch::{tune_model, Sampler, Study};
    pub use crate::mem::{
        cross_validate, cross_validate_on, evaluate_models, evaluate_trial, trial_plan,
        EvalProfile, ModelCategory, ModelKind, TrialOutcome, TrialSpec,
    };
    pub use crate::metrics::{auc, Metrics, METRIC_NAMES};
    pub use crate::opcode_stats::{opcode_usage, FIG3_OPCODES};
    pub use crate::pam::{posthoc_analysis, posthoc_over};
    pub use crate::scalability::{
        run_scalability, run_scalability_on, SCALABILITY_MODELS, SPLIT_RATIOS,
    };
    pub use crate::shap_analysis::shap_analysis;
    pub use crate::time_resistance::{run_time_resistance, run_time_resistance_on};
    pub use phishinghook_artifact::ArtifactError;
    pub use phishinghook_chain::{Explorer, QueryService, RpcProvider, SimulatedChain};
    pub use phishinghook_evm::{disassemble_bytecode, Bytecode};
    pub use phishinghook_synth::{generate_corpus, CorpusConfig, Month};
}
