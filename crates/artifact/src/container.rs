//! The sectioned artifact container: magic, format version, named
//! checksummed sections.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "PHKA"            magic, 4 bytes
//! u32               FORMAT_VERSION
//! u32               section count
//! per section:
//!   u32             name length    ∥ name bytes (UTF-8)
//!   u64             payload length
//!   u64             FNV-1a 64 checksum of the payload
//!   payload bytes
//! ```
//!
//! Section names are unique within a container; payload schemas are owned
//! by the domain codecs that write them.

use crate::cursor::{ByteReader, ByteWriter};
use crate::error::ArtifactError;
use std::path::Path;

/// Artifact file magic: **P**hishing**H**oo**K** **A**rtifact.
pub const MAGIC: [u8; 4] = *b"PHKA";

/// Current container format version. Readers reject anything else.
pub const FORMAT_VERSION: u32 = 1;

/// Builds an artifact as an ordered list of named sections.
#[derive(Debug, Clone, Default)]
pub struct ArtifactWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl ArtifactWriter {
    /// Creates an empty container.
    pub fn new() -> Self {
        ArtifactWriter::default()
    }

    /// Appends a named section.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already added — duplicate names would make
    /// [`ArtifactReader::section`] ambiguous, so this is a writer bug.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate artifact section {name:?}"
        );
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Serializes the container.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.put_str(name);
            w.put_usize(payload.len());
            w.put_u64(crate::checksum(payload));
            w.put_raw(payload);
        }
        w.into_bytes()
    }

    /// Serializes the container straight to a file.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure, as [`ArtifactError::Io`].
    pub fn write_file(self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.into_bytes())?;
        Ok(())
    }
}

/// A parsed artifact: header verified, every section checksummed.
///
/// Section payloads are *borrowed* slices of the input buffer — parsing a
/// multi-megabyte model artifact allocates only the section index, never a
/// second copy of the tensors. Keep the source bytes alive for the
/// reader's lifetime (the `Detector`/`ModelZoo` load paths do).
#[derive(Debug, Clone)]
pub struct ArtifactReader<'a> {
    sections: Vec<(String, &'a [u8])>,
}

impl<'a> ArtifactReader<'a> {
    /// Parses and verifies a serialized container.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Format`] on bad magic or an unsupported version,
    /// [`ArtifactError::Corrupt`] on truncation, and
    /// [`ArtifactError::Checksum`] when a section's payload does not hash
    /// to its stored checksum.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self, ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let magic = r
            .take_raw(4)
            .map_err(|_| ArtifactError::Format("shorter than the 4-byte magic".into()))?;
        if magic != MAGIC {
            return Err(ArtifactError::Format(format!(
                "bad magic {magic:02X?}, expected {MAGIC:02X?} (\"PHKA\")"
            )));
        }
        let version = r.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::Format(format!(
                "format version {version} not supported (reader knows {FORMAT_VERSION})"
            )));
        }
        let count = r.take_u32()?;
        let mut sections: Vec<(String, &'a [u8])> = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            let name = r.take_str()?;
            let len = r.take_usize()?;
            let stored = r.take_u64()?;
            let payload = r.take_raw(len)?;
            if crate::checksum(payload) != stored {
                return Err(ArtifactError::Checksum(format!("section {name:?}")));
            }
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(ArtifactError::Format(format!("duplicate section {name:?}")));
            }
            sections.push((name, payload));
        }
        r.expect_exhausted("artifact container")?;
        Ok(ArtifactReader { sections })
    }

    /// Section names, in container order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Consumes the reader into its `(name, payload)` list, in container
    /// order — the seam the owning container
    /// ([`OwnedArtifact`](crate::OwnedArtifact)) converts into byte ranges
    /// so both parse paths share one validation implementation.
    pub fn into_sections(self) -> Vec<(String, &'a [u8])> {
        self.sections
    }

    /// A required section's payload.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<&'a [u8], ArtifactError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
            .ok_or_else(|| ArtifactError::MissingSection(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.section("meta", b"hello".to_vec());
        w.section("model", vec![0u8; 64]);
        w.into_bytes()
    }

    #[test]
    fn container_round_trips() {
        let bytes = sample();
        let r = ArtifactReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.section_names(), vec!["meta", "model"]);
        assert_eq!(r.section("meta").unwrap(), b"hello");
        assert_eq!(r.section("model").unwrap().len(), 64);
        assert!(matches!(
            r.section("absent"),
            Err(ArtifactError::MissingSection(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            ArtifactReader::from_bytes(&bytes),
            Err(ArtifactError::Format(_))
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[4] = 0xFF; // version little-endian low byte
        assert!(matches!(
            ArtifactReader::from_bytes(&bytes),
            Err(ArtifactError::Format(_))
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = sample();
        let last = bytes.len() - 1; // inside the "model" payload
        bytes[last] ^= 0x01;
        assert!(matches!(
            ArtifactReader::from_bytes(&bytes),
            Err(ArtifactError::Checksum(_))
        ));
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = sample();
        for cut in [0, 3, 7, 11, bytes.len() - 1] {
            assert!(
                ArtifactReader::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate artifact section")]
    fn duplicate_sections_are_a_writer_bug() {
        let mut w = ArtifactWriter::new();
        w.section("meta", Vec::new());
        w.section("meta", Vec::new());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("phk_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.phk");
        let mut w = ArtifactWriter::new();
        w.section("s", vec![9, 9, 9]);
        w.write_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let r = ArtifactReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.section("s").unwrap(), &[9, 9, 9]);
        std::fs::remove_file(&path).ok();
    }
}
