//! Regenerates **Fig. 8**: time-resistance — monthly precision/recall/F1
//! over nine test periods with the Area Under Time (AUT) of the F1 score,
//! for Random Forest, ECA+EfficientNet and SCSGuard.

use phishinghook::prelude::*;
use phishinghook_bench::{banner, temporal_dataset, RunScale};

fn main() {
    let scale = RunScale::from_args();
    banner("Fig. 8 - time-resistance analysis", scale);
    let dataset = temporal_dataset(scale, 0xF8);
    let (train, _) = dataset.temporal_split();
    println!(
        "temporal dataset: {} samples, training window holds {}\n",
        dataset.len(),
        train.len()
    );

    let models = [
        ModelKind::RandomForest,
        ModelKind::EcaEfficientNet,
        ModelKind::ScsGuard,
    ];
    let paper_aut = [0.89, 0.79, 0.84];
    for (model, paper) in models.into_iter().zip(paper_aut) {
        let result = run_time_resistance(model, &dataset, &scale.profile(), 0xF8);
        println!("--- {} ---", model.name());
        println!(
            "{:<10} {:>6} {:>8} {:>8} {:>8}",
            "month", "period", "prec", "recall", "F1"
        );
        for m in &result.monthly {
            println!(
                "{:<10} {:>6} {:>8.4} {:>8.4} {:>8.4}",
                m.month.to_string(),
                m.period,
                m.metrics.precision,
                m.metrics.recall,
                m.metrics.f1
            );
        }
        println!("AUT = {:.3}  (paper: {paper})\n", result.aut_f1);
    }
}
