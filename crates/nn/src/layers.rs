//! Reusable layers built on the tape: dense, layer-norm, multi-head
//! attention, transformer blocks and a GRU.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// Dense layer `y = x W + b` over `(l, in)` inputs.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
}

impl Linear {
    /// Registers parameters for an `in → out` dense layer.
    pub fn new<R: Rng>(store: &mut ParamStore, input: usize, output: usize, rng: &mut R) -> Self {
        Linear {
            w: store.he(&[input, output], input, rng),
            b: store.zeros(&[output]),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = t.param(store, self.w);
        let b = t.param(store, self.b);
        let h = t.matmul(x, w);
        t.add_bias(h, b)
    }

    /// The layer's parameter handles `[weight, bias]` (for freezing).
    pub fn params(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

/// Layer normalization with learned gain/offset.
#[derive(Debug, Clone, Copy)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
}

impl LayerNorm {
    /// Registers parameters for a width-`d` layer norm.
    pub fn new(store: &mut ParamStore, d: usize) -> Self {
        LayerNorm {
            gamma: store.full(&[d], 1.0),
            beta: store.zeros(&[d]),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let gamma = t.param(store, self.gamma);
        let beta = t.param(store, self.beta);
        t.layer_norm(x, gamma, beta)
    }
}

/// Multi-head self-attention over `(l, d)` sequences.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    heads: usize,
    head_dim: usize,
    wq: Vec<ParamId>,
    wk: Vec<ParamId>,
    wv: Vec<ParamId>,
    out: Linear,
}

impl MultiHeadAttention {
    /// Registers an attention block with `heads` heads over width `d`.
    ///
    /// # Panics
    ///
    /// Panics unless `d % heads == 0`.
    pub fn new<R: Rng>(store: &mut ParamStore, d: usize, heads: usize, rng: &mut R) -> Self {
        assert_eq!(d % heads, 0, "model width must divide head count");
        let head_dim = d / heads;
        let mk = |store: &mut ParamStore, rng: &mut R| -> Vec<ParamId> {
            (0..heads)
                .map(|_| store.he(&[d, head_dim], d, rng))
                .collect()
        };
        MultiHeadAttention {
            heads,
            head_dim,
            wq: mk(store, rng),
            wk: mk(store, rng),
            wv: mk(store, rng),
            out: Linear::new(store, d, d, rng),
        }
    }

    /// Applies self-attention; `causal` adds a lower-triangular mask (GPT-2
    /// style).
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: Var, causal: bool) -> Var {
        let l = t.value(x).dims2().0;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mask = if causal {
            let mut m = vec![0.0f32; l * l];
            for i in 0..l {
                for j in i + 1..l {
                    m[i * l + j] = -1e9;
                }
            }
            Some(t.input(Tensor::from_vec(&[l, l], m)))
        } else {
            None
        };

        let mut merged: Option<Var> = None;
        for h in 0..self.heads {
            let wq = t.param(store, self.wq[h]);
            let wk = t.param(store, self.wk[h]);
            let wv = t.param(store, self.wv[h]);
            let q = t.matmul(x, wq);
            let k = t.matmul(x, wk);
            let v = t.matmul(x, wv);
            let kt = t.transpose(k);
            let s = t.matmul(q, kt);
            let mut s = t.scale(s, scale);
            if let Some(m) = mask {
                s = t.add(s, m);
            }
            let a = t.softmax_rows(s);
            let o = t.matmul(a, v);
            merged = Some(match merged {
                None => o,
                Some(acc) => t.concat_cols(acc, o),
            });
        }
        let concat = merged.expect("at least one head");
        self.out.forward(t, store, concat)
    }

    /// Cross-attention: queries from `q_input` `(lq, d)`, keys/values from
    /// `kv_input` `(lk, d)` (T5 decoder style).
    pub fn forward_cross(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        q_input: Var,
        kv_input: Var,
    ) -> Var {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut merged: Option<Var> = None;
        for h in 0..self.heads {
            let wq = t.param(store, self.wq[h]);
            let wk = t.param(store, self.wk[h]);
            let wv = t.param(store, self.wv[h]);
            let q = t.matmul(q_input, wq);
            let k = t.matmul(kv_input, wk);
            let v = t.matmul(kv_input, wv);
            let kt = t.transpose(k);
            let s = t.matmul(q, kt);
            let s = t.scale(s, scale);
            let a = t.softmax_rows(s);
            let o = t.matmul(a, v);
            merged = Some(match merged {
                None => o,
                Some(acc) => t.concat_cols(acc, o),
            });
        }
        let concat = merged.expect("at least one head");
        self.out.forward(t, store, concat)
    }
}

/// Pre-norm transformer encoder block: `x + MHA(LN(x))`, `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
}

impl TransformerBlock {
    /// Registers a block of width `d` with `heads` heads and a `4d` MLP.
    pub fn new<R: Rng>(store: &mut ParamStore, d: usize, heads: usize, rng: &mut R) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(store, d),
            attn: MultiHeadAttention::new(store, d, heads, rng),
            ln2: LayerNorm::new(store, d),
            fc1: Linear::new(store, d, 4 * d, rng),
            fc2: Linear::new(store, 4 * d, d, rng),
        }
    }

    /// Applies the block.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: Var, causal: bool) -> Var {
        let h = self.ln1.forward(t, store, x);
        let a = self.attn.forward(t, store, h, causal);
        let x = t.add(x, a);
        let h = self.ln2.forward(t, store, x);
        let h = self.fc1.forward(t, store, h);
        let h = t.gelu(h);
        let h = self.fc2.forward(t, store, h);
        t.add(x, h)
    }
}

/// A gated recurrent unit processing `(l, in)` sequences into a final
/// `(1, hidden)` state (SCSGuard's sequence model).
#[derive(Debug, Clone)]
pub struct Gru {
    hidden: usize,
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
}

impl Gru {
    /// Registers a GRU with the given input and hidden widths.
    pub fn new<R: Rng>(store: &mut ParamStore, input: usize, hidden: usize, rng: &mut R) -> Self {
        Gru {
            hidden,
            wz: Linear::new(store, input, hidden, rng),
            uz: Linear::new(store, hidden, hidden, rng),
            wr: Linear::new(store, input, hidden, rng),
            ur: Linear::new(store, hidden, hidden, rng),
            wh: Linear::new(store, input, hidden, rng),
            uh: Linear::new(store, hidden, hidden, rng),
        }
    }

    /// Runs the GRU over the rows of `x` and returns the final hidden state.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let l = t.value(x).dims2().0;
        let mut h = t.input(Tensor::zeros(&[1, self.hidden]));
        for step in 0..l {
            let xt = t.row_at(x, step);
            let z1 = self.wz.forward(t, store, xt);
            let z2 = self.uz.forward(t, store, h);
            let z3 = t.add(z1, z2);
            let z = t.sigmoid(z3);
            let r1 = self.wr.forward(t, store, xt);
            let r2 = self.ur.forward(t, store, h);
            let r3 = t.add(r1, r2);
            let r = t.sigmoid(r3);
            let rh = t.mul(r, h);
            let c1 = self.wh.forward(t, store, xt);
            let c2 = self.uh.forward(t, store, rh);
            let c3 = t.add(c1, c2);
            let candidate = t.tanh(c3);
            // h' = (1 - z) ⊙ h + z ⊙ candidate
            let neg_z = t.scale(z, -1.0);
            let one_minus_z = t.add_scalar(neg_z, 1.0);
            let keep = t.mul(one_minus_z, h);
            let update = t.mul(z, candidate);
            h = t.add(keep, update);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store_and_rng() -> (ParamStore, StdRng) {
        (ParamStore::new(), StdRng::seed_from_u64(17))
    }

    #[test]
    fn linear_shapes() {
        let (mut store, mut rng) = store_and_rng();
        let lin = Linear::new(&mut store, 4, 3, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(&[5, 4]));
        let y = lin.forward(&mut t, &store, x);
        assert_eq!(t.value(y).shape(), &[5, 3]);
    }

    #[test]
    fn attention_preserves_shape() {
        let (mut store, mut rng) = store_and_rng();
        let attn = MultiHeadAttention::new(&mut store, 8, 2, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::random(&[6, 8], 0.5, &mut rng));
        let y = attn.forward(&mut t, &store, x, false);
        assert_eq!(t.value(y).shape(), &[6, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, changing the last token must not affect the
        // first row of the attention output.
        let (mut store, mut rng) = store_and_rng();
        let attn = MultiHeadAttention::new(&mut store, 4, 1, &mut rng);
        let base = Tensor::random(&[3, 4], 0.5, &mut rng);
        let mut changed = base.clone();
        for v in changed.data_mut()[8..].iter_mut() {
            *v += 1.0;
        }
        let run = |input: Tensor| {
            let mut t = Tape::new();
            let x = t.input(input);
            let y = attn.forward(&mut t, &store, x, true);
            t.value(y).data()[..4].to_vec()
        };
        assert_eq!(run(base), run(changed));
    }

    #[test]
    fn transformer_block_trains() {
        // One block + head must overfit a single example quickly.
        let (mut store, mut rng) = store_and_rng();
        let block = TransformerBlock::new(&mut store, 8, 2, &mut rng);
        let head = Linear::new(&mut store, 8, 1, &mut rng);
        let x_data = Tensor::random(&[4, 8], 0.8, &mut rng);
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            let mut t = Tape::new();
            let x = t.input(x_data.clone());
            let h = block.forward(&mut t, &store, x, false);
            let pooled = t.mean_rows(h);
            let z = head.forward(&mut t, &store, pooled);
            let loss = t.bce_with_logit(z, 1.0);
            last = t.value(loss).item();
            store.zero_grads();
            t.backward(loss, &mut store);
            store.adam_step(0.01, 1);
        }
        assert!(last < 0.1, "loss did not fall: {last}");
    }

    #[test]
    fn gru_final_state_shape_and_training() {
        let (mut store, mut rng) = store_and_rng();
        let gru = Gru::new(&mut store, 6, 5, &mut rng);
        let head = Linear::new(&mut store, 5, 1, &mut rng);
        let x_data = Tensor::random(&[7, 6], 0.8, &mut rng);
        let mut last = f32::INFINITY;
        for _ in 0..40 {
            let mut t = Tape::new();
            let x = t.input(x_data.clone());
            let h = gru.forward(&mut t, &store, x);
            assert_eq!(t.value(h).shape(), &[1, 5]);
            let z = head.forward(&mut t, &store, h);
            let loss = t.bce_with_logit(z, 0.0);
            last = t.value(loss).item();
            store.zero_grads();
            t.backward(loss, &mut store);
            store.adam_step(0.02, 1);
        }
        assert!(last < 0.1, "GRU loss did not fall: {last}");
    }
}
