//! Free functions over `f32` slices used throughout the ML pipeline.

/// Dot product of two equal-length slices (the 4-way unrolled
/// [`gemm`](crate::gemm) kernel).
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Examples
///
/// ```
/// assert_eq!(phishinghook_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::gemm::dot(a, b)
}

/// Euclidean norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / a.len() as f32
}

/// Population standard deviation.
pub fn std_dev(a: &[f32]) -> f32 {
    variance(a).sqrt()
}

/// Index of the maximum element; `None` for an empty slice. Ties resolve to
/// the first maximum.
pub fn argmax(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Indices that would sort the slice ascending (stable).
pub fn argsort(a: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[i].partial_cmp(&a[j]).unwrap_or(std::cmp::Ordering::Equal));
    idx
}

/// Numerically-stable in-place softmax.
///
/// # Examples
///
/// ```
/// let mut v = [1.0f32, 1.0, 1.0];
/// phishinghook_linalg::softmax_in_place(&mut v);
/// assert!((v[0] - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn softmax_in_place(a: &mut [f32]) {
    if a.is_empty() {
        return;
    }
    let max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in a.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in a.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn argmax_prefers_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argsort_sorts() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn stats_on_known_data() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
    }

    proptest! {
        #[test]
        fn softmax_sums_to_one(mut v in proptest::collection::vec(-30.0f32..30.0, 1..64)) {
            softmax_in_place(&mut v);
            let sum: f32 = v.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn argsort_is_permutation_and_sorted(v in proptest::collection::vec(-1e6f32..1e6, 0..128)) {
            let idx = argsort(&v);
            let mut seen = vec![false; v.len()];
            for &i in &idx { seen[i] = true; }
            prop_assert!(seen.iter().all(|&s| s));
            for w in idx.windows(2) {
                prop_assert!(v[w[0]] <= v[w[1]]);
            }
        }
    }
}
