//! The study's time axis: calendar months from 2023-10 to 2024-10.
//!
//! The paper's dataset spans contracts deployed between October 2023 and
//! October 2024 (Fig. 2); its time-resistance experiment trains on the first
//! four months and tests on the following nine. [`Month`] indexes that
//! thirteen-month window.

use std::fmt;

/// A month within the study window, numbered 0 (= 2023-10) through
/// 12 (= 2024-10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Month(pub u8);

/// Number of months in the study window (2023-10 ..= 2024-10).
pub const STUDY_MONTHS: usize = 13;

impl Month {
    /// First month of the window (October 2023).
    pub const FIRST: Month = Month(0);
    /// Last month of the window (October 2024).
    pub const LAST: Month = Month(12);

    /// Creates a month index, clamping into the study window.
    pub fn new(index: u8) -> Self {
        Month(index.min((STUDY_MONTHS - 1) as u8))
    }

    /// All months in order.
    pub fn all() -> impl Iterator<Item = Month> {
        (0..STUDY_MONTHS as u8).map(Month)
    }

    /// Calendar year of this month.
    pub fn year(&self) -> u16 {
        if self.0 < 3 {
            2023
        } else {
            2024
        }
    }

    /// Calendar month number (1–12).
    pub fn month_of_year(&self) -> u8 {
        ((self.0 + 9) % 12) + 1
    }

    /// `true` if this month falls in the paper's time-resistance *training*
    /// window (October 2023 – January 2024).
    pub fn in_training_window(&self) -> bool {
        self.0 <= 3
    }

    /// The 1-based test period used in Fig. 8 (February 2024 = 1, ...,
    /// October 2024 = 9); `None` for training months.
    pub fn test_period(&self) -> Option<usize> {
        if self.0 >= 4 {
            Some(self.0 as usize - 3)
        } else {
            None
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{:02}", self.year(), self.month_of_year())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_rendering() {
        assert_eq!(Month(0).to_string(), "2023-10");
        assert_eq!(Month(2).to_string(), "2023-12");
        assert_eq!(Month(3).to_string(), "2024-01");
        assert_eq!(Month(12).to_string(), "2024-10");
    }

    #[test]
    fn training_window_is_first_four_months() {
        let train: Vec<Month> = Month::all().filter(Month::in_training_window).collect();
        assert_eq!(train.len(), 4);
        assert_eq!(train.last(), Some(&Month(3)));
    }

    #[test]
    fn nine_test_periods() {
        let periods: Vec<usize> = Month::all().filter_map(|m| m.test_period()).collect();
        assert_eq!(periods, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn new_clamps() {
        assert_eq!(Month::new(200), Month(12));
    }
}
