//! Worker-count policy shared by every thread pool in the workspace.
//!
//! The GEMM row-sharding in [`gemm`](crate::gemm) and the pipeline worker
//! pool in `phishinghook-core` both size their scoped-thread fan-out
//! through [`pool_size`], so one `PHISHINGHOOK_THREADS` override pins every
//! pool at once — benches use it to compare pinned worker counts, and CI
//! uses it to take deterministic single-thread timings on shared boxes.
//! The policy lives here (the bottom of the crate graph) rather than in
//! `core` so `linalg` can consult it without a dependency cycle;
//! `core::par` delegates to this module.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Upper bound on any pool size; beyond this the per-thread work items get
/// too small for the spawn cost to pay off on our workloads.
pub const MAX_WORKERS: usize = 32;

/// The `PHISHINGHOOK_THREADS` override, read once per process: `Some(n)`
/// (clamped to `1..=MAX_WORKERS`) when the variable holds a positive
/// integer, `None` when unset or unparsable.
pub fn configured_threads() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("PHISHINGHOOK_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .map(|n| n.min(MAX_WORKERS))
    })
}

/// Number of workers used for a batch of `n` items: the
/// `PHISHINGHOOK_THREADS` override when set, otherwise the hardware
/// parallelism — both capped by [`MAX_WORKERS`] and by `n` itself.
pub fn pool_size(n: usize) -> usize {
    configured_threads()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(MAX_WORKERS)
        .min(n)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_bounded() {
        assert!(pool_size(0) >= 1);
        assert!(pool_size(1_000_000) <= MAX_WORKERS);
        assert!(pool_size(2) <= 2);
    }

    #[test]
    fn override_is_clamped() {
        // The env read is process-cached, so only assert the invariant that
        // holds whichever way the variable was set when the cache filled.
        if let Some(n) = configured_threads() {
            assert!((1..=MAX_WORKERS).contains(&n));
        }
    }
}
