//! Small dense linear-algebra kernel shared by the classical-ML and
//! neural-network crates.
//!
//! The whole reproduction is CPU-only and single-precision is plenty for the
//! models involved, so the central type is a row-major `f32` [`Matrix`] with
//! the handful of BLAS-like operations the upper layers need (GEMM,
//! transpose, row views, axpy) plus seeded random initialisation helpers.
//!
//! # Examples
//!
//! ```
//! use phishinghook_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]

pub mod gemm;
pub mod matrix;
pub mod par;
pub mod vecops;

pub use matrix::Matrix;
pub use vecops::{argmax, argsort, dot, l2_norm, mean, softmax_in_place, std_dev, variance};
