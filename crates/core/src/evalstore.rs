//! The shared evaluation context: one decode pass, one featurization pass,
//! arbitrarily many (model, run, fold) trials.
//!
//! [`EvalContext::new`] is the only place the evaluation engine pays
//! disassembly and featurization cost: it builds the dataset's
//! [`CacheBatch`] across the worker pool, packs all six encodings into a
//! [`FeatureStore`], and precomputes the structural vulnerability labels
//! ESCORT's pre-training phase consumes. Every trial in the
//! model-evaluation matrix — cross-validation, scalability splits, temporal
//! splits, hyper-parameter search — then borrows index slices of the same
//! context, so `decode_count()` over an entire evaluation equals the
//! dataset size.
//!
//! # Examples
//!
//! ```
//! use phishinghook::evalstore::EvalContext;
//! use phishinghook::prelude::*;
//!
//! let corpus = generate_corpus(&CorpusConfig::small(3));
//! let chain = SimulatedChain::from_corpus(&corpus);
//! let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
//! let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
//! assert_eq!(ctx.len(), dataset.len());
//! assert_eq!(ctx.store().histogram().rows(), dataset.len());
//! ```

use crate::dataset::Dataset;
use crate::mem::EvalProfile;
use crate::par::parallel_map;
use phishinghook_artifact::ArtifactError;
use phishinghook_evm::opcodes::op;
use phishinghook_evm::{CacheBatch, DisasmCache};
use phishinghook_features::store::{BatchExecutor, FeatureStore, SpillConfig, StoreConfig};
use phishinghook_features::FeatureVec;

/// [`BatchExecutor`] backed by the crate's scoped-thread worker pool, so
/// store construction featurizes in parallel with deterministic row order.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelExecutor;

impl BatchExecutor for ParallelExecutor {
    fn encode_batch(
        &self,
        caches: &[DisasmCache],
        encode: &(dyn Fn(&DisasmCache) -> FeatureVec + Sync),
    ) -> Vec<FeatureVec> {
        parallel_map(caches, encode)
    }
}

/// The geometry slice of an [`EvalProfile`] that shapes the feature store.
pub fn store_config(profile: &EvalProfile) -> StoreConfig {
    StoreConfig {
        image_side: profile.image_side,
        context: profile.context,
        bigram_vocab: profile.bigram_vocab,
        bigram_len: profile.bigram_len,
        escort_dim: profile.escort_dim,
    }
}

/// Structural "vulnerability" pseudo-labels for ESCORT's pre-training phase:
/// code-flaw-style predicates (dangerous opcodes, block-state dependence,
/// code size) that a VDM trunk would learn — mostly orthogonal to phishing.
/// Reads the shared [`DisasmCache`] — no re-disassembly.
pub fn vulnerability_labels(cache: &DisasmCache) -> Vec<u8> {
    let has = |byte: u8| cache.op_ids().any(|id| id.byte() == byte && id.is_known());
    vec![
        u8::from(has(op::SELFDESTRUCT)),
        u8::from(has(op::DELEGATECALL)),
        u8::from(has(op::TIMESTAMP)),
        u8::from(cache.bytes().len() > 900),
    ]
}

/// Decode-once evaluation state for one dataset: labels, disassembly
/// caches, the feature store and ESCORT's pre-training targets.
#[derive(Debug, Clone)]
pub struct EvalContext {
    labels: Vec<u8>,
    caches: CacheBatch,
    store: FeatureStore,
    vuln: Vec<Vec<u8>>,
    profile: EvalProfile,
}

impl EvalContext {
    /// Decodes and featurizes `data` exactly once, in parallel across the
    /// worker pool, under `profile`'s feature geometry.
    pub fn new(data: &Dataset, profile: &EvalProfile) -> Self {
        let caches = CacheBatch::from_caches(data.disasm_batch());
        Self::from_caches(caches, data.labels(), profile)
    }

    /// Like [`EvalContext::new`], but fits the encoder lookup tables on
    /// `fit_idx` only while still featurizing every sample — the
    /// leakage-safe construction for studies with a privileged hold-out
    /// direction (the temporal drift experiment fits on its training
    /// window so vocabularies never see future months).
    ///
    /// # Panics
    ///
    /// Panics if `fit_idx` is empty or holds an out-of-range index.
    pub fn fitted_on(data: &Dataset, profile: &EvalProfile, fit_idx: &[usize]) -> Self {
        assert!(!fit_idx.is_empty(), "empty fit subset");
        let caches = CacheBatch::from_caches(data.disasm_batch());
        // DisasmCache clones are cheap (refcounted bytecode + packed op
        // table); the fit subset is materialized once.
        let fit: Vec<phishinghook_evm::DisasmCache> =
            fit_idx.iter().map(|&i| caches[i].clone()).collect();
        let store = FeatureStore::build_fitted_with(
            caches.as_slice(),
            &fit,
            &store_config(profile),
            &ParallelExecutor,
        );
        Self::assemble(caches, data.labels(), store, profile)
    }

    /// Like [`EvalContext::new`], but spills the token-window feature
    /// blocks — the largest matrices a store holds — to their on-disk
    /// columnar form under `spill` during the build. Trials gather spilled
    /// rows lazily per (model, run, fold), so corpora whose window blocks
    /// exceed RAM evaluate with unchanged results and no layout changes in
    /// the evaluation engine.
    ///
    /// # Errors
    ///
    /// Spill-file I/O failures, as [`ArtifactError::Io`].
    pub fn spilled(
        data: &Dataset,
        profile: &EvalProfile,
        spill: &SpillConfig,
    ) -> Result<Self, ArtifactError> {
        let caches = CacheBatch::from_caches(data.disasm_batch());
        let store = FeatureStore::build_spilled_with(
            caches.as_slice(),
            caches.as_slice(),
            &store_config(profile),
            &ParallelExecutor,
            spill,
        )?;
        Ok(Self::assemble(caches, data.labels(), store, profile))
    }

    /// Builds a context over caches that were already decoded (the batch
    /// must align index-for-index with `labels`).
    ///
    /// # Panics
    ///
    /// Panics if `labels` and the batch disagree on length.
    pub fn from_caches(caches: CacheBatch, labels: Vec<u8>, profile: &EvalProfile) -> Self {
        let store =
            FeatureStore::build_with(caches.as_slice(), &store_config(profile), &ParallelExecutor);
        Self::assemble(caches, labels, store, profile)
    }

    fn assemble(
        caches: CacheBatch,
        labels: Vec<u8>,
        store: FeatureStore,
        profile: &EvalProfile,
    ) -> Self {
        assert_eq!(caches.len(), labels.len(), "labels/caches misaligned");
        let vuln = parallel_map(caches.as_slice(), vulnerability_labels);
        EvalContext {
            labels,
            caches,
            store,
            vuln,
            profile: *profile,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the context holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All labels, in sample order.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// The decoded cache batch.
    pub fn caches(&self) -> &CacheBatch {
        &self.caches
    }

    /// The packed feature store.
    pub fn store(&self) -> &FeatureStore {
        &self.store
    }

    /// The evaluation profile the store was built under.
    pub fn profile(&self) -> &EvalProfile {
        &self.profile
    }

    /// Labels for an index slice, in index order.
    pub fn gather_labels(&self, indices: &[usize]) -> Vec<u8> {
        indices.iter().map(|&i| self.labels[i]).collect()
    }

    /// ESCORT pre-training targets for an index slice, in index order.
    pub fn gather_vuln(&self, indices: &[usize]) -> Vec<Vec<u8>> {
        indices.iter().map(|&i| self.vuln[i].clone()).collect()
    }

    /// Positive-class count within an index slice.
    pub fn positives_in(&self, indices: &[usize]) -> usize {
        indices.iter().filter(|&&i| self.labels[i] == 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bem::{extract_dataset, BemConfig};
    use phishinghook_chain::SimulatedChain;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    fn dataset() -> Dataset {
        let corpus = generate_corpus(&CorpusConfig::small(23));
        let chain = SimulatedChain::from_corpus(&corpus);
        extract_dataset(&chain, &BemConfig::default()).0
    }

    #[test]
    fn context_aligns_with_dataset() {
        let data = dataset();
        let ctx = EvalContext::new(&data, &EvalProfile::quick());
        assert_eq!(ctx.len(), data.len());
        assert_eq!(ctx.labels(), &data.labels()[..]);
        assert_eq!(ctx.store().len(), data.len());
        assert_eq!(ctx.caches().len(), data.len());
        // Store geometry follows the profile.
        let p = EvalProfile::quick();
        assert_eq!(
            ctx.store().freq_image().width(),
            Some(3 * p.image_side * p.image_side)
        );
        assert_eq!(ctx.store().bigram().width(), Some(p.bigram_len));
    }

    #[test]
    fn gathers_follow_index_order() {
        let data = dataset();
        let ctx = EvalContext::new(&data, &EvalProfile::quick());
        let idx = [3usize, 0, 7];
        let labels = ctx.gather_labels(&idx);
        for (j, &i) in idx.iter().enumerate() {
            assert_eq!(labels[j], data.samples[i].label);
        }
        assert_eq!(ctx.gather_vuln(&idx).len(), 3);
        assert_eq!(
            ctx.positives_in(&(0..data.len()).collect::<Vec<_>>()),
            data.positives()
        );
    }

    #[test]
    fn fitted_on_restricts_the_lookup_tables() {
        let data = dataset();
        let p = EvalProfile::quick();
        let full = EvalContext::new(&data, &p);
        let few: Vec<usize> = (0..4).collect();
        let fitted = EvalContext::fitted_on(&data, &p, &few);
        // Every sample is still featurized...
        assert_eq!(fitted.len(), data.len());
        assert_eq!(fitted.store().histogram().rows(), data.len());
        // ...but the vocabulary comes from the fit subset alone.
        assert!(fitted.store().histogram_width() <= full.store().histogram_width());
        let fit_caches: Vec<_> = few.iter().map(|&i| fitted.caches()[i].clone()).collect();
        let expected = phishinghook_features::HistogramEncoder::fit(&fit_caches);
        assert_eq!(fitted.store().histogram_width(), expected.vocab_len());
    }

    #[test]
    fn vulnerability_labels_are_structural() {
        let code = phishinghook_evm::Bytecode::new(vec![0xFF]); // SELFDESTRUCT
        let labels = vulnerability_labels(&DisasmCache::build(&code));
        assert_eq!(labels[0], 1);
        assert_eq!(labels[1], 0);
    }

    #[test]
    fn spilled_context_evaluates_bit_identically() {
        use crate::mem::{evaluate_trial, ModelKind};
        let data = dataset();
        let p = EvalProfile::quick();
        let resident = EvalContext::new(&data, &p);
        let dir = std::env::temp_dir().join(format!("phk_evalspill_{}", std::process::id()));
        let spilled = EvalContext::spilled(&data, &p, &SpillConfig::all(&dir)).unwrap();
        assert_eq!(
            spilled.store().spilled_encodings().len(),
            2,
            "both token blocks should spill"
        );
        let folds = data.stratified_folds(3, 2);
        let (train_idx, test_idx) = Dataset::fold_indices(&folds, 0);
        // A token-window model trains and scores straight off the spill
        // files with metrics bit-identical to the resident store.
        let a = evaluate_trial(&resident, ModelKind::Gpt2Alpha, &train_idx, &test_idx, 4);
        let b = evaluate_trial(&spilled, ModelKind::Gpt2Alpha, &train_idx, &test_idx, 4);
        assert_eq!(a.metrics, b.metrics);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "labels/caches misaligned")]
    fn misaligned_labels_rejected() {
        let data = dataset();
        let caches = CacheBatch::from_caches(data.disasm_batch());
        EvalContext::from_caches(caches, vec![0, 1], &EvalProfile::quick());
    }
}
