//! The common featurizer protocol.
//!
//! Every encoder in this crate implements [`Featurizer`]: it is *fitted* on
//! a slice of per-contract [`DisasmCache`]s (the training split, decoded
//! exactly once) and then *encodes* individual caches into a
//! [`FeatureVec`]. Because all six encoders share the same decoded stream,
//! a dataset pass disassembles each contract once, no matter how many
//! representations are extracted from it.
//!
//! # Examples
//!
//! ```
//! use phishinghook_evm::{Bytecode, DisasmCache};
//! use phishinghook_features::{Featurizer, HistogramEncoder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let caches = vec![DisasmCache::build(&Bytecode::from_hex("0x6080604052")?)];
//! let encoder = <HistogramEncoder as Featurizer>::fit(&caches);
//! let features = Featurizer::encode(&encoder, &caches[0]);
//! assert_eq!(features.as_dense().unwrap().iter().sum::<f32>(), 3.0);
//! # Ok(())
//! # }
//! ```

use phishinghook_evm::DisasmCache;

/// The output of one encoder for one contract.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureVec {
    /// A dense real-valued vector (histograms, images, embeddings).
    Dense(Vec<f32>),
    /// A fixed-length integer id sequence (SCSGuard bigrams).
    Ids(Vec<u32>),
    /// One or more fixed-length id windows (language-model tokens).
    Windows(Vec<Vec<u32>>),
}

/// A borrowed view of one sample's features inside a column store — the
/// zero-copy counterpart of [`FeatureVec`] that
/// [`FeatureMatrix::row`](crate::store::FeatureMatrix::row) hands out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureRow<'a> {
    /// Dense real-valued row.
    Dense(&'a [f32]),
    /// Fixed-length id row.
    Ids(&'a [u32]),
    /// Per-sample window list.
    Windows(&'a [Vec<u32>]),
}

impl FeatureRow<'_> {
    /// Total scalar count across the representation.
    pub fn len(&self) -> usize {
        match self {
            FeatureRow::Dense(v) => v.len(),
            FeatureRow::Ids(v) => v.len(),
            FeatureRow::Windows(w) => w.iter().map(Vec::len).sum(),
        }
    }

    /// `true` when the view holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the view into an owned [`FeatureVec`].
    pub fn to_owned_vec(&self) -> FeatureVec {
        match self {
            FeatureRow::Dense(v) => FeatureVec::Dense(v.to_vec()),
            FeatureRow::Ids(v) => FeatureVec::Ids(v.to_vec()),
            FeatureRow::Windows(w) => FeatureVec::Windows(w.to_vec()),
        }
    }
}

impl FeatureVec {
    /// Total scalar count across the representation.
    pub fn len(&self) -> usize {
        match self {
            FeatureVec::Dense(v) => v.len(),
            FeatureVec::Ids(v) => v.len(),
            FeatureVec::Windows(w) => w.iter().map(Vec::len).sum(),
        }
    }

    /// `true` when the representation holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense accessor.
    pub fn as_dense(&self) -> Option<&[f32]> {
        match self {
            FeatureVec::Dense(v) => Some(v),
            _ => None,
        }
    }

    /// Id-sequence accessor.
    pub fn as_ids(&self) -> Option<&[u32]> {
        match self {
            FeatureVec::Ids(v) => Some(v),
            _ => None,
        }
    }

    /// Window-list accessor.
    pub fn as_windows(&self) -> Option<&[Vec<u32>]> {
        match self {
            FeatureVec::Windows(w) => Some(w),
            _ => None,
        }
    }

    /// Borrowed view of this vector.
    pub fn as_row(&self) -> FeatureRow<'_> {
        match self {
            FeatureVec::Dense(v) => FeatureRow::Dense(v),
            FeatureVec::Ids(v) => FeatureRow::Ids(v),
            FeatureVec::Windows(w) => FeatureRow::Windows(w),
        }
    }
}

/// Fit-then-encode protocol shared by all six encoders.
///
/// `fit` sees only the training split (the paper constructs every lookup
/// table "exactly once on the entire contract training set") and the
/// returned encoder is immutable thereafter. Encoders with geometry knobs
/// (image side, vocabulary caps, context length) expose richer constructors;
/// the trait methods use their documented defaults so generic pipelines can
/// drive any encoder uniformly.
pub trait Featurizer: Sized {
    /// Short stable name, used in benches and reports.
    const NAME: &'static str;

    /// Builds the encoder from the training split.
    fn fit(training: &[DisasmCache]) -> Self;

    /// Encodes one contract.
    fn encode(&self, contract: &DisasmCache) -> FeatureVec;

    /// Encodes a batch, preserving order.
    fn encode_all(&self, batch: &[DisasmCache]) -> Vec<FeatureVec> {
        batch.iter().map(|c| self.encode(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vec_lengths() {
        assert_eq!(FeatureVec::Dense(vec![0.0; 7]).len(), 7);
        assert_eq!(FeatureVec::Ids(vec![1, 2, 3]).len(), 3);
        assert_eq!(FeatureVec::Windows(vec![vec![0; 4], vec![0; 4]]).len(), 8);
        assert!(FeatureVec::Dense(vec![]).is_empty());
    }

    #[test]
    fn accessors_are_exclusive() {
        let d = FeatureVec::Dense(vec![1.0]);
        assert!(d.as_dense().is_some());
        assert!(d.as_ids().is_none());
        assert!(d.as_windows().is_none());
    }
}
