//! The Bytecode Extraction Module (BEM): the paper's data-gathering front
//! end, reproduced over the simulated services.
//!
//! Pipeline (Fig. 1 ➊–➍): scan the query service for contracts deployed in
//! the study window, scrape the explorer's `Phish/Hack` flag for each hash,
//! pull bytecode over `eth_getCode`, deduplicate bit-by-bit, and balance the
//! classes into the final dataset.
//!
//! Extraction is *streaming*: [`ExtractionStream`] is an iterator that
//! pulls one address at a time from the query service's lazy scan cursor
//! and yields deduplicated [`Sample`]s as they are discovered, so the
//! extraction front end holds only the dedup set (refcounted bytecode
//! handles) regardless of corpus size. [`extract_dataset`] drains the
//! stream into the balanced dataset the experiments consume; pipelines
//! that featurize on the fly can consume the iterator directly.

use crate::dataset::{Dataset, Sample};
use phishinghook_chain::{Address, Explorer, QueryService, RpcProvider, SimulatedChain};
use phishinghook_evm::Bytecode;
use phishinghook_synth::Month;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Dataset-construction options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BemConfig {
    /// First month of the scan window.
    pub from: Month,
    /// Last month of the scan window (inclusive).
    pub to: Month,
    /// If set, subsample the majority class so the final dataset is
    /// balanced, as the paper's 7,000-sample corpus is.
    pub balance: bool,
    /// Seed for the balancing subsample.
    pub seed: u64,
}

impl Default for BemConfig {
    fn default() -> Self {
        BemConfig {
            from: Month::FIRST,
            to: Month::LAST,
            balance: true,
            seed: 7,
        }
    }
}

/// Summary counters of one extraction run (the numbers §III reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BemReport {
    /// Contracts returned by the window scan.
    pub scanned: usize,
    /// Scanned contracts carrying the `Phish/Hack` flag.
    pub flagged: usize,
    /// Unique bytecodes after deduplication (both classes).
    pub unique: usize,
    /// Final dataset size after balancing.
    pub dataset: usize,
}

/// Running counters of an [`ExtractionStream`] (the numbers §III reports,
/// available incrementally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Addresses pulled from the scan cursor so far.
    pub scanned: usize,
    /// Scanned addresses carrying the `Phish/Hack` flag so far.
    pub flagged: usize,
    /// Unique bytecodes yielded so far.
    pub unique: usize,
}

/// Streaming extraction front end: scan → label scrape → `eth_getCode` →
/// bit-by-bit dedup, one address per pull. The first deployment of a
/// bytecode determines its month and label. Memory use is bounded by the
/// dedup set (refcounted bytecode handles), not by the scan size.
///
/// # Examples
///
/// ```
/// use phishinghook::bem::ExtractionStream;
/// use phishinghook_chain::SimulatedChain;
/// use phishinghook_synth::{generate_corpus, CorpusConfig, Month};
///
/// let corpus = generate_corpus(&CorpusConfig::small(5));
/// let chain = SimulatedChain::from_corpus(&corpus);
/// let mut stream = ExtractionStream::new(&chain, Month::FIRST, Month::LAST);
/// let first = stream.next().expect("non-empty corpus");
/// assert!(first.label <= 1);
/// assert_eq!(stream.stats().unique, 1); // counters advance incrementally
/// ```
pub struct ExtractionStream<'a> {
    chain: &'a SimulatedChain,
    explorer: Explorer<'a>,
    rpc: RpcProvider<'a>,
    addresses: Box<dyn Iterator<Item = Address> + 'a>,
    seen: HashSet<Bytecode>,
    stats: StreamStats,
}

impl std::fmt::Debug for ExtractionStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractionStream")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'a> ExtractionStream<'a> {
    /// Opens a scan cursor over `[from, to]` (inclusive).
    pub fn new(chain: &'a SimulatedChain, from: Month, to: Month) -> Self {
        ExtractionStream {
            chain,
            explorer: Explorer::new(chain),
            rpc: RpcProvider::new(chain),
            addresses: Box::new(QueryService::new(chain).stream_deployed_between(from, to)),
            seen: HashSet::new(),
            stats: StreamStats::default(),
        }
    }

    /// Counters accumulated so far (final once the stream is drained).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

impl Iterator for ExtractionStream<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        loop {
            let address = self.addresses.next()?;
            self.stats.scanned += 1;
            let is_flagged = self.explorer.is_flagged(&address);
            if is_flagged {
                self.stats.flagged += 1;
            }
            let Ok(bytecode) = self.rpc.eth_get_code(&address) else {
                continue; // EOA or destroyed account: skip, as the paper must
            };
            if bytecode.is_empty() || !self.seen.insert(bytecode.clone()) {
                continue;
            }
            self.stats.unique += 1;
            let month = self
                .chain
                .record(&address)
                .map(|r| r.month)
                .unwrap_or(Month::FIRST);
            return Some(Sample {
                bytecode,
                label: u8::from(is_flagged),
                month,
            });
        }
    }
}

/// Runs the full extraction pipeline against the three data services by
/// draining an [`ExtractionStream`] and balancing the classes.
///
/// Returns the final [`Dataset`] plus the [`BemReport`] counters.
///
/// # Examples
///
/// ```
/// use phishinghook::bem::{extract_dataset, BemConfig};
/// use phishinghook_chain::SimulatedChain;
/// use phishinghook_synth::{generate_corpus, CorpusConfig};
///
/// let corpus = generate_corpus(&CorpusConfig::small(5));
/// let chain = SimulatedChain::from_corpus(&corpus);
/// let (dataset, report) = extract_dataset(&chain, &BemConfig::default());
/// assert!(report.unique <= report.scanned);
/// assert_eq!(dataset.len(), report.dataset);
/// ```
pub fn extract_dataset(chain: &SimulatedChain, config: &BemConfig) -> (Dataset, BemReport) {
    let mut stream = ExtractionStream::new(chain, config.from, config.to);
    let mut samples: Vec<Sample> = stream.by_ref().collect();
    let stats = stream.stats();
    let (scanned, flagged, unique) = (stats.scanned, stats.flagged, stats.unique);

    if config.balance {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut pos: Vec<Sample> = Vec::new();
        let mut neg: Vec<Sample> = Vec::new();
        for s in samples {
            if s.label == 1 {
                pos.push(s);
            } else {
                neg.push(s);
            }
        }
        let keep = pos.len().min(neg.len());
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        pos.truncate(keep);
        neg.truncate(keep);
        pos.extend(neg);
        pos.shuffle(&mut rng);
        samples = pos;
    }

    let dataset = Dataset::new(samples);
    let report = BemReport {
        scanned,
        flagged,
        unique,
        dataset: dataset.len(),
    };
    (dataset, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    fn chain(seed: u64) -> SimulatedChain {
        SimulatedChain::from_corpus(&generate_corpus(&CorpusConfig::small(seed)))
    }

    #[test]
    fn dedup_collapses_clones() {
        let chain = chain(11);
        let (_, report) = extract_dataset(
            &chain,
            &BemConfig {
                balance: false,
                ..Default::default()
            },
        );
        assert!(report.unique < report.scanned, "clones should collapse");
        assert_eq!(report.scanned, chain.len());
    }

    #[test]
    fn balanced_dataset_is_balanced() {
        let (dataset, _) = extract_dataset(&chain(13), &BemConfig::default());
        let pos = dataset.positives();
        assert_eq!(pos * 2, dataset.len());
    }

    #[test]
    fn window_restriction_reduces_scan() {
        let chain = chain(17);
        let full = extract_dataset(
            &chain,
            &BemConfig {
                balance: false,
                ..Default::default()
            },
        );
        let early = extract_dataset(
            &chain,
            &BemConfig {
                to: Month(3),
                balance: false,
                ..Default::default()
            },
        );
        assert!(early.1.scanned < full.1.scanned);
    }

    #[test]
    fn stream_agrees_with_batch_extraction() {
        let chain = chain(23);
        let mut stream = ExtractionStream::new(&chain, Month::FIRST, Month::LAST);
        let streamed: Vec<Sample> = stream.by_ref().collect();
        let stats = stream.stats();
        let (dataset, report) = extract_dataset(
            &chain,
            &BemConfig {
                balance: false,
                ..Default::default()
            },
        );
        assert_eq!(streamed, dataset.samples);
        assert_eq!(stats.scanned, report.scanned);
        assert_eq!(stats.flagged, report.flagged);
        assert_eq!(stats.unique, report.unique);
    }

    #[test]
    fn stream_stats_advance_incrementally() {
        let chain = chain(29);
        let mut stream = ExtractionStream::new(&chain, Month::FIRST, Month::LAST);
        assert_eq!(stream.stats(), StreamStats::default());
        let _first = stream.next().expect("non-empty corpus");
        let mid = stream.stats();
        assert_eq!(mid.unique, 1);
        assert!(mid.scanned >= 1);
        let _rest: Vec<Sample> = stream.by_ref().collect();
        assert!(stream.stats().scanned > mid.scanned);
    }

    #[test]
    fn labels_come_from_the_explorer() {
        let chain = chain(19);
        let (dataset, report) = extract_dataset(
            &chain,
            &BemConfig {
                balance: false,
                ..Default::default()
            },
        );
        assert!(report.flagged > 0);
        // Every label in the dataset is 0/1 and positives exist.
        assert!(dataset.positives() > 0);
        assert!(dataset.labels().iter().all(|&l| l <= 1));
    }
}
