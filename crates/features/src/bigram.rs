//! SCSGuard's n-gram representation.
//!
//! "Each hexadecimal string within the bytecode is read as a bigram
//! (sequences of 6 characters). These bigrams are numerically encoded to
//! create a vocabulary (i.e., a list of integers), and the sequences are
//! padded to uniform lengths." (§IV-B)
//!
//! Six hex characters = three bytes; consecutive non-overlapping 3-byte
//! chunks are mapped to integer ids via a vocabulary built on the training
//! split. Id 0 is reserved for padding and 1 for out-of-vocabulary chunks.
//! The encoder reads the raw bytes of the shared [`DisasmCache`].

use crate::featurizer::{FeatureVec, Featurizer};
use phishinghook_artifact::{ArtifactError, ByteReader, ByteWriter};
use phishinghook_evm::DisasmCache;
use std::collections::HashMap;

/// Reserved padding token id.
pub const PAD: u32 = 0;
/// Reserved out-of-vocabulary token id.
pub const UNK: u32 = 1;

/// Default vocabulary cap used by the [`Featurizer`] impl.
pub const DEFAULT_VOCAB: usize = 2048;
/// Default padded sequence length used by the [`Featurizer`] impl.
pub const DEFAULT_LEN: usize = 48;

/// Fitted bigram vocabulary plus sequence geometry.
///
/// Encoders built by [`BigramEncoder::fit`] retain the raw chunk counts
/// (in memory only — never serialized) so [`BigramEncoder::extend_fit`]
/// can fold new contracts in and re-rank exactly as a full refit would.
#[derive(Debug, Clone)]
pub struct BigramEncoder {
    vocab: HashMap<[u8; 3], u32>,
    max_len: usize,
    /// Raw chunk counts behind `vocab`; empty after [`BigramEncoder::read_state`].
    counts: HashMap<[u8; 3], u64>,
    /// Vocabulary cap; `0` after [`BigramEncoder::read_state`] (the cap is
    /// not serialized — a restored encoder cannot be extended anyway).
    max_vocab: usize,
}

/// Ranks chunks most-frequent-first (ties by chunk bytes, matching the
/// canonical fit order) and assigns the contiguous id range `[2, n + 2)`.
fn rank_vocab(counts: &HashMap<[u8; 3], u64>, max_vocab: usize) -> HashMap<[u8; 3], u32> {
    let mut ranked: Vec<([u8; 3], u64)> = counts.iter().map(|(&k, &v)| (k, v)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(max_vocab)
        .enumerate()
        .map(|(i, (chunk, _))| (chunk, i as u32 + 2)) // 0 = PAD, 1 = UNK
        .collect()
}

impl BigramEncoder {
    /// Builds the vocabulary from the training caches, keeping the
    /// `max_vocab` most frequent chunks, and fixes the padded length.
    ///
    /// # Panics
    ///
    /// Panics if `max_len == 0` or `max_vocab == 0`.
    pub fn fit(training: &[DisasmCache], max_vocab: usize, max_len: usize) -> Self {
        assert!(max_len > 0, "max_len must be positive");
        assert!(max_vocab > 0, "max_vocab must be positive");
        let mut counts: HashMap<[u8; 3], u64> = HashMap::new();
        for cache in training {
            for chunk in cache.bytes().chunks_exact(3) {
                *counts.entry([chunk[0], chunk[1], chunk[2]]).or_insert(0) += 1;
            }
        }
        let vocab = rank_vocab(&counts, max_vocab);
        BigramEncoder {
            vocab,
            max_len,
            counts,
            max_vocab,
        }
    }

    /// `true` when this encoder still holds the raw chunk counts a refit
    /// needs (i.e. it was fitted in this process, not restored from an
    /// artifact).
    pub fn can_extend(&self) -> bool {
        self.max_vocab > 0
    }

    /// Folds freshly observed caches into the chunk counts and re-ranks
    /// the vocabulary — byte-for-byte what a full refit on the
    /// concatenated fit set would produce, at O(new) scan cost.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] when the encoder was restored from an
    /// artifact: artifacts carry the ranked vocabulary, not the raw
    /// counts, so extending it could silently diverge from a refit.
    pub fn extend_fit(&mut self, new: &[DisasmCache]) -> Result<(), ArtifactError> {
        if !self.can_extend() {
            return Err(ArtifactError::Mismatch(
                "bigram encoder was restored from an artifact and carries no raw counts; \
                 refit instead of extending"
                    .into(),
            ));
        }
        for cache in new {
            for chunk in cache.bytes().chunks_exact(3) {
                *self
                    .counts
                    .entry([chunk[0], chunk[1], chunk[2]])
                    .or_insert(0) += 1;
            }
        }
        self.vocab = rank_vocab(&self.counts, self.max_vocab);
        Ok(())
    }

    /// Vocabulary size including the PAD and UNK slots (the embedding-table
    /// size a downstream model needs).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len() + 2
    }

    /// Padded sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Serializes the fitted vocabulary (sorted by chunk, so identical
    /// encoders serialize identically) plus the padded length.
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.max_len);
        let mut entries: Vec<([u8; 3], u32)> = self.vocab.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        w.put_usize(entries.len());
        for (chunk, id) in entries {
            w.put_raw(&chunk);
            w.put_u32(id);
        }
    }

    /// Rebuilds a fitted encoder from [`BigramEncoder::write_state`] bytes.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Corrupt`] on truncation, a zero length, a reserved
    /// (PAD/UNK) id, or a duplicate chunk.
    pub fn read_state(r: &mut ByteReader<'_>) -> Result<Self, ArtifactError> {
        let max_len = r.take_usize()?;
        if max_len == 0 {
            return Err(ArtifactError::Corrupt("max_len must be positive".into()));
        }
        // Each entry occupies 7 bytes on the wire; the bounded count
        // keeps a crafted payload from forcing a huge pre-allocation.
        let len = r.take_count(7)?;
        let mut vocab = HashMap::with_capacity(len);
        // Fitting assigns the contiguous id range [2, len + 2); anything
        // else would let a reloaded encoder emit ids past the embedding
        // table a downstream model sizes from `vocab_size()`.
        let mut seen_ids = vec![false; len];
        for _ in 0..len {
            let raw = r.take_raw(3)?;
            let chunk = [raw[0], raw[1], raw[2]];
            let id = r.take_u32()?;
            let rank = (id as usize).wrapping_sub(2);
            if id < 2 || rank >= len {
                return Err(ArtifactError::Corrupt(format!(
                    "bigram id {id} outside the contiguous [2, {}) range",
                    len + 2
                )));
            }
            if std::mem::replace(&mut seen_ids[rank], true) {
                return Err(ArtifactError::Corrupt(format!("duplicate bigram id {id}")));
            }
            if vocab.insert(chunk, id).is_some() {
                return Err(ArtifactError::Corrupt(format!(
                    "duplicate bigram chunk {chunk:02X?}"
                )));
            }
        }
        Ok(BigramEncoder {
            vocab,
            max_len,
            counts: HashMap::new(),
            max_vocab: 0,
        })
    }

    /// Encodes one contract as a fixed-length id sequence: truncated at
    /// `max_len`, right-padded with [`PAD`].
    pub fn encode(&self, contract: &DisasmCache) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.max_len);
        for chunk in contract.bytes().chunks_exact(3).take(self.max_len) {
            let key = [chunk[0], chunk[1], chunk[2]];
            out.push(self.vocab.get(&key).copied().unwrap_or(UNK));
        }
        out.resize(self.max_len, PAD);
        out
    }
}

impl Featurizer for BigramEncoder {
    const NAME: &'static str = "scsguard_bigram";

    fn fit(training: &[DisasmCache]) -> Self {
        BigramEncoder::fit(training, DEFAULT_VOCAB, DEFAULT_LEN)
    }

    fn encode(&self, contract: &DisasmCache) -> FeatureVec {
        FeatureVec::Ids(self.encode(contract))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::Bytecode;

    fn cache(bytes: &[u8]) -> DisasmCache {
        DisasmCache::build(&Bytecode::new(bytes.to_vec()))
    }

    #[test]
    fn ids_start_after_reserved() {
        let train = vec![cache(&[1, 2, 3, 1, 2, 3, 9, 9, 9])];
        let enc = BigramEncoder::fit(&train, 100, 8);
        let ids = enc.encode(&train[0]);
        // Most frequent chunk [1,2,3] gets id 2.
        assert_eq!(ids[0], 2);
        assert_eq!(ids[1], 2);
        assert_eq!(ids[2], 3);
        assert_eq!(ids[3], PAD);
    }

    #[test]
    fn unknown_chunks_map_to_unk() {
        let train = vec![cache(&[1, 2, 3])];
        let enc = BigramEncoder::fit(&train, 10, 4);
        let ids = enc.encode(&cache(&[7, 7, 7]));
        assert_eq!(ids[0], UNK);
    }

    #[test]
    fn sequences_are_uniform_length() {
        let train = vec![cache(&[1, 2, 3, 4, 5, 6])];
        let enc = BigramEncoder::fit(&train, 10, 5);
        assert_eq!(enc.encode(&cache(&[])).len(), 5);
        assert_eq!(enc.encode(&cache(&[1u8; 300])).len(), 5);
    }

    #[test]
    fn vocab_capped() {
        let bytes: Vec<u8> = (0..=255u8).flat_map(|b| [b, b, b]).collect();
        let enc = BigramEncoder::fit(&[cache(&bytes)], 16, 8);
        assert_eq!(enc.vocab_size(), 18);
    }

    #[test]
    fn extend_fit_equals_full_refit() {
        let old = vec![cache(&[1, 2, 3, 1, 2, 3, 9, 9, 9])];
        // The new batch makes [9,9,9] overtake [1,2,3]: the re-rank must
        // reassign ids exactly as a refit would.
        let new = vec![cache(&[9, 9, 9, 9, 9, 9, 7, 7, 7])];
        let mut extended = BigramEncoder::fit(&old, 2, 8);
        assert!(extended.can_extend());
        extended.extend_fit(&new).unwrap();
        let all: Vec<DisasmCache> = old.iter().chain(new.iter()).cloned().collect();
        let refit = BigramEncoder::fit(&all, 2, 8);
        let mut a = phishinghook_artifact::ByteWriter::new();
        let mut b = phishinghook_artifact::ByteWriter::new();
        extended.write_state(&mut a);
        refit.write_state(&mut b);
        assert_eq!(a.into_bytes(), b.into_bytes());
        assert_eq!(extended.encode(&new[0]), refit.encode(&new[0]));
        // Restored encoders have no counts to extend.
        let mut w = phishinghook_artifact::ByteWriter::new();
        refit.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored =
            BigramEncoder::read_state(&mut phishinghook_artifact::ByteReader::new(&bytes)).unwrap();
        assert!(!restored.can_extend());
        assert!(matches!(
            restored.extend_fit(&new),
            Err(ArtifactError::Mismatch(_))
        ));
    }

    #[test]
    fn trailing_partial_chunk_is_dropped() {
        let train = vec![cache(&[1, 2, 3, 4, 5])]; // 5 bytes: one chunk + tail
        let enc = BigramEncoder::fit(&train, 10, 4);
        let ids = enc.encode(&train[0]);
        assert_eq!(ids, vec![2, PAD, PAD, PAD]);
    }
}
