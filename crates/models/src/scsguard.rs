//! SCSGuard: embedding → multi-head attention → GRU → dense (Hu et al.,
//! INFOCOM'22 Workshops), the paper's best language model (90.46%).
//!
//! "SCSGuard begins with an embedding layer that maps bigram indices to
//! dense vectors. A multi-head attention mechanism is applied to capture
//! dependencies between different parts of the sequence, followed by a GRU
//! layer that models sequential patterns in the data. Finally, a fully
//! connected linear layer generates the logits." (§IV-B)

use crate::trainer::{
    predict_binary, predict_binary_batch, train_binary, TrainConfig, PREDICT_BATCH,
};
use phishinghook_nn::{Gru, Linear, MultiHeadAttention, ParamId, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SCSGuard configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScsGuardConfig {
    /// Bigram vocabulary size (from the fitted encoder).
    pub vocab: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for ScsGuardConfig {
    fn default() -> Self {
        ScsGuardConfig {
            vocab: 4096,
            embed_dim: 24,
            heads: 2,
            hidden: 24,
            train: TrainConfig::default(),
        }
    }
}

/// The SCSGuard scam-detection network over bigram id sequences.
///
/// # Examples
///
/// ```
/// use phishinghook_models::{ScsGuard, TrainConfig};
/// use phishinghook_models::scsguard::ScsGuardConfig;
///
/// let cfg = ScsGuardConfig {
///     vocab: 16,
///     train: TrainConfig { epochs: 25, ..Default::default() },
///     ..Default::default()
/// };
/// let mut model = ScsGuard::new(cfg);
/// // Token 3 at the front means phishing in this toy task.
/// let xs: Vec<Vec<u32>> = (0..20).map(|i| vec![3 * (i % 2) as u32, 5, 7, 0]).collect();
/// let ys: Vec<u8> = (0..20).map(|i| (i % 2) as u8).collect();
/// model.fit(&xs, &ys);
/// let probs = model.predict_proba(&xs);
/// assert!(probs[1] > probs[0]);
/// ```
#[derive(Debug)]
pub struct ScsGuard {
    config: ScsGuardConfig,
    store: ParamStore,
    embed: ParamId,
    attn: MultiHeadAttention,
    gru: Gru,
    head: Linear,
}

impl ScsGuard {
    /// Builds the network with fresh parameters.
    pub fn new(config: ScsGuardConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let embed = store.param(Tensor::random(
            &[config.vocab.max(2), config.embed_dim],
            0.1,
            &mut rng,
        ));
        let attn = MultiHeadAttention::new(&mut store, config.embed_dim, config.heads, &mut rng);
        let gru = Gru::new(&mut store, config.embed_dim, config.hidden, &mut rng);
        let head = Linear::new(&mut store, config.hidden, 1, &mut rng);
        ScsGuard {
            config,
            store,
            embed,
            attn,
            gru,
            head,
        }
    }

    fn logit(&self, tape: &mut Tape, store: &ParamStore, ids: &[u32]) -> Var {
        let table = tape.param(store, self.embed);
        self.logit_with(tape, store, table, ids)
    }

    /// [`ScsGuard::logit`] over a pre-recorded embedding-table leaf, so a
    /// batched tape copies the table once per mini-batch instead of once
    /// per sequence.
    fn logit_with(&self, tape: &mut Tape, store: &ParamStore, table: Var, ids: &[u32]) -> Var {
        let e = tape.embedding(table, ids);
        let a = self.attn.forward(tape, store, e, false);
        let x = tape.add(e, a); // residual attention
        let h = self.gru.forward(tape, store, x);
        self.head.forward(tape, store, h)
    }

    /// Trains on bigram id sequences with 0/1 labels. The GRU recurrence is
    /// inherently sequential, so each sample records its own subgraph; the
    /// batch shares one tape and the per-sample logits are stacked into the
    /// `(B, 1)` column for a single backward pass.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn fit(&mut self, xs: &[Vec<u32>], y: &[u8]) {
        let (embed, attn, gru, head) = (self.embed, self.attn.clone(), self.gru.clone(), self.head);
        train_binary(
            &mut self.store,
            xs,
            y,
            &self.config.train,
            &[],
            |t, s, batch: &[&Vec<u32>]| {
                // One embedding-table leaf per batch, shared by every
                // sequence subgraph.
                let table = t.param(s, embed);
                let logits: Vec<Var> = batch
                    .iter()
                    .map(|ids| {
                        let e = t.embedding(table, ids);
                        let a = attn.forward(t, s, e, false);
                        let x = t.add(e, a);
                        let hsz = gru.forward(t, s, x);
                        head.forward(t, s, hsz)
                    })
                    .collect();
                t.stack_rows(&logits)
            },
        );
    }

    /// Phishing probability per sequence.
    pub fn predict_proba(&self, xs: &[Vec<u32>]) -> Vec<f32> {
        predict_binary(&self.store, xs, |t, s, ids| self.logit(t, s, ids))
    }

    /// Batched phishing probabilities over one arena-reused tape,
    /// bit-identical to [`ScsGuard::predict_proba`].
    pub fn predict_proba_batch(&self, xs: &[Vec<u32>]) -> Vec<f32> {
        predict_binary_batch(&self.store, xs, PREDICT_BATCH, |t, s, batch| {
            let table = t.param(s, self.embed);
            let logits: Vec<Var> = batch
                .iter()
                .map(|ids| self.logit_with(t, s, table, ids))
                .collect();
            t.stack_rows(&logits)
        })
    }

    /// Total trainable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Serializes the fitted parameter tensors (flat, bit-exact).
    pub fn export_state(&self) -> Vec<u8> {
        self.store.export_tensors()
    }

    /// Restores parameters exported from a same-configured model, after
    /// which predictions are bit-identical to the exporter's.
    ///
    /// # Errors
    ///
    /// See [`phishinghook_nn::ParamStore::import_tensors`].
    pub fn import_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), phishinghook_artifact::ArtifactError> {
        self.store.import_tensors(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> ScsGuardConfig {
        ScsGuardConfig {
            vocab: 32,
            embed_dim: 8,
            heads: 2,
            hidden: 8,
            train: TrainConfig {
                epochs: 20,
                learning_rate: 0.02,
                ..Default::default()
            },
        }
    }

    #[test]
    fn learns_token_presence() {
        let mut model = ScsGuard::new(toy_config());
        // Class 1 sequences contain token 9 somewhere.
        let xs: Vec<Vec<u32>> = (0..40)
            .map(|i| {
                if i % 2 == 1 {
                    vec![2, 9, 4, 6, 1, 0]
                } else {
                    vec![2, 3, 4, 6, 1, 0]
                }
            })
            .collect();
        let ys: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
        model.fit(&xs, &ys);
        let probs = model.predict_proba(&xs);
        let acc = probs
            .iter()
            .zip(&ys)
            .filter(|(p, &l)| (**p >= 0.5) == (l == 1))
            .count();
        assert!(acc >= 38, "accuracy {acc}/40");
    }

    #[test]
    fn out_of_vocab_ids_are_clamped() {
        let model = ScsGuard::new(toy_config());
        // Id beyond vocab must not panic (clamped to the last row).
        let probs = model.predict_proba(&[vec![9999, 1, 2]]);
        assert!(probs[0].is_finite());
    }

    #[test]
    fn parameter_count_is_positive() {
        let model = ScsGuard::new(toy_config());
        assert!(model.parameter_count() > 100);
    }
}
