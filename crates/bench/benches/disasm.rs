//! Criterion bench: BDM disassembly throughput — the per-contract cost of
//! the paper's preprocessing stage.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use phishinghook_evm::disasm::{disassemble, to_csv};
use phishinghook_synth::{generate_contract, Difficulty, Family, Month};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_disasm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let codes: Vec<Vec<u8>> = (0..32)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(0),
                &Difficulty::default(),
                &mut rng,
            )
            .as_bytes()
            .to_vec()
        })
        .collect();
    let total_bytes: usize = codes.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("bdm");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("disassemble_32_contracts", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for code in &codes {
                n += disassemble(code).len();
            }
            n
        })
    });
    group.bench_function("disassemble_to_csv", |b| {
        b.iter_batched(
            || disassemble(&codes[0]),
            |instrs| to_csv(&instrs),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_disasm
}
criterion_main!(benches);
