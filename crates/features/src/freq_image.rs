//! Frequency-encoded RGB images of disassembled bytecode — the ViT+Freq
//! representation.
//!
//! "A lookup table encodes each opcode and operand of the disassembled
//! bytecode to a numerical value which corresponds to their frequency of
//! appearance in the training set. [...] The concept relies on assigning
//! higher pixel intensity values in the R, G, and B channels to the most
//! frequently encountered mnemonics, operands and gas consumptions."
//! (§IV-B)
//!
//! One disassembled instruction becomes one pixel: R from the mnemonic's
//! training-set frequency, G from the operand's, B from the gas value's.
//! The lookup table is built exactly once, on the training split.

use phishinghook_evm::disasm::Disassembler;
use phishinghook_evm::Bytecode;
use std::collections::HashMap;

/// Fitted frequency tables plus the output image geometry.
#[derive(Debug, Clone)]
pub struct FreqImageEncoder {
    side: usize,
    mnemonic_freq: HashMap<String, f32>,
    operand_freq: HashMap<Vec<u8>, f32>,
    gas_freq: HashMap<Option<u32>, f32>,
}

impl FreqImageEncoder {
    /// Fits the three lookup tables (mnemonic, operand, gas) on the training
    /// set and fixes the image side.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn fit(training: &[Bytecode], side: usize) -> Self {
        assert!(side > 0, "image side must be positive");
        let mut mnemonic_counts: HashMap<String, u64> = HashMap::new();
        let mut operand_counts: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut gas_counts: HashMap<Option<u32>, u64> = HashMap::new();
        for code in training {
            for instr in Disassembler::new(code.as_bytes()) {
                *mnemonic_counts
                    .entry(instr.mnemonic.name().into_owned())
                    .or_insert(0) += 1;
                *operand_counts.entry(instr.operand.clone()).or_insert(0) += 1;
                *gas_counts.entry(instr.gas()).or_insert(0) += 1;
            }
        }
        FreqImageEncoder {
            side,
            mnemonic_freq: normalize(mnemonic_counts),
            operand_freq: normalize(operand_counts),
            gas_freq: normalize(gas_counts),
        }
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Length of the produced feature vector (`3 · side²`).
    pub fn len(&self) -> usize {
        3 * self.side * self.side
    }

    /// Always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes one bytecode: instruction `k` becomes pixel `k` with channel
    /// intensities given by the fitted frequency tables (unseen entries get
    /// intensity 0, like any out-of-vocabulary element).
    pub fn encode(&self, code: &Bytecode) -> Vec<f32> {
        let pixels = self.side * self.side;
        let mut out = vec![0.0f32; 3 * pixels];
        for (k, instr) in Disassembler::new(code.as_bytes()).take(pixels).enumerate() {
            out[k] = self
                .mnemonic_freq
                .get(instr.mnemonic.name().as_ref())
                .copied()
                .unwrap_or(0.0);
            out[pixels + k] = self.operand_freq.get(&instr.operand).copied().unwrap_or(0.0);
            out[2 * pixels + k] = self.gas_freq.get(&instr.gas()).copied().unwrap_or(0.0);
        }
        out
    }
}

/// Log-scaled max-normalization: the most frequent entry gets intensity 1.
fn normalize<K: std::hash::Hash + Eq>(counts: HashMap<K, u64>) -> HashMap<K, f32> {
    let max = counts.values().copied().max().unwrap_or(1) as f32;
    counts
        .into_iter()
        .map(|(k, c)| (k, (1.0 + c as f32).ln() / (1.0 + max).ln()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(hex: &str) -> Bytecode {
        Bytecode::from_hex(hex).unwrap()
    }

    #[test]
    fn most_frequent_mnemonic_gets_highest_red() {
        // PUSH1 appears twice, MSTORE once.
        let train = vec![code("0x6080604052")];
        let enc = FreqImageEncoder::fit(&train, 4);
        let img = enc.encode(&train[0]);
        let pixels = 16;
        let push1_red = img[0];
        let mstore_red = img[2];
        assert!(push1_red > mstore_red, "{push1_red} vs {mstore_red}");
        assert!((push1_red - 1.0).abs() < 1e-6);
        let _ = pixels;
    }

    #[test]
    fn unseen_instruction_is_dark() {
        let train = vec![code("0x6080")];
        let enc = FreqImageEncoder::fit(&train, 4);
        let img = enc.encode(&code("0x01")); // ADD never seen
        // Gas 3 was seen (PUSH1 has gas 3, ADD also gas 3) so blue may fire,
        // but the red (mnemonic) channel must be zero.
        assert_eq!(img[0], 0.0);
    }

    #[test]
    fn output_dimensions() {
        let enc = FreqImageEncoder::fit(&[code("0x6080")], 8);
        assert_eq!(enc.encode(&code("0x6080")).len(), 3 * 64);
        assert_eq!(enc.len(), 192);
    }

    #[test]
    fn intensities_in_unit_range() {
        let train: Vec<Bytecode> = vec![code("0x6080604052"), code("0x010203")];
        let enc = FreqImageEncoder::fit(&train, 8);
        for c in &train {
            assert!(enc.encode(c).iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn empty_code_is_black() {
        let enc = FreqImageEncoder::fit(&[code("0x6080")], 4);
        assert!(enc.encode(&code("0x")).iter().all(|&v| v == 0.0));
    }
}
