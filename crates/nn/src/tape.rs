//! Reverse-mode automatic differentiation on a linear tape.
//!
//! Each mini-batch records its computation on a [`Tape`] and calls
//! [`Tape::backward`], which accumulates parameter gradients into the
//! [`ParamStore`]; [`Tape::reset`] then recycles the node arena *and*
//! every value buffer, so a tape reused across batches stops allocating
//! once shapes stabilize. Dense algebra runs on the blocked
//! [`gemm`](phishinghook_linalg::gemm) kernels, whose fixed per-row
//! accumulation order makes a batched `(B, d)` forward bit-identical to
//! `B` row-wise passes. The op set is exactly what the paper's six deep
//! models need: dense algebra, attention (matmul/transpose/softmax),
//! normalization, embeddings, small convolutions, the ECA
//! channel-attention pieces, and the batched loss head
//! ([`Tape::stack_rows`] + [`Tape::bce_with_logits_batch`]).
//!
//! Gradient correctness is validated against central finite differences in
//! the test module — every op is covered by at least one composite check.

use crate::params::{GradBuffer, ParamId, ParamStore};
use crate::tensor::Tensor;
use phishinghook_linalg::gemm;

/// Handle to a node (intermediate value) on a tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, #[allow(dead_code)] f32),
    MatMul(Var, Var),
    Transpose(Var),
    Relu(Var),
    Gelu(Var),
    Silu(Var),
    Sigmoid(Var),
    Tanh(Var),
    SoftmaxRows(Var),
    LayerNormRows {
        x: Var,
        gamma: Var,
        beta: Var,
    },
    Embedding {
        table: Var,
        ids: Vec<u32>,
    },
    MeanRows(Var),
    AddBias {
        x: Var,
        bias: Var,
    },
    Reshape(Var),
    ConcatRows(Var, Var),
    ConcatCols(Var, Var),
    RowAt(Var, usize),
    StackRows(Vec<Var>),
    BceWithLogit {
        logit: Var,
        target: f32,
    },
    BceWithLogitsBatch {
        logits: Var,
        targets: Vec<f32>,
        denom: f32,
    },
    Conv2d {
        x: Var,
        w: Var,
        b: Var,
        stride: usize,
        pad: usize,
        groups: usize,
    },
    ChannelNorm {
        x: Var,
        gamma: Var,
        beta: Var,
    },
    GlobalAvgPool(Var),
    Conv1dSame {
        x: Var,
        w: Var,
    },
    ScaleChannels {
        x: Var,
        s: Var,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    param: Option<ParamId>,
    /// Cached auxiliary values some backwards need (e.g. normalized x̂).
    aux: Option<Tensor>,
}

/// A gradient tape: records a computation, then differentiates it.
///
/// # Examples
///
/// ```
/// use phishinghook_nn::{ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.param(Tensor::from_vec(&[1, 1], vec![2.0]));
/// let mut tape = Tape::new();
/// let wv = tape.param(&store, w);
/// let x = tape.input(Tensor::from_vec(&[1, 1], vec![3.0]));
/// let y = tape.matmul(wv, x); // y = 6
/// let loss = tape.bce_with_logit(y, 1.0);
/// tape.backward(loss, &mut store);
/// assert!(store.grad(w).data()[0] < 0.0); // push the logit up
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Recycled `f32` buffers harvested by [`Tape::reset`]; ops draw from
    /// here before touching the allocator, so a tape reused across
    /// mini-batches reaches a steady state with zero value allocations.
    pool: Vec<Vec<f32>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clears the recorded graph while keeping the node arena *and* every
    /// value buffer for reuse: buffers are harvested in reverse creation
    /// order, so the next identically-shaped recording pops them back in
    /// creation order with no reallocation. A reused tape's *forward*
    /// passes stop allocating value buffers once shapes stabilize
    /// ([`Tape::backward`] still allocates its gradient buffers per run);
    /// this is the arena behind one-tape-per-mini-batch training.
    pub fn reset(&mut self) {
        let Tape { nodes, pool } = self;
        for node in nodes.drain(..).rev() {
            if let Some(aux) = node.aux {
                pool.push(aux.into_data());
            }
            pool.push(node.value.into_data());
        }
    }

    /// A zero-filled buffer of length `n`, recycled from the arena when
    /// possible — for ops that *accumulate* into their output.
    fn grab(&mut self, n: usize) -> Vec<f32> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0.0);
        v
    }

    /// A length-`n` buffer whose contents are unspecified (stale values
    /// from a previous node are possible) — only for ops that fully
    /// overwrite every element, which skips the redundant zero-fill
    /// `grab` would pay before the kernel overwrites it again.
    fn grab_dirty(&mut self, n: usize) -> Vec<f32> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.resize(n, 0.0);
        v
    }

    /// An empty buffer with capacity for `n` elements, recycled from the
    /// arena when possible.
    fn grab_empty(&mut self, n: usize) -> Vec<f32> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.reserve(n);
        v
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.push_aux(value, op, None)
    }

    fn push_aux(&mut self, value: Tensor, op: Op, aux: Option<Tensor>) -> Var {
        self.nodes.push(Node {
            value,
            op,
            param: None,
            aux,
        });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Records a constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Records a parameter leaf (its gradient flows into the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let src = store.value(id);
        let shape = src.shape().to_vec();
        let mut data = self.grab_empty(src.len());
        data.extend_from_slice(src.data());
        let v = self.push(Tensor::from_vec(&shape, data), Op::Leaf);
        self.nodes[v.0].param = Some(id);
        v
    }

    // -- elementwise ------------------------------------------------------

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let shape = ta.shape().to_vec();
        let mut data = self.grab_empty(shape.iter().product());
        {
            let (ta, tb) = (self.nodes[a.0].value.data(), self.nodes[b.0].value.data());
            data.extend(ta.iter().zip(tb).map(|(x, y)| x + y));
        }
        self.push(Tensor::from_vec(&shape, data), Op::Add(a, b))
    }

    /// Elementwise product (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let shape = ta.shape().to_vec();
        let mut data = self.grab_empty(shape.iter().product());
        {
            let (ta, tb) = (self.nodes[a.0].value.data(), self.nodes[b.0].value.data());
            data.extend(ta.iter().zip(tb).map(|(x, y)| x * y));
        }
        self.push(Tensor::from_vec(&shape, data), Op::Mul(a, b))
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let t = self.map(a, |x| x * c);
        self.push(t, Op::Scale(a, c))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let t = self.map(a, |x| x + c);
        self.push(t, Op::AddScalar(a, c))
    }

    // -- dense algebra ----------------------------------------------------

    /// 2-D matrix product through the blocked
    /// [`gemm`](phishinghook_linalg::gemm) kernel. Per output element the
    /// accumulation order is fixed (increasing `k`), so a row's result is
    /// bit-identical whether it is multiplied alone or inside a batch —
    /// the foundation of the batched-vs-rowwise parity guarantee.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.nodes[a.0].value.dims2();
        let (k2, n) = self.nodes[b.0].value.dims2();
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = self.grab_dirty(m * n);
        gemm::matmul_into(
            m,
            k,
            n,
            self.nodes[a.0].value.data(),
            self.nodes[b.0].value.data(),
            &mut out,
        );
        self.push(Tensor::from_vec(&[m, n], out), Op::MatMul(a, b))
    }

    /// 2-D transpose (tiled kernel, pooled output buffer).
    pub fn transpose(&mut self, a: Var) -> Var {
        let (m, n) = self.nodes[a.0].value.dims2();
        let mut out = self.grab_dirty(m * n);
        gemm::transpose_into(m, n, self.nodes[a.0].value.data(), &mut out);
        self.push(Tensor::from_vec(&[n, m], out), Op::Transpose(a))
    }

    /// Adds a `(d)` bias to every row of an `(l, d)` matrix (row
    /// broadcast — the batched dense layers lean on this for `(B, d)`
    /// activations).
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let (l, d) = self.nodes[x.0].value.dims2();
        assert_eq!(self.nodes[bias.0].value.len(), d, "bias width mismatch");
        let mut out = self.grab_empty(l * d);
        {
            let tx = self.nodes[x.0].value.data();
            let tb = self.nodes[bias.0].value.data();
            for row in tx.chunks_exact(d) {
                out.extend(row.iter().zip(tb).map(|(x, b)| x + b));
            }
        }
        self.push(Tensor::from_vec(&[l, d], out), Op::AddBias { x, bias })
    }

    /// Reinterprets under a new shape (same element count).
    pub fn reshape(&mut self, x: Var, shape: &[usize]) -> Var {
        let t = self.nodes[x.0].value.reshaped(shape);
        self.push(t, Op::Reshape(x))
    }

    /// Vertical concatenation of `(la, d)` and `(lb, d)`.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (la, da) = self.nodes[a.0].value.dims2();
        let (lb, db) = self.nodes[b.0].value.dims2();
        assert_eq!(da, db, "concat_rows width mismatch");
        let mut data = self.grab_empty((la + lb) * da);
        data.extend_from_slice(self.nodes[a.0].value.data());
        data.extend_from_slice(self.nodes[b.0].value.data());
        self.push(Tensor::from_vec(&[la + lb, da], data), Op::ConcatRows(a, b))
    }

    /// Vertical concatenation of any number of equal-width matrices — the
    /// batched trainer stacks per-sample `(1, 1)` logits into the `(B, 1)`
    /// logit column with one node instead of a pairwise concat chain.
    ///
    /// # Panics
    ///
    /// Panics on an empty part list or mismatched widths.
    pub fn stack_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack_rows of no parts");
        let (_, d) = self.nodes[parts[0].0].value.dims2();
        let total: usize = parts
            .iter()
            .map(|p| {
                let (l, dp) = self.nodes[p.0].value.dims2();
                assert_eq!(dp, d, "stack_rows width mismatch");
                l
            })
            .sum();
        let mut data = self.grab_empty(total * d);
        for p in parts {
            data.extend_from_slice(self.nodes[p.0].value.data());
        }
        self.push(
            Tensor::from_vec(&[total, d], data),
            Op::StackRows(parts.to_vec()),
        )
    }

    /// Horizontal concatenation of `(l, da)` and `(l, db)`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (la, da) = self.nodes[a.0].value.dims2();
        let (lb, db) = self.nodes[b.0].value.dims2();
        assert_eq!(la, lb, "concat_cols height mismatch");
        let mut data = self.grab_empty(la * (da + db));
        for i in 0..la {
            data.extend_from_slice(&self.nodes[a.0].value.data()[i * da..(i + 1) * da]);
            data.extend_from_slice(&self.nodes[b.0].value.data()[i * db..(i + 1) * db]);
        }
        self.push(Tensor::from_vec(&[la, da + db], data), Op::ConcatCols(a, b))
    }

    /// Extracts row `idx` of an `(l, d)` matrix as a `(1, d)` matrix.
    pub fn row_at(&mut self, x: Var, idx: usize) -> Var {
        let (l, d) = self.nodes[x.0].value.dims2();
        assert!(idx < l, "row index out of range");
        let mut data = self.grab_empty(d);
        data.extend_from_slice(&self.nodes[x.0].value.data()[idx * d..(idx + 1) * d]);
        self.push(Tensor::from_vec(&[1, d], data), Op::RowAt(x, idx))
    }

    /// Mean over rows: `(l, d)` → `(1, d)`.
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let (l, d) = self.nodes[x.0].value.dims2();
        let mut out = self.grab(d);
        let tx = self.nodes[x.0].value.data();
        for row in tx.chunks_exact(d) {
            gemm::axpy(1.0, row, &mut out);
        }
        for v in &mut out {
            *v /= l as f32;
        }
        self.push(Tensor::from_vec(&[1, d], out), Op::MeanRows(x))
    }

    // -- activations ------------------------------------------------------

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let t = self.map(a, |x| x.max(0.0));
        self.push(t, Op::Relu(a))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let t = self.map(a, gelu_fn);
        self.push(t, Op::Gelu(a))
    }

    /// SiLU / swish.
    pub fn silu(&mut self, a: Var) -> Var {
        let t = self.map(a, |x| x * sigmoid_fn(x));
        self.push(t, Op::Silu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = self.map(a, sigmoid_fn);
        self.push(t, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t = self.map(a, f32::tanh);
        self.push(t, Op::Tanh(a))
    }

    fn map(&mut self, a: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let shape = self.nodes[a.0].value.shape().to_vec();
        let mut data = self.grab_empty(shape.iter().product());
        data.extend(self.nodes[a.0].value.data().iter().map(|&x| f(x)));
        Tensor::from_vec(&shape, data)
    }

    // -- normalization / softmax -----------------------------------------

    /// Row-wise softmax of an `(l, d)` matrix.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let (l, d) = self.nodes[a.0].value.dims2();
        let mut out = self.grab_dirty(l * d);
        let ta = self.nodes[a.0].value.data();
        for i in 0..l {
            let row = &ta[i * d..(i + 1) * d];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for j in 0..d {
                let e = (row[j] - max).exp();
                out[i * d + j] = e;
                sum += e;
            }
            for j in 0..d {
                out[i * d + j] /= sum;
            }
        }
        self.push(Tensor::from_vec(&[l, d], out), Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization with learned `(d)` gain and offset.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let (l, d) = self.nodes[x.0].value.dims2();
        let mut out = self.grab_dirty(l * d);
        let mut xhat = self.grab_dirty(l * d);
        let tx = self.nodes[x.0].value.data();
        let tg = self.nodes[gamma.0].value.data();
        let tb = self.nodes[beta.0].value.data();
        for i in 0..l {
            let row = &tx[i * d..(i + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + EPS).sqrt();
            for j in 0..d {
                let h = (row[j] - mean) * inv;
                xhat[i * d + j] = h;
                out[i * d + j] = h * tg[j] + tb[j];
            }
        }
        self.push_aux(
            Tensor::from_vec(&[l, d], out),
            Op::LayerNormRows { x, gamma, beta },
            Some(Tensor::from_vec(&[l, d], xhat)),
        )
    }

    // -- embeddings -------------------------------------------------------

    /// Gathers rows of a `(v, d)` table: output `(ids.len(), d)`.
    pub fn embedding(&mut self, table: Var, ids: &[u32]) -> Var {
        let (v, d) = self.nodes[table.0].value.dims2();
        let mut out = self.grab_empty(ids.len() * d);
        let tt = self.nodes[table.0].value.data();
        for &id in ids {
            let id = (id as usize).min(v - 1);
            out.extend_from_slice(&tt[id * d..(id + 1) * d]);
        }
        self.push(
            Tensor::from_vec(&[ids.len(), d], out),
            Op::Embedding {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    // -- loss ---------------------------------------------------------------

    /// Binary cross-entropy over a single logit (a `(1, 1)` or 1-element
    /// tensor) against a 0/1 target. Returns a scalar loss node.
    pub fn bce_with_logit(&mut self, logit: Var, target: f32) -> Var {
        assert_eq!(self.nodes[logit.0].value.len(), 1, "expected one logit");
        let z = self.nodes[logit.0].value.data()[0];
        // Numerically stable: max(z,0) - z t + ln(1 + e^{-|z|}).
        let loss = z.max(0.0) - z * target + (1.0 + (-z.abs()).exp()).ln();
        self.push(Tensor::scalar(loss), Op::BceWithLogit { logit, target })
    }

    /// Binary cross-entropy over a `(B, 1)` logit column against one 0/1
    /// target per row, reduced to the **mean** scalar loss — the one-node
    /// loss head of the batched trainer. The per-sample losses are summed
    /// in row order and divided by `B` once, so the reduction order is
    /// fixed regardless of how the batch was assembled.
    ///
    /// # Panics
    ///
    /// Panics if the logit count and target count disagree.
    pub fn bce_with_logits_batch(&mut self, logits: Var, targets: &[f32]) -> Var {
        self.bce_with_logits_batch_scaled(logits, targets, targets.len())
    }

    /// [`Tape::bce_with_logits_batch`] with an explicit mean denominator:
    /// the node's value is `Σ per-sample loss / denom` and each logit's
    /// gradient is `(σ(z) − t)/denom`. The data-parallel trainer records
    /// one of these per **shard** with `denom = B` (the full mini-batch
    /// size), so shard losses and gradients sum to exactly the whole-batch
    /// mean — same optimization semantics, shard by shard. With
    /// `denom == targets.len()` this is bit-identical to the plain batch
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics if the logit count and target count disagree, or `denom`
    /// is zero.
    pub fn bce_with_logits_batch_scaled(
        &mut self,
        logits: Var,
        targets: &[f32],
        denom: usize,
    ) -> Var {
        let n = self.nodes[logits.0].value.len();
        assert_eq!(n, targets.len(), "logit/target count mismatch");
        assert!(denom > 0, "bce denominator must be positive");
        let denom = denom as f32;
        let zs = self.nodes[logits.0].value.data();
        let mut sum = 0.0f32;
        for (&z, &t) in zs.iter().zip(targets) {
            sum += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        }
        self.push(
            Tensor::scalar(sum / denom),
            Op::BceWithLogitsBatch {
                logits,
                targets: targets.to_vec(),
                denom,
            },
        )
    }

    // -- convolution / CNN pieces ----------------------------------------

    /// Grouped 2-D convolution: `x (c, h, w)`, `w (o, c/groups, kh, kw)`,
    /// `b (o)` → `(o, h', w')`.
    pub fn conv2d(
        &mut self,
        x: Var,
        w: Var,
        b: Var,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Var {
        let xs = self.nodes[x.0].value.shape().to_vec();
        let ws = self.nodes[w.0].value.shape().to_vec();
        assert_eq!(xs.len(), 3, "conv2d input must be (c, h, w)");
        assert_eq!(ws.len(), 4, "conv2d weight must be (o, c/g, kh, kw)");
        let (c, h, wdt) = (xs[0], xs[1], xs[2]);
        let (o, cg, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert_eq!(c / groups, cg, "conv2d channel/group mismatch");
        assert_eq!(o % groups, 0, "conv2d out-channel/group mismatch");
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (wdt + 2 * pad - kw) / stride + 1;
        let mut out = self.grab_dirty(o * oh * ow);
        let tx = self.nodes[x.0].value.data();
        let tw = self.nodes[w.0].value.data();
        let tb = self.nodes[b.0].value.data();
        let o_per_g = o / groups;
        for oc in 0..o {
            let g = oc / o_per_g;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = tb[oc];
                    for ic in 0..cg {
                        let c_in = g * cg + ic;
                        for ky in 0..kh {
                            let iy = oy * stride + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = ox * stride + kx;
                                if ix < pad || ix - pad >= wdt {
                                    continue;
                                }
                                acc += tx[c_in * h * wdt + (iy - pad) * wdt + (ix - pad)]
                                    * tw[oc * cg * kh * kw + ic * kh * kw + ky * kw + kx];
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        self.push(
            Tensor::from_vec(&[o, oh, ow], out),
            Op::Conv2d {
                x,
                w,
                b,
                stride,
                pad,
                groups,
            },
        )
    }

    /// Per-channel (instance) normalization of a `(c, h, w)` tensor with
    /// learned `(c)` gain/offset.
    pub fn channel_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let xs = self.nodes[x.0].value.shape().to_vec();
        let (c, h, w) = (xs[0], xs[1], xs[2]);
        let hw = h * w;
        let mut out = self.grab_dirty(c * hw);
        let mut xhat = self.grab_dirty(c * hw);
        let tx = self.nodes[x.0].value.data();
        let tg = self.nodes[gamma.0].value.data();
        let tb = self.nodes[beta.0].value.data();
        for ch in 0..c {
            let plane = &tx[ch * hw..(ch + 1) * hw];
            let mean: f32 = plane.iter().sum::<f32>() / hw as f32;
            let var: f32 = plane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / hw as f32;
            let inv = 1.0 / (var + EPS).sqrt();
            for i in 0..hw {
                let hv = (plane[i] - mean) * inv;
                xhat[ch * hw + i] = hv;
                out[ch * hw + i] = hv * tg[ch] + tb[ch];
            }
        }
        self.push_aux(
            Tensor::from_vec(&[c, h, w], out),
            Op::ChannelNorm { x, gamma, beta },
            Some(Tensor::from_vec(&[c, h, w], xhat)),
        )
    }

    /// Global average pooling `(c, h, w)` → `(1, c)`.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let xs = self.nodes[x.0].value.shape().to_vec();
        let (c, h, w) = (xs[0], xs[1], xs[2]);
        let hw = h * w;
        let tx = self.nodes[x.0].value.data();
        let out: Vec<f32> = (0..c)
            .map(|ch| tx[ch * hw..(ch + 1) * hw].iter().sum::<f32>() / hw as f32)
            .collect();
        self.push(Tensor::from_vec(&[1, c], out), Op::GlobalAvgPool(x))
    }

    /// Same-padded 1-D convolution along a `(1, c)` vector with a `(k)`
    /// kernel (ECA's channel attention).
    pub fn conv1d_same(&mut self, x: Var, w: Var) -> Var {
        let (_, c) = self.nodes[x.0].value.dims2();
        let k = self.nodes[w.0].value.len();
        assert!(k % 2 == 1, "conv1d_same kernel must be odd");
        let half = k / 2;
        let mut out = self.grab_dirty(c);
        let tx = self.nodes[x.0].value.data();
        let tw = self.nodes[w.0].value.data();
        #[allow(clippy::needless_range_loop)] // i indexes out and the conv window
        for i in 0..c {
            let mut acc = 0.0;
            for j in 0..k {
                let idx = i as isize + j as isize - half as isize;
                if idx >= 0 && (idx as usize) < c {
                    acc += tx[idx as usize] * tw[j];
                }
            }
            out[i] = acc;
        }
        self.push(Tensor::from_vec(&[1, c], out), Op::Conv1dSame { x, w })
    }

    /// Scales each channel plane of `(c, h, w)` by the matching entry of a
    /// `(1, c)` vector.
    pub fn scale_channels(&mut self, x: Var, s: Var) -> Var {
        let xs = self.nodes[x.0].value.shape().to_vec();
        let (c, h, w) = (xs[0], xs[1], xs[2]);
        assert_eq!(self.nodes[s.0].value.len(), c, "scale width mismatch");
        let hw = h * w;
        let mut out = self.grab_dirty(c * hw);
        let tx = self.nodes[x.0].value.data();
        let ts = self.nodes[s.0].value.data();
        for ch in 0..c {
            for i in 0..hw {
                out[ch * hw + i] = tx[ch * hw + i] * ts[ch];
            }
        }
        self.push(
            Tensor::from_vec(&[c, h, w], out),
            Op::ScaleChannels { x, s },
        )
    }

    // -- backward ----------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (which must be a
    /// 1-element tensor) and accumulates parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar-like.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_impl(loss, &mut |id, g| store.accumulate_grad(id, g));
    }

    /// [`Tape::backward`] into a detached [`GradBuffer`] instead of the
    /// store — the per-shard sink of the data-parallel trainer: worker
    /// threads differentiate their shard into a private buffer and the
    /// caller folds the buffers into the store in shard order, keeping the
    /// gradient reduction order (and so every fitted bit) independent of
    /// the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar-like or `buf` came from a
    /// differently-shaped store.
    pub fn backward_into(&mut self, loss: Var, buf: &mut GradBuffer) {
        self.backward_impl(loss, &mut |id, g| buf.accumulate(id, g));
    }

    fn backward_impl(&mut self, loss: Var, sink: &mut dyn FnMut(ParamId, &Tensor)) {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::from_vec(
            self.nodes[loss.0].value.shape(),
            vec![1.0],
        ));

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            // Hand leaf gradients to the sink (store or shard buffer).
            if let Some(pid) = self.nodes[i].param {
                sink(pid, &g);
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.add_grad(&mut grads, a, g.clone());
                    self.add_grad(&mut grads, b, g);
                }
                Op::Mul(a, b) => {
                    let ga = self.ew(&g, self.nodes[b.0].value.data());
                    let gb = self.ew(&g, self.nodes[a.0].value.data());
                    self.add_grad(&mut grads, a, ga);
                    self.add_grad(&mut grads, b, gb);
                }
                Op::Scale(a, c) => {
                    let mut ga = g;
                    for v in ga.data_mut() {
                        *v *= c;
                    }
                    self.add_grad(&mut grads, a, ga);
                }
                Op::AddScalar(a, _) => self.add_grad(&mut grads, a, g),
                Op::MatMul(a, b) => {
                    let (m, k) = self.nodes[a.0].value.dims2();
                    let (_, nn) = self.nodes[b.0].value.dims2();
                    // dA = dC Bᵀ, dB = Aᵀ dC — both through the blocked
                    // kernel, with the operand transposes staged in pooled
                    // buffers that go straight back to the arena.
                    let mut bt = self.grab_dirty(k * nn);
                    gemm::transpose_into(k, nn, self.nodes[b.0].value.data(), &mut bt);
                    let mut ga = self.grab_dirty(m * k);
                    gemm::matmul_into(m, nn, k, g.data(), &bt, &mut ga);
                    self.pool.push(bt);
                    let mut at = self.grab_dirty(m * k);
                    gemm::transpose_into(m, k, self.nodes[a.0].value.data(), &mut at);
                    let mut gb = self.grab_dirty(k * nn);
                    gemm::matmul_into(k, m, nn, &at, g.data(), &mut gb);
                    self.pool.push(at);
                    self.add_grad(&mut grads, a, Tensor::from_vec(&[m, k], ga));
                    self.add_grad(&mut grads, b, Tensor::from_vec(&[k, nn], gb));
                }
                Op::Transpose(a) => {
                    let (m, nn) = self.nodes[a.0].value.dims2();
                    let gd = g.data();
                    let mut ga = vec![0.0f32; m * nn];
                    for i2 in 0..m {
                        for j in 0..nn {
                            ga[i2 * nn + j] = gd[j * m + i2];
                        }
                    }
                    self.add_grad(&mut grads, a, Tensor::from_vec(&[m, nn], ga));
                }
                Op::Relu(a) => {
                    let mask: Vec<f32> = self.nodes[a.0]
                        .value
                        .data()
                        .iter()
                        .map(|&x| if x > 0.0 { 1.0 } else { 0.0 })
                        .collect();
                    let ga = self.ew(&g, &mask);
                    self.add_grad(&mut grads, a, ga);
                }
                Op::Gelu(a) => {
                    let der: Vec<f32> = self.nodes[a.0]
                        .value
                        .data()
                        .iter()
                        .map(|&x| gelu_grad(x))
                        .collect();
                    let ga = self.ew(&g, &der);
                    self.add_grad(&mut grads, a, ga);
                }
                Op::Silu(a) => {
                    let der: Vec<f32> = self.nodes[a.0]
                        .value
                        .data()
                        .iter()
                        .map(|&x| {
                            let s = sigmoid_fn(x);
                            s + x * s * (1.0 - s)
                        })
                        .collect();
                    let ga = self.ew(&g, &der);
                    self.add_grad(&mut grads, a, ga);
                }
                Op::Sigmoid(a) => {
                    let der: Vec<f32> = self.nodes[i]
                        .value
                        .data()
                        .iter()
                        .map(|&y| y * (1.0 - y))
                        .collect();
                    let ga = self.ew(&g, &der);
                    self.add_grad(&mut grads, a, ga);
                }
                Op::Tanh(a) => {
                    let der: Vec<f32> = self.nodes[i]
                        .value
                        .data()
                        .iter()
                        .map(|&y| 1.0 - y * y)
                        .collect();
                    let ga = self.ew(&g, &der);
                    self.add_grad(&mut grads, a, ga);
                }
                Op::SoftmaxRows(a) => {
                    let (l, d) = self.nodes[i].value.dims2();
                    let y = self.nodes[i].value.data();
                    let gd = g.data();
                    let mut ga = vec![0.0f32; l * d];
                    for r in 0..l {
                        let yrow = &y[r * d..(r + 1) * d];
                        let grow = &gd[r * d..(r + 1) * d];
                        let dot: f32 = yrow.iter().zip(grow).map(|(a2, b2)| a2 * b2).sum();
                        for j in 0..d {
                            ga[r * d + j] = yrow[j] * (grow[j] - dot);
                        }
                    }
                    self.add_grad(&mut grads, a, Tensor::from_vec(&[l, d], ga));
                }
                Op::LayerNormRows { x, gamma, beta } => {
                    const EPS: f32 = 1e-5;
                    let (l, d) = self.nodes[x.0].value.dims2();
                    let xhat = self.nodes[i]
                        .aux
                        .as_ref()
                        .expect("layernorm aux")
                        .data()
                        .to_vec();
                    let tg = self.nodes[gamma.0].value.data().to_vec();
                    let tx = self.nodes[x.0].value.data().to_vec();
                    let gd = g.data();
                    let mut gx = vec![0.0f32; l * d];
                    let mut gg = vec![0.0f32; d];
                    let mut gb = vec![0.0f32; d];
                    for r in 0..l {
                        let row = &tx[r * d..(r + 1) * d];
                        let mean: f32 = row.iter().sum::<f32>() / d as f32;
                        let var: f32 =
                            row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                        let inv = 1.0 / (var + EPS).sqrt();
                        let mut sum_gh = 0.0f32;
                        let mut sum_ghx = 0.0f32;
                        for j in 0..d {
                            let gh = gd[r * d + j] * tg[j];
                            sum_gh += gh;
                            sum_ghx += gh * xhat[r * d + j];
                            gg[j] += gd[r * d + j] * xhat[r * d + j];
                            gb[j] += gd[r * d + j];
                        }
                        for j in 0..d {
                            let gh = gd[r * d + j] * tg[j];
                            gx[r * d + j] = inv / d as f32
                                * (d as f32 * gh - sum_gh - xhat[r * d + j] * sum_ghx);
                        }
                    }
                    self.add_grad(&mut grads, x, Tensor::from_vec(&[l, d], gx));
                    self.add_grad(&mut grads, gamma, Tensor::from_vec(&[d], gg));
                    self.add_grad(&mut grads, beta, Tensor::from_vec(&[d], gb));
                }
                Op::Embedding { table, ids } => {
                    let (v, d) = self.nodes[table.0].value.dims2();
                    let gd = g.data();
                    let mut gt = vec![0.0f32; v * d];
                    for (k, &id) in ids.iter().enumerate() {
                        let id = (id as usize).min(v - 1);
                        for j in 0..d {
                            gt[id * d + j] += gd[k * d + j];
                        }
                    }
                    self.add_grad(&mut grads, table, Tensor::from_vec(&[v, d], gt));
                }
                Op::MeanRows(a) => {
                    let (l, d) = self.nodes[a.0].value.dims2();
                    let gd = g.data();
                    let mut ga = vec![0.0f32; l * d];
                    for r in 0..l {
                        for j in 0..d {
                            ga[r * d + j] = gd[j] / l as f32;
                        }
                    }
                    self.add_grad(&mut grads, a, Tensor::from_vec(&[l, d], ga));
                }
                Op::AddBias { x, bias } => {
                    let (l, d) = self.nodes[x.0].value.dims2();
                    let gd = g.data();
                    let mut gb = vec![0.0f32; d];
                    for r in 0..l {
                        for j in 0..d {
                            gb[j] += gd[r * d + j];
                        }
                    }
                    self.add_grad(&mut grads, x, g.clone());
                    self.add_grad(&mut grads, bias, Tensor::from_vec(&[d], gb));
                }
                Op::Reshape(a) => {
                    let ga = Tensor::from_vec(self.nodes[a.0].value.shape(), g.data().to_vec());
                    self.add_grad(&mut grads, a, ga);
                }
                Op::ConcatRows(a, b) => {
                    let (la, d) = self.nodes[a.0].value.dims2();
                    let (lb, _) = self.nodes[b.0].value.dims2();
                    let gd = g.data();
                    let ga = Tensor::from_vec(&[la, d], gd[..la * d].to_vec());
                    let gb = Tensor::from_vec(&[lb, d], gd[la * d..].to_vec());
                    self.add_grad(&mut grads, a, ga);
                    self.add_grad(&mut grads, b, gb);
                }
                Op::ConcatCols(a, b) => {
                    let (l, da) = self.nodes[a.0].value.dims2();
                    let (_, db) = self.nodes[b.0].value.dims2();
                    let gd = g.data();
                    let mut ga = vec![0.0f32; l * da];
                    let mut gb = vec![0.0f32; l * db];
                    for r in 0..l {
                        ga[r * da..(r + 1) * da]
                            .copy_from_slice(&gd[r * (da + db)..r * (da + db) + da]);
                        gb[r * db..(r + 1) * db]
                            .copy_from_slice(&gd[r * (da + db) + da..(r + 1) * (da + db)]);
                    }
                    self.add_grad(&mut grads, a, Tensor::from_vec(&[l, da], ga));
                    self.add_grad(&mut grads, b, Tensor::from_vec(&[l, db], gb));
                }
                Op::RowAt(a, idx) => {
                    let (l, d) = self.nodes[a.0].value.dims2();
                    let mut ga = vec![0.0f32; l * d];
                    ga[idx * d..(idx + 1) * d].copy_from_slice(g.data());
                    self.add_grad(&mut grads, a, Tensor::from_vec(&[l, d], ga));
                }
                Op::StackRows(parts) => {
                    let (_, d) = self.nodes[i].value.dims2();
                    let gd = g.data();
                    let mut off = 0;
                    for p in parts {
                        let (lp, _) = self.nodes[p.0].value.dims2();
                        let gp = Tensor::from_vec(&[lp, d], gd[off..off + lp * d].to_vec());
                        off += lp * d;
                        self.add_grad(&mut grads, p, gp);
                    }
                }
                Op::BceWithLogit { logit, target } => {
                    let z = self.nodes[logit.0].value.data()[0];
                    let dz = (sigmoid_fn(z) - target) * g.data()[0];
                    let ga = Tensor::from_vec(self.nodes[logit.0].value.shape(), vec![dz]);
                    self.add_grad(&mut grads, logit, ga);
                }
                Op::BceWithLogitsBatch {
                    logits,
                    targets,
                    denom,
                } => {
                    let go = g.data()[0];
                    let zs = self.nodes[logits.0].value.data();
                    let data: Vec<f32> = zs
                        .iter()
                        .zip(&targets)
                        .map(|(&z, &t)| (sigmoid_fn(z) - t) / denom * go)
                        .collect();
                    let shape = self.nodes[logits.0].value.shape().to_vec();
                    self.add_grad(&mut grads, logits, Tensor::from_vec(&shape, data));
                }
                Op::Conv2d {
                    x,
                    w,
                    b,
                    stride,
                    pad,
                    groups,
                } => {
                    let xs = self.nodes[x.0].value.shape().to_vec();
                    let ws = self.nodes[w.0].value.shape().to_vec();
                    let (c, h, wdt) = (xs[0], xs[1], xs[2]);
                    let (o, cg, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
                    let os = self.nodes[i].value.shape().to_vec();
                    let (oh, ow) = (os[1], os[2]);
                    let gd = g.data();
                    let tx = self.nodes[x.0].value.data();
                    let tw = self.nodes[w.0].value.data();
                    let mut gx = vec![0.0f32; c * h * wdt];
                    let mut gw = vec![0.0f32; o * cg * kh * kw];
                    let mut gb = vec![0.0f32; o];
                    let o_per_g = o / groups;
                    for oc in 0..o {
                        let gr = oc / o_per_g;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let go = gd[oc * oh * ow + oy * ow + ox];
                                if go == 0.0 {
                                    continue;
                                }
                                gb[oc] += go;
                                for ic in 0..cg {
                                    let c_in = gr * cg + ic;
                                    for ky in 0..kh {
                                        let iy = oy * stride + ky;
                                        if iy < pad || iy - pad >= h {
                                            continue;
                                        }
                                        for kx in 0..kw {
                                            let ix = ox * stride + kx;
                                            if ix < pad || ix - pad >= wdt {
                                                continue;
                                            }
                                            let xi = c_in * h * wdt + (iy - pad) * wdt + (ix - pad);
                                            let wi =
                                                oc * cg * kh * kw + ic * kh * kw + ky * kw + kx;
                                            gx[xi] += go * tw[wi];
                                            gw[wi] += go * tx[xi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                    self.add_grad(&mut grads, x, Tensor::from_vec(&[c, h, wdt], gx));
                    self.add_grad(&mut grads, w, Tensor::from_vec(&[o, cg, kh, kw], gw));
                    self.add_grad(&mut grads, b, Tensor::from_vec(&[o], gb));
                }
                Op::ChannelNorm { x, gamma, beta } => {
                    const EPS: f32 = 1e-5;
                    let xs = self.nodes[x.0].value.shape().to_vec();
                    let (c, h, w) = (xs[0], xs[1], xs[2]);
                    let hw = h * w;
                    let xhat = self.nodes[i]
                        .aux
                        .as_ref()
                        .expect("channelnorm aux")
                        .data()
                        .to_vec();
                    let tg = self.nodes[gamma.0].value.data().to_vec();
                    let tx = self.nodes[x.0].value.data().to_vec();
                    let gd = g.data();
                    let mut gx = vec![0.0f32; c * hw];
                    let mut gg = vec![0.0f32; c];
                    let mut gb = vec![0.0f32; c];
                    for ch in 0..c {
                        let plane = &tx[ch * hw..(ch + 1) * hw];
                        let mean: f32 = plane.iter().sum::<f32>() / hw as f32;
                        let var: f32 =
                            plane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / hw as f32;
                        let inv = 1.0 / (var + EPS).sqrt();
                        let mut sum_gh = 0.0f32;
                        let mut sum_ghx = 0.0f32;
                        for k in 0..hw {
                            let gh = gd[ch * hw + k] * tg[ch];
                            sum_gh += gh;
                            sum_ghx += gh * xhat[ch * hw + k];
                            gg[ch] += gd[ch * hw + k] * xhat[ch * hw + k];
                            gb[ch] += gd[ch * hw + k];
                        }
                        for k in 0..hw {
                            let gh = gd[ch * hw + k] * tg[ch];
                            gx[ch * hw + k] = inv / hw as f32
                                * (hw as f32 * gh - sum_gh - xhat[ch * hw + k] * sum_ghx);
                        }
                    }
                    self.add_grad(&mut grads, x, Tensor::from_vec(&[c, h, w], gx));
                    self.add_grad(&mut grads, gamma, Tensor::from_vec(&[c], gg));
                    self.add_grad(&mut grads, beta, Tensor::from_vec(&[c], gb));
                }
                Op::GlobalAvgPool(x) => {
                    let xs = self.nodes[x.0].value.shape().to_vec();
                    let (c, h, w) = (xs[0], xs[1], xs[2]);
                    let hw = h * w;
                    let gd = g.data();
                    let mut gx = vec![0.0f32; c * hw];
                    for ch in 0..c {
                        for k in 0..hw {
                            gx[ch * hw + k] = gd[ch] / hw as f32;
                        }
                    }
                    self.add_grad(&mut grads, x, Tensor::from_vec(&[c, h, w], gx));
                }
                Op::Conv1dSame { x, w } => {
                    let (_, c) = self.nodes[x.0].value.dims2();
                    let k = self.nodes[w.0].value.len();
                    let half = k / 2;
                    let gd = g.data();
                    let tx = self.nodes[x.0].value.data();
                    let tw = self.nodes[w.0].value.data();
                    let mut gx = vec![0.0f32; c];
                    let mut gw = vec![0.0f32; k];
                    #[allow(clippy::needless_range_loop)] // i2 indexes gd, gx and tx
                    for i2 in 0..c {
                        for j in 0..k {
                            let idx = i2 as isize + j as isize - half as isize;
                            if idx >= 0 && (idx as usize) < c {
                                gx[idx as usize] += gd[i2] * tw[j];
                                gw[j] += gd[i2] * tx[idx as usize];
                            }
                        }
                    }
                    self.add_grad(&mut grads, x, Tensor::from_vec(&[1, c], gx));
                    self.add_grad(&mut grads, w, Tensor::from_vec(&[k], gw));
                }
                Op::ScaleChannels { x, s } => {
                    let xs = self.nodes[x.0].value.shape().to_vec();
                    let (c, h, w) = (xs[0], xs[1], xs[2]);
                    let hw = h * w;
                    let gd = g.data();
                    let tx = self.nodes[x.0].value.data();
                    let ts = self.nodes[s.0].value.data();
                    let mut gx = vec![0.0f32; c * hw];
                    let mut gs = vec![0.0f32; c];
                    for ch in 0..c {
                        for k in 0..hw {
                            gx[ch * hw + k] = gd[ch * hw + k] * ts[ch];
                            gs[ch] += gd[ch * hw + k] * tx[ch * hw + k];
                        }
                    }
                    self.add_grad(&mut grads, x, Tensor::from_vec(&[c, h, w], gx));
                    self.add_grad(&mut grads, s, Tensor::from_vec(&[1, c], gs));
                }
            }
        }
    }

    fn ew(&self, g: &Tensor, other: &[f32]) -> Tensor {
        Tensor::from_vec(
            g.shape(),
            g.data().iter().zip(other).map(|(a, b)| a * b).collect(),
        )
    }

    fn add_grad(&self, grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        match &mut grads[v.0] {
            Some(acc) => {
                for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
                    *a += b;
                }
            }
            slot @ None => *slot = Some(g),
        }
    }
}

fn sigmoid_fn(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn gelu_fn(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite-difference check of d(loss)/d(param) for a scalar loss
    /// built by `f` from a parameter of the given shape.
    fn grad_check(shape: &[usize], f: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut store = ParamStore::new();
        let p = store.param(Tensor::random(shape, 0.8, &mut rng));

        // Autodiff gradient.
        let mut tape = Tape::new();
        let pv = tape.param(&store, p);
        let loss = f(&mut tape, pv);
        store.zero_grads();
        tape.backward(loss, &mut store);
        let auto_grad = store.grad(p).data().to_vec();

        // Numerical gradient.
        let eps = 1e-2f32;
        let n = store.value(p).len();
        for i in (0..n).step_by((n / 6).max(1)) {
            let eval = |store: &ParamStore| {
                let mut t = Tape::new();
                let pv = t.param(store, p);
                let l = f(&mut t, pv);
                t.value(l).item()
            };
            let orig = store.value(p).data()[i];
            // +eps
            {
                let mut s2 = ParamStore::new();
                let mut t = store.value(p).clone();
                t.data_mut()[i] = orig + eps;
                let p2 = s2.param(t);
                assert_eq!(p2, p);
                let plus = eval(&s2);
                let mut t = store.value(p).clone();
                t.data_mut()[i] = orig - eps;
                let mut s3 = ParamStore::new();
                s3.param(t);
                let minus = eval(&s3);
                let numeric = (plus - minus) / (2.0 * eps);
                let diff = (numeric - auto_grad[i]).abs();
                let denom = numeric.abs().max(auto_grad[i].abs()).max(1.0);
                assert!(
                    diff / denom < tol,
                    "grad mismatch at {i}: numeric {numeric} vs auto {}",
                    auto_grad[i]
                );
            }
        }
    }

    #[test]
    fn grad_matmul_chain() {
        grad_check(
            &[3, 4],
            |t, p| {
                let x = t.input(Tensor::from_vec(&[1, 3], vec![0.3, -0.5, 0.9]));
                let h = t.matmul(x, p); // (1,4)
                let w2 = t.input(Tensor::from_vec(&[4, 1], vec![0.2, -0.4, 0.6, 0.1]));
                let z = t.matmul(h, w2);
                t.bce_with_logit(z, 1.0)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_softmax_attention_like() {
        grad_check(
            &[4, 4],
            |t, p| {
                let x = t.input(Tensor::from_vec(
                    &[2, 4],
                    vec![0.1, 0.5, -0.2, 0.8, -0.3, 0.2, 0.9, -0.1],
                ));
                let q = t.matmul(x, p);
                let kt = t.transpose(x);
                let s = t.matmul(q, kt);
                let s = t.scale(s, 0.5);
                let a = t.softmax_rows(s);
                let o = t.matmul(a, x);
                let m = t.mean_rows(o);
                let w = t.input(Tensor::from_vec(&[4, 1], vec![1.0, -1.0, 0.5, 0.2]));
                let z = t.matmul(m, w);
                t.bce_with_logit(z, 0.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_layernorm() {
        grad_check(
            &[6],
            |t, gamma_init| {
                let x = t.input(Tensor::from_vec(
                    &[2, 6],
                    vec![
                        0.4, -0.8, 1.2, 0.1, -0.6, 0.9, 0.0, 0.3, -0.2, 0.7, 1.1, -0.5,
                    ],
                ));
                let beta = t.input(Tensor::zeros(&[6]));
                let y = t.layer_norm(x, gamma_init, beta);
                let m = t.mean_rows(y);
                let w = t.input(Tensor::from_vec(
                    &[6, 1],
                    vec![0.5, 0.1, -0.3, 0.8, -0.2, 0.4],
                ));
                let z = t.matmul(m, w);
                t.bce_with_logit(z, 1.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_layernorm_input() {
        grad_check(
            &[2, 6],
            |t, x| {
                let gamma = t.input(Tensor::from_vec(&[6], vec![1.0, 0.9, 1.1, 0.8, 1.2, 1.0]));
                let beta = t.input(Tensor::zeros(&[6]));
                let y = t.layer_norm(x, gamma, beta);
                let m = t.mean_rows(y);
                let w = t.input(Tensor::from_vec(
                    &[6, 1],
                    vec![0.5, 0.1, -0.3, 0.8, -0.2, 0.4],
                ));
                let z = t.matmul(m, w);
                t.bce_with_logit(z, 1.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_embedding_gru_like() {
        grad_check(
            &[5, 3],
            |t, table| {
                let e = t.embedding(table, &[0, 2, 4, 2]);
                let m = t.mean_rows(e);
                let s = t.sigmoid(m);
                let h = t.tanh(m);
                let prod = t.mul(s, h);
                let w = t.input(Tensor::from_vec(&[3, 1], vec![0.7, -0.4, 0.9]));
                let z = t.matmul(prod, w);
                t.bce_with_logit(z, 0.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_conv2d() {
        grad_check(
            &[2, 1, 3, 3],
            |t, w| {
                let x = t.input(Tensor::random(
                    &[1, 5, 5],
                    0.9,
                    &mut StdRng::seed_from_u64(3),
                ));
                let b = t.input(Tensor::zeros(&[2]));
                let y = t.conv2d(x, w, b, 1, 1, 1);
                let p = t.global_avg_pool(y);
                let w2 = t.input(Tensor::from_vec(&[2, 1], vec![0.6, -0.8]));
                let z = t.matmul(p, w2);
                t.bce_with_logit(z, 1.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_depthwise_conv_and_eca() {
        grad_check(
            &[3],
            |t, k| {
                let x = t.input(Tensor::random(
                    &[4, 3, 3],
                    0.7,
                    &mut StdRng::seed_from_u64(5),
                ));
                let pooled = t.global_avg_pool(x); // (1,4)
                let attn = t.conv1d_same(pooled, k);
                let attn = t.sigmoid(attn);
                let scaled = t.scale_channels(x, attn);
                let p = t.global_avg_pool(scaled);
                let w = t.input(Tensor::from_vec(&[4, 1], vec![0.4, -0.6, 0.2, 0.8]));
                let z = t.matmul(p, w);
                t.bce_with_logit(z, 0.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_channel_norm() {
        grad_check(
            &[3, 4, 4],
            |t, x| {
                let gamma = t.input(Tensor::from_vec(&[3], vec![1.0, 0.8, 1.2]));
                let beta = t.input(Tensor::zeros(&[3]));
                let y = t.channel_norm(x, gamma, beta);
                let p = t.global_avg_pool(y);
                let w = t.input(Tensor::from_vec(&[3, 1], vec![0.5, -0.2, 0.9]));
                let z = t.matmul(p, w);
                t.bce_with_logit(z, 1.0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_concat_and_rowat() {
        grad_check(
            &[1, 4],
            |t, cls| {
                let x = t.input(Tensor::random(&[3, 4], 0.5, &mut StdRng::seed_from_u64(8)));
                let seq = t.concat_rows(cls, x); // (4,4)
                let first = t.row_at(seq, 0);
                let w = t.input(Tensor::from_vec(&[4, 1], vec![0.3, 0.9, -0.7, 0.5]));
                let z = t.matmul(first, w);
                t.bce_with_logit(z, 1.0)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in 0..4 {
            grad_check(
                &[1, 5],
                move |t, x| {
                    let h = match act {
                        0 => t.relu(x),
                        1 => t.gelu(x),
                        2 => t.silu(x),
                        _ => t.tanh(x),
                    };
                    let w = t.input(Tensor::from_vec(&[5, 1], vec![0.2, -0.5, 0.8, 0.3, -0.9]));
                    let z = t.matmul(h, w);
                    t.bce_with_logit(z, 0.0)
                },
                4e-2,
            );
        }
    }

    #[test]
    fn grad_stack_rows_batched_bce() {
        // The batched trainer's loss head: per-sample logits stacked into a
        // (B, 1) column, mean BCE over the batch. The parameter feeds every
        // sample, so its gradient sums the per-sample contributions.
        grad_check(
            &[3, 1],
            |t, p| {
                let xs = [
                    vec![0.3f32, -0.5, 0.9],
                    vec![-0.2, 0.8, 0.1],
                    vec![0.7, 0.4, -0.6],
                    vec![-0.9, 0.2, 0.5],
                ];
                let logits: Vec<Var> = xs
                    .iter()
                    .map(|x| {
                        let xv = t.input(Tensor::from_vec(&[1, 3], x.clone()));
                        t.matmul(xv, p)
                    })
                    .collect();
                let z = t.stack_rows(&logits);
                t.bce_with_logits_batch(z, &[1.0, 0.0, 1.0, 0.0])
            },
            2e-2,
        );
    }

    #[test]
    fn grad_batched_bce_over_true_batch() {
        // The fully-batched dense path: one (B, d) matmul, no stacking.
        grad_check(
            &[4, 1],
            |t, p| {
                let x = t.input(Tensor::from_vec(
                    &[3, 4],
                    vec![
                        0.1, 0.5, -0.2, 0.8, -0.3, 0.2, 0.9, -0.1, 0.4, -0.7, 0.3, 0.6,
                    ],
                ));
                let z = t.matmul(x, p);
                t.bce_with_logits_batch(z, &[1.0, 0.0, 1.0])
            },
            2e-2,
        );
    }

    #[test]
    fn batched_bce_is_the_mean_of_per_sample_losses() {
        let zs = [0.7f32, -1.2, 0.1];
        let ts = [1.0f32, 0.0, 1.0];
        let mut tape = Tape::new();
        let z = tape.input(Tensor::from_vec(&[3, 1], zs.to_vec()));
        let batched = tape.bce_with_logits_batch(z, &ts);
        let mut want = 0.0f32;
        for (&zv, &tv) in zs.iter().zip(&ts) {
            let mut t2 = Tape::new();
            let zi = t2.input(Tensor::from_vec(&[1, 1], vec![zv]));
            let l = t2.bce_with_logit(zi, tv);
            want += t2.value(l).item();
        }
        assert!((tape.value(batched).item() - want / 3.0).abs() < 1e-6);
    }

    #[test]
    fn reset_recycles_buffers_and_replays_bit_exactly() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let w = store.param(Tensor::random(&[6, 4], 0.5, &mut rng));
        let x_data = Tensor::random(&[5, 6], 0.5, &mut rng);
        let run = |tape: &mut Tape| {
            let wv = tape.param(&store, w);
            let x = tape.input(x_data.clone());
            let h = tape.matmul(x, wv);
            let h = tape.relu(h);
            let m = tape.mean_rows(h);
            tape.value(m).data().to_vec()
        };
        let mut tape = Tape::new();
        let first = run(&mut tape);
        let nodes_first = tape.nodes.len();
        for _ in 0..3 {
            tape.reset();
            assert!(tape.nodes.is_empty());
            assert!(!tape.pool.is_empty(), "reset must harvest value buffers");
            let again = run(&mut tape);
            assert_eq!(
                again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                first.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(tape.nodes.len(), nodes_first);
        }
    }

    #[test]
    #[should_panic(expected = "stack_rows width mismatch")]
    fn stack_rows_rejects_ragged_widths() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::zeros(&[1, 2]));
        let b = tape.input(Tensor::zeros(&[1, 3]));
        tape.stack_rows(&[a, b]);
    }

    #[test]
    fn bce_matches_closed_form() {
        let mut tape = Tape::new();
        let z = tape.input(Tensor::from_vec(&[1, 1], vec![0.7]));
        let l = tape.bce_with_logit(z, 1.0);
        let want = -(sigmoid_fn(0.7f32)).ln();
        assert!((tape.value(l).item() - want).abs() < 1e-6);
    }

    #[test]
    fn backward_into_buffer_matches_store_bitwise() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut store = ParamStore::new();
        let w = store.param(Tensor::random(&[4, 3], 0.6, &mut rng));
        let b = store.param(Tensor::zeros(&[3]));
        let x_data = Tensor::random(&[5, 4], 0.6, &mut rng);
        let record = |t: &mut Tape, store: &ParamStore| {
            let wv = t.param(store, w);
            let bv = t.param(store, b);
            let x = t.input(x_data.clone());
            let h = t.matmul(x, wv);
            let h = t.add_bias(h, bv);
            let h = t.relu(h);
            let m = t.mean_rows(h);
            let w2 = t.input(Tensor::from_vec(&[3, 1], vec![0.4, -0.7, 0.2]));
            let z = t.matmul(m, w2);
            t.bce_with_logit(z, 1.0)
        };

        let mut tape = Tape::new();
        let loss = record(&mut tape, &store);
        store.zero_grads();
        tape.backward(loss, &mut store);

        let mut buf = store.grad_buffer();
        let mut tape2 = Tape::new();
        let loss2 = record(&mut tape2, &store);
        tape2.backward_into(loss2, &mut buf);

        let mut via_buffer = {
            let mut s = ParamStore::new();
            s.param(store.value(w).clone());
            s.param(store.value(b).clone());
            s
        };
        via_buffer.add_grad_buffer(&buf);
        for id in [w, b] {
            let direct: Vec<u32> = store.grad(id).data().iter().map(|v| v.to_bits()).collect();
            let buffered: Vec<u32> = via_buffer
                .grad(id)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(direct, buffered);
        }
    }

    #[test]
    fn scaled_batch_bce_shards_sum_to_the_whole_batch() {
        // Per-shard losses with denom = B must sum to the whole-batch mean
        // loss, and per-logit grads must be (σ(z) − t)/B exactly — the
        // invariant the data-parallel trainer is built on.
        let zs = [0.7f32, -1.2, 0.1, 2.3, -0.4];
        let ts = [1.0f32, 0.0, 1.0, 0.0, 1.0];
        let mut whole = Tape::new();
        let z = whole.input(Tensor::from_vec(&[5, 1], zs.to_vec()));
        let l = whole.bce_with_logits_batch(z, &ts);
        let want = whole.value(l).item();

        let mut got = 0.0f32;
        for (zc, tc) in zs.chunks(2).zip(ts.chunks(2)) {
            let mut t = Tape::new();
            let zv = t.input(Tensor::from_vec(&[zc.len(), 1], zc.to_vec()));
            let l = t.bce_with_logits_batch_scaled(zv, tc, zs.len());
            got += t.value(l).item();
        }
        assert!((got - want).abs() < 1e-6, "{got} vs {want}");

        // And with denom == n the scaled node is the plain batch loss.
        let mut t = Tape::new();
        let zv = t.input(Tensor::from_vec(&[5, 1], zs.to_vec()));
        let l2 = t.bce_with_logits_batch_scaled(zv, &ts, ts.len());
        assert_eq!(t.value(l2).item().to_bits(), want.to_bits());
    }

    #[test]
    fn grad_scaled_batched_bce() {
        grad_check(
            &[4, 1],
            |t, p| {
                let x = t.input(Tensor::from_vec(
                    &[2, 4],
                    vec![0.1, 0.5, -0.2, 0.8, -0.3, 0.2, 0.9, -0.1],
                ));
                let z = t.matmul(x, p);
                // A shard of 2 inside a notional batch of 8, times 4 so
                // the finite-difference loss is the full-batch mean.
                let l = t.bce_with_logits_batch_scaled(z, &[1.0, 0.0], 8);
                t.scale(l, 4.0)
            },
            2e-2,
        );
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut store = ParamStore::new();
        let p = store.param(Tensor::scalar(0.5).reshaped(&[1, 1]));
        for _ in 0..2 {
            let mut tape = Tape::new();
            let pv = tape.param(&store, p);
            let x = tape.input(Tensor::from_vec(&[1, 1], vec![1.0]));
            let z = tape.matmul(x, pv);
            let l = tape.bce_with_logit(z, 1.0);
            tape.backward(l, &mut store);
        }
        let g1 = store.grad(p).data()[0];
        assert!((g1 - 2.0 * (sigmoid_fn(0.5) - 1.0)).abs() < 1e-5);
    }
}
