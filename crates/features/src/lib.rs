//! Feature encoders: every representation the paper feeds its sixteen
//! models.
//!
//! | Encoder | Models | Paper description |
//! |---------|--------|-------------------|
//! | [`histogram::HistogramEncoder`] | the seven HSCs | opcode-occurrence vector over the training vocabulary, *raw counts, no normalization* |
//! | [`image::R2d2Encoder`] | ViT+R2D2, ECA+EfficientNet | bytecode bytes read as RGB pixel channels, zero-padded square image |
//! | [`freq_image::FreqImageEncoder`] | ViT+Freq | per-instruction (mnemonic, operand, gas) frequencies from the training set mapped to channel intensities |
//! | [`bigram::BigramEncoder`] | SCSGuard | 6-hex-character "bigrams" numerically encoded over a training vocabulary, padded to uniform length |
//! | [`tokens::OpcodeTokenizer`] | GPT-2, T5 | opcode token sequences, truncated (α) or sliding-window chunked (β) |
//! | [`escort::EscortEmbedder`] | ESCORT | hashed byte-trigram embedding of the raw bytecode |
//!
//! All stateful encoders follow a *fit on the training split, then encode*
//! protocol so that no test-set information leaks into the representation
//! (the paper constructs its lookup tables "exactly once on the entire
//! contract training set").

#![warn(missing_docs)]

pub mod bigram;
pub mod escort;
pub mod freq_image;
pub mod histogram;
pub mod image;
pub mod tokens;

pub use bigram::BigramEncoder;
pub use escort::EscortEmbedder;
pub use freq_image::FreqImageEncoder;
pub use histogram::HistogramEncoder;
pub use image::R2d2Encoder;
pub use tokens::{OpcodeTokenizer, SequenceVariant};
