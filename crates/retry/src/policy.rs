//! Jittered exponential backoff with a deadline, behind an injectable
//! clock so every retry loop in the workspace runs deterministically (and
//! instantly) under test.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The injectable time source every retry loop sleeps and measures
/// against. Production code uses [`SystemClock`]; tests use [`FakeClock`]
/// so backoff schedules run in microseconds of wall time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
    /// Blocks (or pretends to block) for `duration`.
    fn sleep(&self, duration: Duration);
}

/// The real clock: `Instant::now` + `thread::sleep`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A deterministic clock for tests: time advances only when something
/// sleeps (or the test calls [`FakeClock::advance`]), and every sleep is
/// recorded so a test can assert the exact backoff schedule.
#[derive(Debug, Clone)]
pub struct FakeClock {
    base: Instant,
    state: Arc<Mutex<FakeClockState>>,
}

#[derive(Debug, Default)]
struct FakeClockState {
    offset: Duration,
    sleeps: Vec<Duration>,
}

impl FakeClock {
    /// A clock starting at an arbitrary base instant with no sleeps yet.
    pub fn new() -> Self {
        FakeClock {
            base: Instant::now(),
            state: Arc::new(Mutex::new(FakeClockState::default())),
        }
    }

    /// Every sleep requested so far, in order.
    pub fn sleeps(&self) -> Vec<Duration> {
        self.state.lock().unwrap().sleeps.clone()
    }

    /// Total time slept (= how far the fake clock has advanced through
    /// sleeps).
    pub fn total_slept(&self) -> Duration {
        self.state.lock().unwrap().sleeps.iter().sum()
    }

    /// Advances the clock without recording a sleep.
    pub fn advance(&self, by: Duration) {
        self.state.lock().unwrap().offset += by;
    }
}

impl Default for FakeClock {
    fn default() -> Self {
        FakeClock::new()
    }
}

impl Clock for FakeClock {
    fn now(&self) -> Instant {
        self.base + self.state.lock().unwrap().offset
    }

    fn sleep(&self, duration: Duration) {
        let mut st = self.state.lock().unwrap();
        st.offset += duration;
        st.sleeps.push(duration);
    }
}

/// SplitMix64 — the tiny deterministic generator behind backoff jitter.
/// Not cryptographic; it only needs to decorrelate retry storms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A jittered exponential backoff policy: attempt `k` waits
/// `initial * multiplier^k`, capped at `max_delay`, then spread by
/// `± jitter` (a fraction of the delay) using a seed-deterministic draw.
/// Optional budgets — a max attempt count and a wall-clock deadline —
/// bound how long [`retry`] keeps going.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Per-attempt growth factor (≥ 1).
    pub multiplier: f64,
    /// Hard cap on any single delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Give up after this many failed attempts (`None` = unbounded).
    pub max_attempts: Option<u32>,
    /// Give up once this much time has elapsed since the first attempt
    /// (`None` = unbounded).
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// A policy growing from `initial` to `max_delay` by doubling, with
    /// 20 % jitter and no attempt/deadline budget.
    pub fn new(initial: Duration, max_delay: Duration) -> Self {
        RetryPolicy {
            initial,
            multiplier: 2.0,
            max_delay,
            jitter: 0.2,
            max_attempts: None,
            deadline: None,
        }
    }

    /// Sets the jitter fraction (clamped into `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Sets the attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = Some(attempts);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The delay before retry number `attempt` (0-based), jittered
    /// deterministically from `seed`. Identical `(policy, seed, attempt)`
    /// triples always produce identical delays.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.initial.as_secs_f64() * self.multiplier.powi(attempt.min(63) as i32);
        let capped = base.min(self.max_delay.as_secs_f64());
        let unit = splitmix64(seed ^ (u64::from(attempt) << 17)) as f64 / u64::MAX as f64;
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        Duration::from_secs_f64((capped * factor).min(self.max_delay.as_secs_f64()))
    }
}

/// A stateful backoff schedule over one [`RetryPolicy`]: each
/// [`Backoff::next_delay`] advances the attempt counter; [`Backoff::reset`]
/// re-arms after progress (the "the writer caught up" case in a tail
/// loop).
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule at attempt 0.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Backoff {
            policy,
            seed,
            attempt: 0,
        }
    }

    /// The next delay in the schedule (and advances it).
    pub fn next_delay(&mut self) -> Duration {
        let d = self.policy.delay(self.attempt, self.seed);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Failed attempts taken so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Re-arms the schedule after progress.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The policy this schedule follows.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

/// What one attempt of a retried operation produced, when it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transient<E> {
    /// Worth retrying (the "wait for the writer" class of failure).
    Retry(E),
    /// Not worth retrying (corruption, logic errors): [`retry`] stops
    /// immediately and surfaces [`RetryError::Fatal`].
    Fatal(E),
}

/// Why a retried operation ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError<E> {
    /// An attempt failed with a non-retryable error.
    Fatal(E),
    /// Every allowed attempt failed (attempt budget or deadline hit).
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Time spent across attempts and sleeps.
        elapsed: Duration,
        /// The last transient error observed.
        last: E,
    },
}

impl<E: fmt::Display> fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Fatal(e) => write!(f, "fatal: {e}"),
            RetryError::Exhausted {
                attempts,
                elapsed,
                last,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts over {elapsed:?}: {last}"
            ),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for RetryError<E> {}

/// Drives `op` under `policy`: run, and on a [`Transient::Retry`] failure
/// sleep the next jittered delay and try again until the attempt budget
/// or deadline runs out. `op` receives the 0-based attempt number.
///
/// # Errors
///
/// [`RetryError::Fatal`] the moment `op` reports a fatal failure;
/// [`RetryError::Exhausted`] when the budget or the deadline runs out.
pub fn retry<T, E>(
    policy: &RetryPolicy,
    clock: &impl Clock,
    seed: u64,
    mut op: impl FnMut(u32) -> Result<T, Transient<E>>,
) -> Result<T, RetryError<E>> {
    let started = clock.now();
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(Transient::Fatal(e)) => return Err(RetryError::Fatal(e)),
            Err(Transient::Retry(e)) => {
                let attempts = attempt + 1;
                let elapsed = clock.now().duration_since(started);
                let out_of_attempts = policy.max_attempts.is_some_and(|max| attempts >= max);
                let out_of_time = policy.deadline.is_some_and(|d| elapsed >= d);
                if out_of_attempts || out_of_time {
                    return Err(RetryError::Exhausted {
                        attempts,
                        elapsed,
                        last: e,
                    });
                }
                clock.sleep(policy.delay(attempt, seed));
                attempt = attempts;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::new(Duration::from_millis(10), Duration::from_millis(80))
    }

    #[test]
    fn delays_grow_cap_and_jitter_deterministically() {
        let p = policy().with_jitter(0.0);
        assert_eq!(p.delay(0, 1), Duration::from_millis(10));
        assert_eq!(p.delay(1, 1), Duration::from_millis(20));
        assert_eq!(p.delay(2, 1), Duration::from_millis(40));
        assert_eq!(p.delay(3, 1), Duration::from_millis(80));
        // The cap holds forever after.
        assert_eq!(p.delay(30, 1), Duration::from_millis(80));

        let j = policy().with_jitter(0.5);
        let d = j.delay(2, 42);
        assert!(d >= Duration::from_millis(20) && d <= Duration::from_millis(60));
        // Deterministic: same (attempt, seed) → same delay; different
        // seeds decorrelate.
        assert_eq!(d, j.delay(2, 42));
        assert_ne!(j.delay(2, 42), j.delay(2, 43));
    }

    #[test]
    fn retry_returns_first_success_and_sleeps_between_attempts() {
        let clock = FakeClock::new();
        let mut calls = 0;
        let out = retry(&policy().with_jitter(0.0), &clock, 7, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err(Transient::Retry("not yet"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(calls, 4);
        assert_eq!(
            clock.sleeps(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40)
            ]
        );
    }

    #[test]
    fn fatal_short_circuits_without_sleeping() {
        let clock = FakeClock::new();
        let out: Result<(), _> = retry(&policy(), &clock, 7, |_| Err(Transient::Fatal("corrupt")));
        assert_eq!(out, Err(RetryError::Fatal("corrupt")));
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn attempt_budget_exhausts() {
        let clock = FakeClock::new();
        let out: Result<(), _> = retry(
            &policy().with_max_attempts(3).with_jitter(0.0),
            &clock,
            7,
            |_| Err(Transient::Retry("still down")),
        );
        match out {
            Err(RetryError::Exhausted { attempts, last, .. }) => {
                assert_eq!(attempts, 3);
                assert_eq!(last, "still down");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // Two sleeps for three attempts: no pointless sleep after the last.
        assert_eq!(clock.sleeps().len(), 2);
    }

    #[test]
    fn deadline_exhausts_via_the_fake_clock() {
        let clock = FakeClock::new();
        let out: Result<(), _> = retry(
            &policy()
                .with_deadline(Duration::from_millis(25))
                .with_jitter(0.0),
            &clock,
            7,
            |_| Err(Transient::Retry("slow")),
        );
        let Err(RetryError::Exhausted { elapsed, .. }) = out else {
            panic!("expected exhaustion, got {out:?}");
        };
        assert!(elapsed >= Duration::from_millis(25));
        // 10 + 20 ms of sleeping crosses the 25 ms deadline.
        assert_eq!(clock.sleeps().len(), 2);
    }

    #[test]
    fn backoff_schedule_resets() {
        let mut b = Backoff::new(policy().with_jitter(0.0), 1);
        assert_eq!(b.next_delay(), Duration::from_millis(10));
        assert_eq!(b.next_delay(), Duration::from_millis(20));
        assert_eq!(b.attempt(), 2);
        b.reset();
        assert_eq!(b.next_delay(), Duration::from_millis(10));
    }
}
