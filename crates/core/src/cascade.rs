//! Cost-aware two-stage cascade serving: a cheap calibrated screen routes
//! only *uncertain* contracts to a deep confirmer.
//!
//! `BENCH_serve.json` puts the forest screen near 160k contracts/sec while
//! the deep confirmers top out around 34k/sec even micro-batched — yet a
//! flat deployment pays the deep price on every request. The cascade
//! splits the traffic by confidence instead:
//!
//! ```text
//!  codes ──► decode once ──► stage-1 screen (one batched pass, all contracts)
//!                                  │ calibrated p
//!                 ┌────────────────┴───────────────┐
//!            p ∉ [lo,hi]                      p ∈ [lo,hi]
//!         (confident screen)              (uncertainty band)
//!                 │                               │ escalated sub-batch —
//!                 ▼                               │ caches/rows reused,
//!          CascadeVerdict                         ▼ never re-decoded
//!          (screen's word)               stage-2 deep confirmer
//!                                                 │
//!                                                 ▼
//!                                          CascadeVerdict
//!                                          (confirmer's word)
//! ```
//!
//! Calibration is the load-bearing piece. The two stages emit scores on
//! different scales (a forest's vote fraction vs. a deep model's learned
//! probability), so each stage gets its own monotone
//! [`Calibrator`](phishinghook_ml::Calibrator) fitted on a held-out slice
//! of the training context — after calibration both stages speak one
//! probability language, a [`CascadeVerdict::probability`] is
//! threshold-comparable no matter which stage produced it, and the
//! uncertainty band `[lo, hi]` is *chosen automatically* from a target
//! escalation budget: [`pick_band`] takes the calibrated holdout
//! probabilities and returns the narrowest band that escalates the
//! requested fraction of them.
//!
//! Scoring preserves every invariant of the flat path: each contract is
//! decoded exactly once (stage 2 reuses stage 1's [`DisasmCache`]s, and
//! when both stages share an [`Encoding`] it reuses the encoded rows
//! outright), and because the underlying models' batched inference is
//! bit-identical to row-wise inference, a verdict never depends on its
//! batch-mates — which is what lets the serving tier's micro-batching
//! queue coalesce cascade requests exactly like detector requests.

use crate::detector::{CodeScorer, Detector, PHISHING_THRESHOLD};
use crate::evalstore::EvalContext;
use crate::mem::ModelKind;
use crate::par::parallel_map;
use phishinghook_artifact::{
    ArtifactError, ArtifactReader, ArtifactWriter, ByteReader, ByteWriter, OwnedArtifact,
};
use phishinghook_evm::{Bytecode, DisasmCache};
use phishinghook_features::{FeatureRow, FeatureVec};
use phishinghook_ml::{CalibrationMethod, Calibrator};
use std::path::Path;

/// Training-time knobs of a cascade, all env-overridable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Target fraction of traffic escalated to the deep confirmer
    /// (`PHISHINGHOOK_CASCADE_ESCALATE`, default 0.15). The band is picked
    /// so the *holdout* escalation rate lands on this; live traffic drawn
    /// from the same distribution tracks it.
    pub escalate_budget: f32,
    /// Calibration fitter for both stages
    /// (`PHISHINGHOOK_CASCADE_CAL=platt|isotonic`, default Platt — the
    /// right choice for the small holdout slices quick profiles produce).
    pub method: CalibrationMethod,
    /// Fraction of the training context held out for calibration + band
    /// fitting (`PHISHINGHOOK_CASCADE_HOLDOUT`, default 0.25). The stages
    /// never train on these samples.
    pub holdout_fraction: f32,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            escalate_budget: 0.15,
            method: CalibrationMethod::Platt,
            holdout_fraction: 0.25,
        }
    }
}

impl CascadeConfig {
    /// Defaults overridden by the `PHISHINGHOOK_CASCADE_*` environment
    /// knobs; malformed values fall back to the defaults.
    pub fn from_env() -> CascadeConfig {
        let mut cfg = CascadeConfig::default();
        if let Ok(v) = std::env::var("PHISHINGHOOK_CASCADE_ESCALATE") {
            if let Ok(f) = v.parse::<f32>() {
                if (0.0..=1.0).contains(&f) {
                    cfg.escalate_budget = f;
                }
            }
        }
        if let Ok(v) = std::env::var("PHISHINGHOOK_CASCADE_CAL") {
            if let Some(m) = CalibrationMethod::from_id(&v) {
                cfg.method = m;
            }
        }
        if let Ok(v) = std::env::var("PHISHINGHOOK_CASCADE_HOLDOUT") {
            if let Ok(f) = v.parse::<f32>() {
                if f > 0.0 && f < 1.0 {
                    cfg.holdout_fraction = f;
                }
            }
        }
        cfg
    }
}

/// One stage's contribution to a cascade verdict: which model spoke, what
/// it said raw, and what that means on the shared probability scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageScore {
    /// The model kind that produced this score.
    pub kind: ModelKind,
    /// The model's raw output (its native scale).
    pub raw: f32,
    /// The raw score mapped through the stage's fitted calibrator.
    pub calibrated: f32,
}

/// A cascade's call on one contract, with full per-stage provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeVerdict {
    /// The reported phishing probability: the confirmer's calibrated score
    /// when the contract escalated, otherwise the screen's.
    pub probability: f32,
    /// `true` when the screen's calibrated probability fell inside the
    /// uncertainty band and the deep confirmer was consulted.
    pub escalated: bool,
    /// Stage 1's score (always present — every contract is screened).
    pub screen: StageScore,
    /// Stage 2's score (present iff `escalated`).
    pub confirm: Option<StageScore>,
}

impl CascadeVerdict {
    /// `true` when the reported probability crosses
    /// [`PHISHING_THRESHOLD`].
    pub fn is_phishing(&self) -> bool {
        self.probability >= PHISHING_THRESHOLD
    }
}

/// Picks the uncertainty band `[lo, hi]` around [`PHISHING_THRESHOLD`]
/// that escalates `round(budget · n)` of the given calibrated holdout
/// probabilities: sort the distances `u = |p − 0.5|` ascending and cut at
/// the midpoint between the k-th and (k+1)-th — the narrowest band
/// containing the k most uncertain holdout contracts. Containment is
/// inclusive (`lo ≤ p ≤ hi`), so a tie at the cut escalates the whole
/// tied run (overshooting the budget rather than under-screening).
///
/// A zero budget returns the inverted sentinel `(1.0, 0.0)` (nothing
/// satisfies `1.0 ≤ p ≤ 0.0`); a budget of 1 returns `(0.0, 1.0)`.
///
/// # Panics
///
/// Panics on an empty probability slice or a budget outside `[0, 1]`.
pub fn pick_band(probs: &[f32], budget: f32) -> (f32, f32) {
    assert!(!probs.is_empty(), "empty holdout for band selection");
    assert!(
        (0.0..=1.0).contains(&budget),
        "escalation budget {budget} outside [0, 1]"
    );
    let n = probs.len();
    let k = (budget as f64 * n as f64).round() as usize;
    if k == 0 {
        return (1.0, 0.0);
    }
    if k >= n {
        return (0.0, 1.0);
    }
    let mut u: Vec<f32> = probs
        .iter()
        .map(|&p| (p - PHISHING_THRESHOLD).abs())
        .collect();
    u.sort_by(f32::total_cmp);
    let q = (u[k - 1] + u[k]) / 2.0;
    (PHISHING_THRESHOLD - q, PHISHING_THRESHOLD + q)
}

/// Deterministic stratified calibration split: walks the context in index
/// order keeping one fractional accumulator per class, so each class
/// sheds `holdout_fraction` of its samples into the holdout without any
/// RNG — the same context always splits the same way, which keeps cascade
/// training bit-reproducible.
fn calibration_split(labels: &[u8], holdout_fraction: f32) -> (Vec<usize>, Vec<usize>) {
    let f = holdout_fraction as f64;
    let mut acc = [0.0f64; 2];
    let mut fit = Vec::new();
    let mut holdout = Vec::new();
    for (i, &y) in labels.iter().enumerate() {
        let a = &mut acc[usize::from(y == 1)];
        *a += f;
        if *a >= 1.0 {
            *a -= 1.0;
            holdout.push(i);
        } else {
            fit.push(i);
        }
    }
    (fit, holdout)
}

/// A trained two-stage cascade: cheap screen + deep confirmer, each with
/// its own fitted calibrator, plus the uncertainty band that routes
/// between them. Implements [`CodeScorer`], so the serving tier treats it
/// exactly like a flat [`Detector`] — one `Arc`, one hot-swap generation,
/// both stages always travelling together.
pub struct CascadeDetector {
    screen: Detector,
    confirm: Detector,
    screen_cal: Calibrator,
    confirm_cal: Calibrator,
    band: (f32, f32),
    escalate_budget: f32,
}

impl std::fmt::Debug for CascadeDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CascadeDetector")
            .field("screen", &self.screen.kind())
            .field("confirm", &self.confirm.kind())
            .field("band", &self.band)
            .field("escalate_budget", &self.escalate_budget)
            .field("method", &self.method())
            .finish()
    }
}

impl CascadeDetector {
    /// Trains a cascade on `ctx`: splits off a stratified calibration
    /// holdout ([`CascadeConfig::holdout_fraction`]), trains both stages
    /// on the remainder via the standard [`Detector::train_on`] path, fits
    /// each stage's calibrator on its *holdout* scores (scores the stages
    /// never trained on — fitting on training scores would calibrate
    /// optimism, not probability), and picks the band from the calibrated
    /// screen holdout per [`pick_band`].
    ///
    /// # Panics
    ///
    /// Panics when the context is too small to yield a non-empty fit and
    /// holdout slice, or on a degenerate config (fraction outside (0,1)).
    pub fn train(
        ctx: &EvalContext,
        screen_kind: ModelKind,
        confirm_kind: ModelKind,
        config: &CascadeConfig,
        seed: u64,
    ) -> CascadeDetector {
        assert!(
            config.holdout_fraction > 0.0 && config.holdout_fraction < 1.0,
            "holdout fraction {} outside (0, 1)",
            config.holdout_fraction
        );
        let (fit_idx, holdout_idx) = calibration_split(ctx.labels(), config.holdout_fraction);
        CascadeDetector::train_split(
            ctx,
            screen_kind,
            confirm_kind,
            &fit_idx,
            &holdout_idx,
            config,
            seed,
        )
    }

    /// [`CascadeDetector::train`] with the fit/holdout split supplied
    /// explicitly — the shape that pairs a cascade with an existing
    /// cross-validation fold (train on the fold's training indices,
    /// calibrate on its held-out indices).
    ///
    /// # Panics
    ///
    /// Panics on an empty fit or holdout slice or out-of-range indices.
    pub fn train_split(
        ctx: &EvalContext,
        screen_kind: ModelKind,
        confirm_kind: ModelKind,
        fit_idx: &[usize],
        holdout_idx: &[usize],
        config: &CascadeConfig,
        seed: u64,
    ) -> CascadeDetector {
        assert!(!fit_idx.is_empty(), "empty cascade fit slice");
        assert!(!holdout_idx.is_empty(), "empty cascade calibration holdout");
        let screen = Detector::train_on(ctx, screen_kind, fit_idx, seed);
        let confirm = Detector::train_on(ctx, confirm_kind, fit_idx, seed);

        let all = ctx.caches().as_slice();
        let hold: Vec<&DisasmCache> = holdout_idx.iter().map(|&i| &all[i]).collect();
        let labels = ctx.gather_labels(holdout_idx);

        let raw_screen = score_refs_raw(&screen, &hold);
        let raw_confirm = score_refs_raw(&confirm, &hold);
        let screen_cal = Calibrator::fit(config.method, &raw_screen, &labels);
        let confirm_cal = Calibrator::fit(config.method, &raw_confirm, &labels);

        let band = pick_band(&screen_cal.apply_all(&raw_screen), config.escalate_budget);
        CascadeDetector {
            screen,
            confirm,
            screen_cal,
            confirm_cal,
            band,
            escalate_budget: config.escalate_budget,
        }
    }

    /// The cheap stage-1 screen.
    pub fn screen(&self) -> &Detector {
        &self.screen
    }

    /// The deep stage-2 confirmer.
    pub fn confirm(&self) -> &Detector {
        &self.confirm
    }

    /// The fitted uncertainty band `(lo, hi)`: calibrated screen
    /// probabilities with `lo ≤ p ≤ hi` escalate. A zero-budget cascade
    /// carries the inverted sentinel `(1.0, 0.0)`.
    pub fn band(&self) -> (f32, f32) {
        self.band
    }

    /// The escalation budget the band was fitted to.
    pub fn escalate_budget(&self) -> f32 {
        self.escalate_budget
    }

    /// The calibration method both stages were fitted with.
    pub fn method(&self) -> CalibrationMethod {
        self.screen_cal.method()
    }

    /// Verdicts for already-decoded contracts, in input order: one batched
    /// stage-1 pass over everything, then one batched stage-2 pass over
    /// the escalated subset — reusing the stage-1 rows outright when both
    /// stages share an encoding, and never re-decoding either way.
    pub fn score_batch(&self, caches: &[DisasmCache]) -> Vec<CascadeVerdict> {
        let refs: Vec<&DisasmCache> = caches.iter().collect();
        self.score_refs(&refs)
    }

    /// Verdict on one already-decoded contract.
    pub fn score_cache(&self, cache: &DisasmCache) -> CascadeVerdict {
        self.score_refs(&[cache])[0]
    }

    /// Verdict on one raw bytecode (decoded exactly once).
    pub fn score_code(&self, code: &Bytecode) -> CascadeVerdict {
        self.score_cache(&DisasmCache::build(code))
    }

    /// Verdicts for raw bytecodes: each contract is decoded exactly once
    /// across the worker pool, and the caches stay alive through stage 1
    /// so an escalation costs a gather, not a re-decode.
    pub fn score_codes(&self, codes: &[Bytecode]) -> Vec<CascadeVerdict> {
        if codes.is_empty() {
            return Vec::new();
        }
        let caches: Vec<DisasmCache> = parallel_map(codes, DisasmCache::build);
        self.score_batch(&caches)
    }

    /// The shared scoring tail: stage 1 over all, stage 2 over the band.
    fn score_refs(&self, caches: &[&DisasmCache]) -> Vec<CascadeVerdict> {
        if caches.is_empty() {
            return Vec::new();
        }
        let encoded = self.screen.encode_batch(caches);
        let rows: Vec<FeatureRow<'_>> = encoded.iter().map(FeatureVec::as_row).collect();
        let raw1 = self.screen.score_rows(&rows);
        let (lo, hi) = self.band;
        let mut verdicts: Vec<CascadeVerdict> = raw1
            .iter()
            .map(|&raw| {
                let p = self.screen_cal.apply(raw);
                CascadeVerdict {
                    probability: p,
                    escalated: lo <= p && p <= hi,
                    screen: StageScore {
                        kind: self.screen.kind(),
                        raw,
                        calibrated: p,
                    },
                    confirm: None,
                }
            })
            .collect();
        let escalated: Vec<usize> = (0..verdicts.len())
            .filter(|&i| verdicts[i].escalated)
            .collect();
        if escalated.is_empty() {
            return verdicts;
        }
        // Stage 2 sees one sub-batch. Same encoding ⇒ gather the stage-1
        // rows; different ⇒ encode the escalated caches (still no decode).
        let raw2 = if self.confirm.encoding() == self.screen.encoding() {
            let rows2: Vec<FeatureRow<'_>> =
                escalated.iter().map(|&i| encoded[i].as_row()).collect();
            self.confirm.score_rows(&rows2)
        } else {
            let esc_caches: Vec<&DisasmCache> = escalated.iter().map(|&i| caches[i]).collect();
            let enc2 = self.confirm.encode_batch(&esc_caches);
            let rows2: Vec<FeatureRow<'_>> = enc2.iter().map(FeatureVec::as_row).collect();
            self.confirm.score_rows(&rows2)
        };
        for (&i, &raw) in escalated.iter().zip(&raw2) {
            let p = self.confirm_cal.apply(raw);
            verdicts[i].confirm = Some(StageScore {
                kind: self.confirm.kind(),
                raw,
                calibrated: p,
            });
            verdicts[i].probability = p;
        }
        verdicts
    }

    /// Serializes the cascade into one versioned `.phk` container: a
    /// `cascade` section (band, budget, both calibrator states) plus a
    /// full nested [`Detector::to_bytes`] artifact per stage — so each
    /// stage reloads through the exact detector cold-start path and
    /// inherits its bit-parity guarantee. The `cascade` section's presence
    /// is also how loaders sniff a cascade artifact apart from a flat
    /// detector's.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        meta.put_f32(self.band.0);
        meta.put_f32(self.band.1);
        meta.put_f32(self.escalate_budget);
        meta.put_str(self.method().id());
        meta.put_bytes(&self.screen_cal.export_state());
        meta.put_bytes(&self.confirm_cal.export_state());

        let mut artifact = ArtifactWriter::new();
        artifact.section("cascade", meta.into_bytes());
        artifact.section("stage1", self.screen.to_bytes());
        artifact.section("stage2", self.confirm.to_bytes());
        artifact.into_bytes()
    }

    /// Writes the cascade artifact to a file.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reconstructs a cascade from [`CascadeDetector::to_bytes`] bytes,
    /// with the same cold-start parity guarantee as
    /// [`Detector::from_bytes`]: every verdict (probability, escalated
    /// flag, per-stage scores) of the reloaded cascade is bit-identical to
    /// the training process's.
    ///
    /// # Errors
    ///
    /// Container-level failures, a stage that fails detector validation,
    /// or corrupt calibrator/band state — typed, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<CascadeDetector, ArtifactError> {
        let artifact = ArtifactReader::from_bytes(bytes)?;
        CascadeDetector::decode(
            artifact.section("cascade")?,
            artifact.section("stage1")?,
            artifact.section("stage2")?,
        )
    }

    /// Reconstructs a cascade from a shared [`OwnedArtifact`] — the
    /// serving-pool load path (see [`Detector::from_artifact`]).
    ///
    /// # Errors
    ///
    /// Everything [`CascadeDetector::from_bytes`] rejects.
    pub fn from_artifact(artifact: &OwnedArtifact) -> Result<CascadeDetector, ArtifactError> {
        CascadeDetector::decode(
            artifact.section("cascade")?,
            artifact.section("stage1")?,
            artifact.section("stage2")?,
        )
    }

    /// The shared decode tail of both cascade load paths.
    fn decode(
        cascade_bytes: &[u8],
        stage1_bytes: &[u8],
        stage2_bytes: &[u8],
    ) -> Result<CascadeDetector, ArtifactError> {
        let mut meta = ByteReader::new(cascade_bytes);
        let lo = meta.take_f32()?;
        let hi = meta.take_f32()?;
        let escalate_budget = meta.take_f32()?;
        let method_id = meta.take_str()?;
        let method = CalibrationMethod::from_id(&method_id).ok_or_else(|| {
            ArtifactError::Mismatch(format!("unknown calibration method {method_id:?}"))
        })?;
        let screen_cal = Calibrator::import_state(meta.take_bytes()?)?;
        let confirm_cal = Calibrator::import_state(meta.take_bytes()?)?;
        meta.expect_exhausted("cascade meta")?;
        if screen_cal.method() != method || confirm_cal.method() != method {
            return Err(ArtifactError::Corrupt(
                "cascade calibrator method disagrees with meta".into(),
            ));
        }
        if !(0.0..=1.0).contains(&escalate_budget) {
            return Err(ArtifactError::Corrupt(format!(
                "escalation budget {escalate_budget} outside [0, 1]"
            )));
        }
        Ok(CascadeDetector {
            screen: Detector::from_bytes(stage1_bytes)?,
            confirm: Detector::from_bytes(stage2_bytes)?,
            screen_cal,
            confirm_cal,
            band: (lo, hi),
            escalate_budget,
        })
    }

    /// Reads a cascade artifact file (via [`OwnedArtifact::open`], like
    /// [`Detector::load`]).
    ///
    /// # Errors
    ///
    /// I/O failures plus everything [`CascadeDetector::from_bytes`]
    /// rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<CascadeDetector, ArtifactError> {
        CascadeDetector::from_artifact(&OwnedArtifact::open(path)?)
    }
}

/// Raw stage scores for referenced caches — the holdout-scoring helper
/// (identical arithmetic to [`Detector::score_batch`]: encode across the
/// pool, one batched model call).
fn score_refs_raw(detector: &Detector, caches: &[&DisasmCache]) -> Vec<f32> {
    let encoded = detector.encode_batch(caches);
    let rows: Vec<FeatureRow<'_>> = encoded.iter().map(FeatureVec::as_row).collect();
    detector.score_rows(&rows)
}

impl CodeScorer for CascadeDetector {
    type Output = CascadeVerdict;

    fn score_many(&self, codes: &[Bytecode]) -> Vec<CascadeVerdict> {
        self.score_codes(codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bem::{extract_dataset, BemConfig};
    use crate::mem::EvalProfile;
    use phishinghook_chain::SimulatedChain;
    use phishinghook_synth::{generate_corpus, CorpusConfig};

    fn context(seed: u64) -> EvalContext {
        let corpus = generate_corpus(&CorpusConfig::small(seed));
        let chain = SimulatedChain::from_corpus(&corpus);
        let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
        EvalContext::new(&dataset, &EvalProfile::quick())
    }

    fn quick_cascade(ctx: &EvalContext) -> CascadeDetector {
        CascadeDetector::train(
            ctx,
            ModelKind::RandomForest,
            ModelKind::LogisticRegression,
            &CascadeConfig::default(),
            7,
        )
    }

    #[test]
    fn band_hits_the_budget_exactly_without_ties() {
        // 10 distinct distances from 0.5.
        let probs: Vec<f32> = (0..10).map(|i| 0.5 + 0.04 * i as f32).collect();
        let (lo, hi) = pick_band(&probs, 0.3);
        let inside = probs.iter().filter(|&&p| lo <= p && p <= hi).count();
        assert_eq!(inside, 3);
        // The band is symmetric around the threshold.
        assert!((lo + hi - 2.0 * PHISHING_THRESHOLD).abs() < 1e-6);
    }

    #[test]
    fn band_edge_budgets() {
        let probs = [0.1, 0.4, 0.5, 0.9];
        // Zero budget: the inverted sentinel admits nothing.
        let (lo, hi) = pick_band(&probs, 0.0);
        assert!(lo > hi);
        assert!(!probs.iter().any(|&p| lo <= p && p <= hi));
        // Full budget: everything escalates.
        assert_eq!(pick_band(&probs, 1.0), (0.0, 1.0));
    }

    #[test]
    fn band_ties_overshoot_rather_than_undershoot() {
        // Four contracts share the cut distance; asking for 2 gets all 4.
        let probs = [0.45, 0.55, 0.45, 0.55, 0.1, 0.9];
        let (lo, hi) = pick_band(&probs, 2.0 / 6.0);
        let inside = probs.iter().filter(|&&p| lo <= p && p <= hi).count();
        assert_eq!(inside, 4);
    }

    #[test]
    fn calibration_split_is_stratified_and_deterministic() {
        let labels: Vec<u8> = (0..200).map(|i| u8::from(i % 3 == 0)).collect();
        let (fit, hold) = calibration_split(&labels, 0.25);
        assert_eq!(fit.len() + hold.len(), 200);
        // Each class sheds ~25%.
        for class in [0u8, 1] {
            let total = labels.iter().filter(|&&y| y == class).count();
            let held = hold.iter().filter(|&&i| labels[i] == class).count();
            let frac = held as f64 / total as f64;
            assert!((frac - 0.25).abs() < 0.05, "class {class}: {frac}");
        }
        // Deterministic.
        assert_eq!(calibration_split(&labels, 0.25), (fit, hold));
    }

    #[test]
    fn verdicts_route_by_band_and_carry_provenance() {
        let ctx = context(42);
        let cascade = quick_cascade(&ctx);
        let (lo, hi) = cascade.band();
        let caches = ctx.caches().as_slice();
        let verdicts = cascade.score_batch(caches);
        assert_eq!(verdicts.len(), caches.len());
        let mut saw = [false; 2];
        for v in &verdicts {
            assert_eq!(v.screen.kind, ModelKind::RandomForest);
            let inside = lo <= v.screen.calibrated && v.screen.calibrated <= hi;
            assert_eq!(v.escalated, inside);
            saw[usize::from(v.escalated)] = true;
            match v.confirm {
                Some(c) => {
                    assert!(v.escalated);
                    assert_eq!(c.kind, ModelKind::LogisticRegression);
                    assert_eq!(v.probability, c.calibrated);
                }
                None => {
                    assert!(!v.escalated);
                    assert_eq!(v.probability, v.screen.calibrated);
                }
            }
            assert!((0.0..=1.0).contains(&v.probability));
        }
        assert!(saw[0], "no contract short-circuited");
        assert!(saw[1], "no contract escalated");
    }

    #[test]
    fn cascade_artifact_round_trips_bit_exactly() {
        let ctx = context(42);
        let cascade = quick_cascade(&ctx);
        let caches = ctx.caches().as_slice();
        let expected = cascade.score_batch(caches);

        let reloaded = CascadeDetector::from_bytes(&cascade.to_bytes()).unwrap();
        assert_eq!(reloaded.band(), cascade.band());
        assert_eq!(reloaded.escalate_budget(), cascade.escalate_budget());
        assert_eq!(reloaded.method(), cascade.method());
        assert_eq!(reloaded.score_batch(caches), expected);
    }

    #[test]
    fn malformed_cascade_artifacts_are_typed_errors() {
        let ctx = context(42);
        let bytes = quick_cascade(&ctx).to_bytes();
        for cut in [0, 4, bytes.len() / 3, bytes.len() - 1] {
            assert!(
                CascadeDetector::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // A flat detector artifact is not a cascade.
        let flat = Detector::train(&ctx, ModelKind::Knn, 1).to_bytes();
        assert!(matches!(
            CascadeDetector::from_bytes(&flat),
            Err(ArtifactError::MissingSection(_))
        ));
    }
}
