//! Criterion bench + harness: streaming ingestion & online adaptation.
//!
//! Criterion's view is the per-sample hot path: one `DriftWatcher`
//! observation (the statistics every streamed contract pays) and one
//! append to the durable ingestion journal. The harness then replays the
//! injected-drift scenario end to end — score → drift watch → sliding
//! window retrain → atomic republish → live `Server::install` — and
//! reports contracts/sec streamed and **time-to-republish**: the wall
//! time from the sample that trips a `DriftSignal` to the moment the
//! retrained generation is live in the serving slot (retrain + artifact
//! encode + atomic publish + decode-from-disk + hot swap).
//!
//! Full runs land the committed baseline in `BENCH_ingest.json`; smoke
//! runs (`PHISHINGHOOK_BENCH_SMOKE=1`) assert the pipeline invariants —
//! the injected shift trips at least one retrain, publication is
//! monotone, and the live server ends on the latest generation — without
//! touching the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook::drift::{DriftConfig, DriftWatcher};
use phishinghook::prelude::*;
use phishinghook::EvalProfile;
use phishinghook_artifact::publish::ArtifactPublisher;
use phishinghook_bench::json::Value;
use phishinghook_evm::CodeLogWriter;
use phishinghook_ingest::{baseline_detector, DriftScenario, IngestConfig, OnlinePipeline};
use phishinghook_serve::{Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("PHISHINGHOOK_BENCH_SMOKE").is_some()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir()
        .join("phk_bench_ingest")
        .join(format!("{tag}_{}", std::process::id()))
}

struct HarnessRun {
    streamed: usize,
    contracts_per_sec: f64,
    signals: usize,
    retrains: usize,
    republish_ms: Vec<f64>,
    final_generation: u64,
}

/// Replays the drifted chain through the full adaptation loop against a
/// live server, timing each drift→live-swap cycle.
fn run_harness() -> HarnessRun {
    let scenario = DriftScenario::small(42);
    let chain = scenario.build();
    let kind = ModelKind::LogisticRegression;
    let initial = baseline_detector(&chain, kind, &EvalProfile::quick(), 7);

    let dir = temp_dir("publish");
    std::fs::remove_dir_all(&dir).ok();
    let mut publisher = ArtifactPublisher::open(&dir).expect("open publisher");
    let first = publisher
        .publish(initial.to_bytes())
        .expect("publish baseline");
    let server = Server::start_with_generation(
        Arc::clone(&initial),
        first.generation,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("start server");

    let mut pipeline = OnlinePipeline::new(
        initial,
        IngestConfig {
            drift: DriftConfig {
                window: 64,
                brier_margin: 0.15,
            },
            retrain_window: 256,
            kind,
            profile: EvalProfile::quick(),
            seed: 7,
        },
    );

    let mut republish_ms = Vec::new();
    let t0 = Instant::now();
    for sample in ExtractionStream::new(&chain, Month::FIRST, Month::LAST) {
        let trip = Instant::now();
        if let Some(event) = pipeline.observe(sample, &mut publisher).expect("observe") {
            // The serving tier picks the republished artifact up from
            // disk — the complete drift→live-generation hand-off.
            let bytes = std::fs::read(&event.published.path).expect("read artifact");
            let decoded = Arc::new(Detector::from_bytes(&bytes).expect("decode artifact"));
            server.install(decoded, event.published.generation);
            republish_ms.push(trip.elapsed().as_secs_f64() * 1e3);
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let report = pipeline.report().clone();
    let run = HarnessRun {
        streamed: report.streamed,
        contracts_per_sec: report.streamed as f64 / elapsed_s,
        signals: report.signals.len(),
        retrains: report.retrains,
        republish_ms,
        final_generation: server.generation(),
    };
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    run
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_throughput");

    // Per-sample hot path 1: the drift statistics (calibrated stream, so
    // the watcher never latches and every iteration does full work).
    let mut watcher = DriftWatcher::new(DriftConfig {
        window: 128,
        brier_margin: f64::INFINITY,
    });
    let mut i = 0u64;
    group.bench_function("drift_watcher_observe", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let label = (i % 2) as u8;
            let prob = if label == 1 { 0.9 } else { 0.1 };
            watcher.observe(prob, label, Month(5))
        })
    });

    // Per-sample hot path 2: journaling one contract to the code log.
    let log_dir = temp_dir("journal");
    std::fs::create_dir_all(&log_dir).expect("journal dir");
    let mut journal = CodeLogWriter::create(log_dir.join("bench.codelog")).expect("create journal");
    let code = phishinghook_synth::generate_contract(
        phishinghook_synth::Family::Erc20Token,
        Month(5),
        &phishinghook_synth::Difficulty::default(),
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x1A7E),
    );
    group.bench_function("codelog_append", |b| {
        b.iter(|| journal.append(&code).expect("append"))
    });
    group.finish();
    drop(journal);
    std::fs::remove_dir_all(&log_dir).ok();

    // The end-to-end adaptation harness.
    let run = run_harness();
    println!(
        "  streamed {} contracts at {:.0}/s; {} signals, {} retrains, final generation {}",
        run.streamed, run.contracts_per_sec, run.signals, run.retrains, run.final_generation
    );
    for (i, ms) in run.republish_ms.iter().enumerate() {
        println!("  drift {} -> live generation in {ms:.1} ms", i + 1);
    }
    assert!(run.streamed > 0, "nothing streamed");
    assert!(
        run.retrains >= 1,
        "injected drift must trip at least one retrain"
    );
    assert_eq!(run.retrains, run.republish_ms.len());
    assert!(
        run.final_generation > 1,
        "server must end on a republished generation"
    );

    // Smoke runs assert but never overwrite the committed baseline.
    if !smoke_mode() {
        let mean_republish_ms =
            run.republish_ms.iter().sum::<f64>() / run.republish_ms.len() as f64;
        let doc = Value::Obj(vec![
            ("bench".into(), Value::Str("ingest_throughput".into())),
            (
                "model".into(),
                Value::Str(ModelKind::LogisticRegression.id().into()),
            ),
            ("streamed".into(), Value::Num(run.streamed as f64)),
            (
                "contracts_per_sec".into(),
                Value::Num(run.contracts_per_sec),
            ),
            ("drift_signals".into(), Value::Num(run.signals as f64)),
            ("retrains".into(), Value::Num(run.retrains as f64)),
            (
                "republish_ms".into(),
                Value::Arr(run.republish_ms.iter().map(|&m| Value::Num(m)).collect()),
            ),
            ("mean_republish_ms".into(), Value::Num(mean_republish_ms)),
            (
                "final_generation".into(),
                Value::Num(run.final_generation as f64),
            ),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
        std::fs::write(path, doc.render()).expect("write BENCH_ingest.json");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest
}
criterion_main!(benches);
