//! Regenerates **Fig. 5**: performance of the best model per category
//! (Random Forest, ECA+EfficientNet, SCSGuard) across 1/3, 2/3 and full
//! data splits.
//!
//! The full study (all cells and timings) is persisted to
//! `fig5_study.json`; the `fig6` and `fig7` binaries reload it
//! table2-style instead of re-running the trial matrix.

use phishinghook::prelude::*;
use phishinghook::scalability::SCALABILITY_MODELS;
use phishinghook_bench::{banner, main_dataset, RunScale};

fn main() {
    let scale = RunScale::from_args();
    banner("Fig. 5 - model scalability across data splits", scale);
    let dataset = main_dataset(scale, 0xF5);
    let folds = if scale == RunScale::Quick { 2 } else { 4 };
    let study = run_scalability(&dataset, folds, &scale.profile(), 0xF5);

    for metric in METRIC_NAMES {
        println!("--- {metric} ---");
        println!("{:<20} {:>8} {:>8} {:>8}", "model", "1/3", "2/3", "1.0");
        for model in SCALABILITY_MODELS {
            print!("{:<20}", model.name());
            for ratio in SPLIT_RATIOS {
                print!(" {:>8.4}", study.mean_metric(model, ratio, metric));
            }
            println!();
        }
        println!();
    }

    // Persist the whole study for fig6/fig7.
    let json = phishinghook_bench::json::scalability_to_json(&study);
    std::fs::write("fig5_study.json", json).expect("write fig5 study");
    println!("full study written to fig5_study.json (consumed by fig6/fig7)");
}
