//! Acceptance tests for the two-stage cascade serving path: band routing
//! bit-matches the standalone stages, batch composition never changes a
//! verdict, escalation rate tracks the configured budget across random
//! corpora, the hot-swap seam never pairs stages from different
//! generations, and the HTTP front serves cascade verdicts + routing
//! counters end to end.

use phishinghook::json::Value;
use phishinghook::prelude::*;
use phishinghook::{CascadeVerdict, EvalProfile};
use phishinghook_evm::Bytecode;
use phishinghook_serve::{MicroBatcher, ModelSlot, QueueConfig, Server, ServerConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn context(seed: u64) -> EvalContext {
    let corpus = generate_corpus(&CorpusConfig::small(seed));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    EvalContext::new(&dataset, &EvalProfile::quick())
}

/// Fresh bytecodes the cascade has never seen (different corpus seed).
fn fresh_codes(seed: u64, n: usize) -> Vec<Bytecode> {
    let corpus = generate_corpus(&CorpusConfig::small(seed));
    let chain = SimulatedChain::from_corpus(&corpus);
    chain
        .records()
        .iter()
        .take(n)
        .map(|r| r.bytecode.clone())
        .collect()
}

fn forest_logreg_cascade(ctx: &EvalContext, seed: u64) -> CascadeDetector {
    CascadeDetector::train(
        ctx,
        ModelKind::RandomForest,
        ModelKind::LogisticRegression,
        &CascadeConfig::default(),
        seed,
    )
}

#[test]
fn outside_band_is_the_screens_word_inside_band_is_the_confirmers() {
    let ctx = context(42);
    let cascade = forest_logreg_cascade(&ctx, 7);
    let codes = fresh_codes(77, 32);
    let verdicts = cascade.score_codes(&codes);
    let (lo, hi) = cascade.band();

    let mut escalations = 0;
    for (code, v) in codes.iter().zip(&verdicts) {
        // Stage-1 raw score bit-matches the standalone screen detector
        // scoring the same contract solo.
        assert_eq!(
            v.screen.raw.to_bits(),
            cascade.screen().score_code(code).to_bits(),
            "screen raw diverged from the standalone stage"
        );
        let inside = lo <= v.screen.calibrated && v.screen.calibrated <= hi;
        assert_eq!(v.escalated, inside, "routing disagrees with the band");
        if let Some(c) = v.confirm {
            escalations += 1;
            // Inside the band, the deep confirmer's raw score bit-matches
            // its standalone solo score — even though the cascade fed it a
            // reused row from a coalesced sub-batch.
            assert_eq!(
                c.raw.to_bits(),
                cascade.confirm().score_code(code).to_bits(),
                "confirm raw diverged from the standalone stage"
            );
            assert_eq!(v.probability.to_bits(), c.calibrated.to_bits());
        } else {
            assert!(!v.escalated);
            assert_eq!(v.probability.to_bits(), v.screen.calibrated.to_bits());
        }
    }
    assert!(escalations > 0, "band admitted nothing; test is vacuous");
    assert!(
        escalations < codes.len(),
        "everything escalated; test is vacuous"
    );
}

#[test]
fn different_encoding_confirmer_still_bit_matches_standalone_stages() {
    let ctx = context(42);
    // Forest screens on histograms; ESCORT confirms on its own encoding —
    // the cascade path that re-encodes (but never re-decodes) escalations.
    let cascade = CascadeDetector::train(
        &ctx,
        ModelKind::RandomForest,
        ModelKind::Escort,
        &CascadeConfig::default(),
        7,
    );
    assert_ne!(
        cascade.screen().encoding(),
        cascade.confirm().encoding(),
        "fixture must exercise the cross-encoding path"
    );
    let codes = fresh_codes(78, 24);
    let verdicts = cascade.score_codes(&codes);
    let mut escalations = 0;
    for (code, v) in codes.iter().zip(&verdicts) {
        assert_eq!(
            v.screen.raw.to_bits(),
            cascade.screen().score_code(code).to_bits()
        );
        if let Some(c) = v.confirm {
            escalations += 1;
            assert_eq!(
                c.raw.to_bits(),
                cascade.confirm().score_code(code).to_bits()
            );
        }
    }
    assert!(escalations > 0, "band admitted nothing; test is vacuous");
}

#[test]
fn batch_composition_never_changes_a_verdict() {
    let ctx = context(42);
    let cascade = forest_logreg_cascade(&ctx, 7);
    let codes = fresh_codes(79, 12);

    // Every contract scored solo equals its verdict inside the full batch.
    let batched = cascade.score_many(&codes);
    for (i, code) in codes.iter().enumerate() {
        let solo = cascade.score_many(std::slice::from_ref(code));
        assert_eq!(solo.len(), 1);
        assert_eq!(
            solo[0], batched[i],
            "contract {i}: batch-mates changed the verdict"
        );
    }
    // The ISSUE's literal pair-vs-solo shape.
    let pair = cascade.score_many(&codes[..2]);
    assert_eq!(pair[0], cascade.score_many(&codes[..1])[0]);
    // Order permutation: reversing the batch reverses the verdicts.
    let reversed_input: Vec<Bytecode> = codes.iter().rev().cloned().collect();
    let reversed = cascade.score_many(&reversed_input);
    let mut expect = batched.clone();
    expect.reverse();
    assert_eq!(reversed, expect);
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(6))]

    /// Satellite: across random corpora and budgets, the live escalation
    /// rate tracks the configured budget. Linear stages keep the scores
    /// near-continuous, so the band quantile transfers from the holdout to
    /// the full corpus within a binomial-noise tolerance.
    #[test]
    fn escalation_rate_tracks_the_budget_on_random_corpora(
        seed in 0u64..1000,
        budget_pct in 10u32..45,
    ) {
        let budget = budget_pct as f32 / 100.0;
        let ctx = context(seed);
        let cascade = CascadeDetector::train(
            &ctx,
            ModelKind::LogisticRegression,
            ModelKind::Svm,
            &CascadeConfig { escalate_budget: budget, ..CascadeConfig::default() },
            seed,
        );
        let verdicts = cascade.score_batch(ctx.caches().as_slice());
        let rate = verdicts.iter().filter(|v| v.escalated).count() as f32
            / verdicts.len() as f32;
        // Binomial noise at n≈100 plus quantile-transfer slack.
        let tol = 0.12 + (budget * (1.0 - budget) / verdicts.len() as f32).sqrt() * 3.0;
        prop_assert!(
            (rate - budget).abs() <= tol,
            "rate {rate:.3} vs budget {budget:.2} (tol {tol:.3}, n {})",
            verdicts.len()
        );
    }
}

#[test]
fn hot_swap_hammer_never_serves_a_mixed_generation_pair() {
    let ctx = context(42);
    // Two generations with *swapped* stage kinds: any cross-generation
    // stage pairing would produce a verdict matching neither table.
    let gen_a = Arc::new(forest_logreg_cascade(&ctx, 7));
    let gen_b = Arc::new(CascadeDetector::train(
        &ctx,
        ModelKind::LogisticRegression,
        ModelKind::RandomForest,
        &CascadeConfig::default(),
        11,
    ));
    let codes = fresh_codes(80, 16);
    let table_a: Vec<CascadeVerdict> = gen_a.score_codes(&codes);
    let table_b: Vec<CascadeVerdict> = gen_b.score_codes(&codes);
    for (a, b) in table_a.iter().zip(&table_b) {
        assert_ne!(a, b, "generations must be distinguishable per contract");
    }

    let slot = Arc::new(ModelSlot::new(Arc::clone(&gen_a), 1));
    let queue = Arc::new(MicroBatcher::start(
        Arc::clone(&slot),
        QueueConfig {
            max_batch: 8,
            workers: 2,
            ..QueueConfig::default()
        },
    ));

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 40;
    let progress = Arc::new(AtomicUsize::new(0));
    let from_a = Arc::new(AtomicUsize::new(0));
    let from_b = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let queue = Arc::clone(&queue);
            let codes = codes.clone();
            let table_a = table_a.clone();
            let table_b = table_b.clone();
            let progress = Arc::clone(&progress);
            let from_a = Arc::clone(&from_a);
            let from_b = Arc::clone(&from_b);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Mix single submits and micro-batches of 3.
                    let start = (client * 5 + round) % codes.len();
                    let picks: Vec<usize> = if round % 2 == 0 {
                        vec![start]
                    } else {
                        (0..3).map(|k| (start + k) % codes.len()).collect()
                    };
                    let batch: Vec<Bytecode> = picks.iter().map(|&i| codes[i].clone()).collect();
                    let replies = queue.submit_many(batch).expect("queue rejected work");
                    for (&i, v) in picks.iter().zip(&replies) {
                        if *v == table_a[i] {
                            from_a.fetch_add(1, Ordering::Relaxed);
                        } else if *v == table_b[i] {
                            from_b.fetch_add(1, Ordering::Relaxed);
                        } else {
                            panic!(
                                "contract {i} verdict {v:?} matches neither generation \
                                 (a mixed stage-1/stage-2 pair?)"
                            );
                        }
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Swap mid-hammer: wait until the clients are warm, then install.
    while progress.load(Ordering::Relaxed) < CLIENTS * ROUNDS / 2 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let replaced = slot.install(Arc::clone(&gen_b), 2);
    assert_eq!(replaced, 1);
    for h in handles {
        h.join().expect("client panicked");
    }
    assert_eq!(slot.generation(), 2);
    // The hammer straddled the swap: both generations actually served.
    assert!(from_a.load(Ordering::Relaxed) > 0, "gen A never observed");
    assert!(from_b.load(Ordering::Relaxed) > 0, "gen B never observed");
}

// ---------------------------------------------------------------------------
// HTTP front
// ---------------------------------------------------------------------------

/// Reads one HTTP response off `r`: status code and body text.
fn read_response(r: &mut impl BufRead) -> (u16, String) {
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length value");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn send(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(raw).expect("send request");
    read_response(&mut BufReader::new(stream))
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: cascade-e2e\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    send(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: cascade-e2e\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn parse_json(body: &str) -> Value {
    phishinghook::json::parse(body).unwrap_or_else(|| panic!("bad JSON body: {body}"))
}

fn json_num(doc: &Value, field: &str) -> f64 {
    doc.get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing number {field:?}"))
}

fn json_bool(doc: &Value, field: &str) -> bool {
    match doc.get(field) {
        Some(Value::Bool(b)) => *b,
        other => panic!("missing bool {field:?}: {other:?}"),
    }
}

fn json_str(doc: &Value, field: &str) -> String {
    doc.get(field)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string {field:?}"))
        .to_string()
}

#[test]
fn cascade_http_server_serves_verdicts_and_routing_counters() {
    let ctx = context(42);
    let gen_a = Arc::new(forest_logreg_cascade(&ctx, 7));
    let server =
        Server::start_cascade(Arc::clone(&gen_a), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let codes = fresh_codes(81, 8);
    let expected: Vec<CascadeVerdict> = gen_a.score_codes(&codes);

    // Fresh server: counters at zero, cascade identity visible.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = parse_json(&body);
    assert_eq!(json_str(&health, "model"), "cascade");
    assert_eq!(json_str(&health, "screen_model"), "random_forest");
    assert_eq!(json_str(&health, "confirm_model"), "logistic_regression");
    assert_eq!(json_num(&health, "cascade_screened"), 0.0);
    assert_eq!(json_num(&health, "cascade_escalated"), 0.0);
    assert_eq!(json_num(&health, "cascade_escalation_rate"), 0.0);

    // Single predict: probability + escalated flag bit-match the solo
    // cascade across the TCP boundary.
    let (status, body) = post(
        addr,
        "/predict",
        &format!("{{\"bytecode\":\"{}\"}}", codes[0].to_hex()),
    );
    assert_eq!(status, 200);
    let reply = parse_json(&body);
    assert_eq!(json_str(&reply, "model"), "cascade");
    assert_eq!(
        (json_num(&reply, "probability") as f32).to_bits(),
        expected[0].probability.to_bits()
    );
    assert_eq!(json_bool(&reply, "escalated"), expected[0].escalated);
    assert_eq!(json_bool(&reply, "phishing"), expected[0].is_phishing());

    // Batch predict: arrays line up index-for-index.
    let contracts: Vec<String> = codes
        .iter()
        .map(|c| format!("\"{}\"", c.to_hex()))
        .collect();
    let (status, body) = post(
        addr,
        "/predict_batch",
        &format!("{{\"contracts\":[{}]}}", contracts.join(",")),
    );
    assert_eq!(status, 200);
    let reply = parse_json(&body);
    let probs = reply.get("probabilities").and_then(Value::as_arr).unwrap();
    let escalated = reply.get("escalated").and_then(Value::as_arr).unwrap();
    assert_eq!(probs.len(), codes.len());
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            (probs[i].as_f64().unwrap() as f32).to_bits(),
            want.probability.to_bits()
        );
        assert_eq!(escalated[i], Value::Bool(want.escalated));
    }

    // Counters: 1 (single) + 8 (batch) screened; escalations counted off
    // the same verdicts the clients saw.
    let expected_up =
        u64::from(expected[0].escalated) + expected.iter().filter(|v| v.escalated).count() as u64;
    let (screened, escalated) = server.cascade_counters();
    assert_eq!(screened, 1 + codes.len() as u64);
    assert_eq!(escalated, expected_up);
    let (_, body) = get(addr, "/healthz");
    let health = parse_json(&body);
    assert_eq!(json_num(&health, "cascade_screened"), screened as f64);
    assert_eq!(json_num(&health, "cascade_escalated"), escalated as f64);
    assert_eq!(
        json_num(&health, "cascade_escalation_rate"),
        escalated as f64 / screened as f64
    );

    // Hot swap over the live server: the whole cascade (screen + confirm
    // + calibrators + band) moves in one generation; served verdicts flip
    // to the new pair, and the counters keep accumulating across it.
    let gen_b = Arc::new(CascadeDetector::train(
        &ctx,
        ModelKind::LogisticRegression,
        ModelKind::RandomForest,
        &CascadeConfig::default(),
        11,
    ));
    let expected_b = gen_b.score_code(&codes[0]);
    assert_eq!(server.install_cascade(Arc::clone(&gen_b), 2), 0);
    assert_eq!(server.generation(), 2);
    let (status, body) = post(
        addr,
        "/predict",
        &format!("{{\"bytecode\":\"{}\"}}", codes[0].to_hex()),
    );
    assert_eq!(status, 200);
    let reply = parse_json(&body);
    assert_eq!(
        (json_num(&reply, "probability") as f32).to_bits(),
        expected_b.probability.to_bits()
    );
    let (screened_after, _) = server.cascade_counters();
    assert_eq!(screened_after, screened + 1, "counters must survive swaps");
    let (_, body) = get(addr, "/healthz");
    let health = parse_json(&body);
    assert_eq!(json_str(&health, "screen_model"), "logistic_regression");
    assert_eq!(json_str(&health, "confirm_model"), "random_forest");
    assert_eq!(json_num(&health, "generation"), 2.0);

    server.shutdown();
}
