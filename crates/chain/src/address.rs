//! 20-byte Ethereum account addresses.

use std::fmt;

/// A 20-byte Ethereum address.
///
/// # Examples
///
/// ```
/// use phishinghook_chain::Address;
///
/// let addr = Address::from_bytes([0xAB; 20]);
/// assert!(addr.to_string().starts_with("0xabab"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address([u8; 20]);

impl Address {
    /// Creates an address from raw bytes.
    pub fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Deterministically derives the address of the `nonce`-th deployment in
    /// the simulation (a stand-in for the real CREATE address derivation).
    pub fn derived(nonce: u64) -> Self {
        // Splitmix64-style mixing, expanded to 20 bytes.
        let mut out = [0u8; 20];
        let mut z = nonce.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for chunk in out.chunks_mut(8) {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_be_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Address(out)
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derived_addresses_are_distinct() {
        let set: HashSet<Address> = (0..10_000).map(Address::derived).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn derived_is_deterministic() {
        assert_eq!(Address::derived(42), Address::derived(42));
    }

    #[test]
    fn display_is_hex() {
        let a = Address::from_bytes([0x01; 20]);
        assert_eq!(a.to_string().len(), 42);
        assert_eq!(&a.to_string()[..4], "0x01");
    }
}
