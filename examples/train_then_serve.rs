//! The two-process persistence workflow, end to end:
//!
//! ```bash
//! # Process 1: train on the synthetic chain, save the artifact and the
//! # reference scores it produces on a deterministic screening batch.
//! cargo run --release --example train_then_serve -- train /tmp/detector.phk /tmp/scores.phk
//!
//! # Process 2 (fresh process, no training state): reload the artifact,
//! # score the same batch, and verify bit-identical results.
//! cargo run --release --example train_then_serve -- serve /tmp/detector.phk /tmp/scores.phk
//! ```
//!
//! With no arguments both phases run in sequence through a temp
//! directory — the same flow, one command. CI runs the two-command form
//! so the parity check crosses a real process boundary.
//!
//! Each phase covers *two* artifacts: the flat `RandomForest` detector
//! and a two-stage cascade (forest screen → ESCORT confirmer, stored as
//! `<artifact>.cascade`). For the cascade, parity means every verdict's
//! probability **and** its escalated flag reproduce bit-identically in
//! the fresh process — both stages, both calibrators, and the band all
//! round-trip through one `.phk` container.

use phishinghook::prelude::*;
use phishinghook_artifact::{ArtifactReader, ArtifactWriter, ByteReader, ByteWriter};
use phishinghook_evm::Bytecode;
use phishinghook_synth::{generate_contract, Difficulty, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TRAIN_SEED: u64 = 7;
const SCREEN_SEED: u64 = 0xC01D;
const SCREEN_COUNT: usize = 48;

/// The screening batch both processes regenerate independently: fresh
/// deployments the detector never saw during training, derived from a
/// fixed seed so "process 2" needs nothing but the two artifact files.
fn screening_batch() -> Vec<Bytecode> {
    let mut rng = StdRng::seed_from_u64(SCREEN_SEED);
    (0..SCREEN_COUNT)
        .map(|i| {
            generate_contract(
                Family::ALL[i % Family::ALL.len()],
                Month(6),
                &Difficulty::default(),
                &mut rng,
            )
        })
        .collect()
}

fn train(artifact_path: &str, scores_path: &str) {
    let t0 = Instant::now();
    let corpus = generate_corpus(&CorpusConfig::small(1337));
    let chain = SimulatedChain::from_corpus(&corpus);
    let (dataset, _) = extract_dataset(&chain, &BemConfig::default());
    let ctx = EvalContext::new(&dataset, &EvalProfile::quick());
    let detector = Detector::train(&ctx, ModelKind::RandomForest, TRAIN_SEED);
    println!(
        "[train] {} on {} contracts in {:.2}s",
        detector.kind(),
        detector.trained_on(),
        t0.elapsed().as_secs_f64()
    );

    detector.save(artifact_path).expect("write artifact");
    let size = std::fs::metadata(artifact_path)
        .expect("stat artifact")
        .len();
    println!("[train] artifact -> {artifact_path} ({size} bytes)");

    let scores = detector.score_codes(&screening_batch());
    let mut payload = ByteWriter::new();
    payload.put_str(detector.kind().id());
    payload.put_f32_slice(&scores);

    // The cascade rides the same two files: its own artifact alongside
    // the flat one, its reference verdicts (probability + escalated flag)
    // in a second section of the scores file.
    let t1 = Instant::now();
    let cascade = CascadeDetector::train(
        &ctx,
        ModelKind::RandomForest,
        ModelKind::Escort,
        &CascadeConfig::default(),
        TRAIN_SEED,
    );
    let cascade_path = format!("{artifact_path}.cascade");
    cascade.save(&cascade_path).expect("write cascade artifact");
    let verdicts = cascade.score_codes(&screening_batch());
    let escalated = verdicts.iter().filter(|v| v.escalated).count();
    println!(
        "[train] cascade {} -> {} in {:.2}s ({escalated}/{} escalated) -> {cascade_path}",
        cascade.screen().kind().id(),
        cascade.confirm().kind().id(),
        t1.elapsed().as_secs_f64(),
        verdicts.len()
    );
    let mut cascade_payload = ByteWriter::new();
    cascade_payload.put_f32_slice(&verdicts.iter().map(|v| v.probability).collect::<Vec<_>>());
    cascade_payload.put_bytes(
        &verdicts
            .iter()
            .map(|v| v.escalated as u8)
            .collect::<Vec<_>>(),
    );

    let mut scores_artifact = ArtifactWriter::new();
    scores_artifact.section("scores", payload.into_bytes());
    scores_artifact.section("cascade_verdicts", cascade_payload.into_bytes());
    scores_artifact
        .write_file(scores_path)
        .expect("write scores");
    println!("[train] {} reference scores -> {scores_path}", scores.len());
}

fn serve(artifact_path: &str, scores_path: &str) {
    let t0 = Instant::now();
    let detector = match Detector::load(artifact_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[serve] failed to load artifact: {e}");
            std::process::exit(1);
        }
    };
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "[serve] loaded {} ({} params, trained on {}) in {load_ms:.1} ms — no retraining",
        detector.kind(),
        detector.parameter_count(),
        detector.trained_on()
    );

    let scores = detector.score_codes(&screening_batch());

    let reference_bytes = std::fs::read(scores_path).expect("read scores file");
    let reference = ArtifactReader::from_bytes(&reference_bytes).expect("parse scores artifact");
    let mut payload = ByteReader::new(reference.section("scores").expect("scores section"));
    let trained_kind = payload.take_str().expect("kind id");
    let expected = payload.take_f32_slice().expect("score list");
    assert_eq!(
        trained_kind,
        detector.kind().id(),
        "artifact/model kind mismatch"
    );

    let mismatches: Vec<usize> = (0..expected.len().max(scores.len()))
        .filter(|&i| scores.get(i).map(|s| s.to_bits()) != expected.get(i).map(|e| e.to_bits()))
        .collect();
    if mismatches.is_empty() {
        println!(
            "[serve] {} scores match the training process bit-for-bit ✓",
            scores.len()
        );
    } else {
        eprintln!(
            "[serve] PARITY FAILURE: {} of {} scores differ (first at index {})",
            mismatches.len(),
            expected.len(),
            mismatches[0]
        );
        std::process::exit(1);
    }

    // The cascade artifact: both stages, both calibrators and the band
    // cold-start from one container, and every verdict — probability AND
    // routing decision — must reproduce bit-identically.
    let t1 = Instant::now();
    let cascade_path = format!("{artifact_path}.cascade");
    let cascade = match CascadeDetector::load(&cascade_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("[serve] failed to load cascade artifact: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "[serve] loaded cascade {} -> {} (band [{:.3}, {:.3}]) in {:.1} ms",
        cascade.screen().kind().id(),
        cascade.confirm().kind().id(),
        cascade.band().0,
        cascade.band().1,
        t1.elapsed().as_secs_f64() * 1e3
    );
    let verdicts = cascade.score_codes(&screening_batch());
    let mut cascade_payload = ByteReader::new(
        reference
            .section("cascade_verdicts")
            .expect("cascade_verdicts section"),
    );
    let expected_probs = cascade_payload.take_f32_slice().expect("probabilities");
    let expected_escalated = cascade_payload.take_bytes().expect("escalated flags");
    let cascade_mismatches: Vec<usize> = (0..verdicts.len().max(expected_probs.len()))
        .filter(|&i| {
            verdicts.get(i).map(|v| v.probability.to_bits())
                != expected_probs.get(i).map(|p| p.to_bits())
                || verdicts.get(i).map(|v| v.escalated as u8) != expected_escalated.get(i).copied()
        })
        .collect();
    if cascade_mismatches.is_empty() {
        let escalated = verdicts.iter().filter(|v| v.escalated).count();
        println!(
            "[serve] {} cascade verdicts (probability + escalated flag, {escalated} escalated) \
             match the training process bit-for-bit ✓",
            verdicts.len()
        );
    } else {
        eprintln!(
            "[serve] CASCADE PARITY FAILURE: {} of {} verdicts differ (first at index {})",
            cascade_mismatches.len(),
            expected_probs.len(),
            cascade_mismatches[0]
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, artifact, scores] if cmd == "train" => train(artifact, scores),
        [cmd, artifact, scores] if cmd == "serve" => serve(artifact, scores),
        [] => {
            let dir = std::env::temp_dir().join(format!("phk_demo_{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("temp dir");
            let artifact = dir.join("detector.phk");
            let scores = dir.join("scores.phk");
            train(artifact.to_str().unwrap(), scores.to_str().unwrap());
            serve(artifact.to_str().unwrap(), scores.to_str().unwrap());
            std::fs::remove_dir_all(&dir).ok();
        }
        _ => {
            eprintln!(
                "usage: train_then_serve [train <artifact> <scores> | serve <artifact> <scores>]"
            );
            std::process::exit(2);
        }
    }
}
