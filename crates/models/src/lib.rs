//! The six deep detection models of the paper, built on the
//! [`phishinghook_nn`] substrate:
//!
//! * [`ViT`] — Vision Transformer over R2D2 or frequency-encoded RGB images
//!   (the paper's ViT+R2D2 and ViT+Freq);
//! * [`EcaEfficientNet`] — MBConv CNN with Efficient Channel Attention;
//! * [`ScsGuard`] — embedding → multi-head attention → GRU → dense;
//! * [`Gpt2Classifier`] — decoder-only (causal) transformer;
//! * [`T5Classifier`] — encoder + cross-attention decoder head;
//! * [`EscortNet`] — multi-branch DNN with a transfer-learning phase
//!   (frozen trunk), reproducing the VDM's failure mode on phishing.
//!
//! Every model is a faithful *small* configuration of its namesake (see
//! DESIGN.md §4): the paper fine-tunes ImageNet-pretrained ViT-B/16 and
//! HuggingFace GPT-2/T5 checkpoints on GPUs; we train the same architectures
//! at reduced width/depth from scratch on CPU, preserving the inductive
//! biases the comparison is about.
//!
//! All six deep models — and, through the [`DenseClassifier`] adapter, the
//! classical classifiers of `phishinghook_ml` — implement the unified
//! [`Model`] trait ([`model`]): one `fit`/`predict_proba` protocol over
//! borrowed `FeatureRow` views, which is what the evaluation engine and the
//! serving `Detector` dispatch through.

#![warn(missing_docs)]

pub mod eca_net;
pub mod escort;
pub mod gpt2;
pub mod model;
pub mod scsguard;
pub mod t5;
pub mod trainer;
pub mod vit;

pub use eca_net::EcaEfficientNet;
pub use escort::EscortNet;
pub use gpt2::Gpt2Classifier;
pub use model::{DenseClassifier, Model};
pub use scsguard::ScsGuard;
pub use t5::T5Classifier;
pub use trainer::{TrainConfig, TRAIN_SHARD};
pub use vit::ViT;
