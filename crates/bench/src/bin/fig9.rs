//! Regenerates **Fig. 9**: SHAP values of the Random-Forest HSC on a test
//! fold — the 20 most influential opcodes with signed influence direction.

use phishinghook::prelude::*;
use phishinghook_bench::{banner, main_dataset, RunScale};

fn main() {
    let scale = RunScale::from_args();
    banner("Fig. 9 - SHAP values of the best classifier", scale);
    let dataset = main_dataset(scale, 0xF9);
    let folds = dataset.stratified_folds(scale.folds().max(3), 0xF9);
    let (train, test) = dataset.fold_split(&folds, 0);
    println!(
        "train {} / test {} (one fold, as in the paper)\n",
        train.len(),
        test.len()
    );

    let analysis = shap_analysis(&train, &test, 20, &scale.profile(), 0xF9);
    println!("base value E[f] = {:.4}\n", analysis.base_value);
    println!(
        "{:<18} {:>12} {:>12}  direction",
        "opcode", "mean |SHAP|", "mean SHAP"
    );
    for inf in &analysis.top {
        let direction = if inf.mean_shap > 0.0 {
            "-> phishing"
        } else {
            "-> benign"
        };
        println!(
            "{:<18} {:>12.5} {:>+12.5}  {}",
            inf.mnemonic, inf.mean_abs_shap, inf.mean_shap, direction
        );
    }
    println!("\npaper's top-20 includes RETURNDATASIZE, RETURNDATACOPY, GAS, STATICCALL, LOG3, SELFBALANCE, ...");
}
