//! Regenerates **Table I**: the EVM opcodes of the Shanghai fork.

use phishinghook_bench::{banner, RunScale};
use phishinghook_evm::SHANGHAI_OPCODES;

fn main() {
    banner(
        "Table I - EVM opcodes (Shanghai fork)",
        RunScale::from_args(),
    );
    println!("{:<8} {:<16} {:>8}  Description", "Opcode", "Name", "Gas");
    for info in SHANGHAI_OPCODES {
        let gas = match info.gas {
            Some(g) => g.to_string(),
            None => "NaN".to_string(),
        };
        println!(
            "0x{:02X}     {:<16} {:>8}  {}",
            info.byte, info.mnemonic, gas, info.description
        );
    }
    println!("\ntotal opcodes: {}", SHANGHAI_OPCODES.len());
}
