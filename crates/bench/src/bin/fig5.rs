//! Regenerates **Fig. 5**: performance of the best model per category
//! (Random Forest, ECA+EfficientNet, SCSGuard) across 1/3, 2/3 and full
//! data splits.

use phishinghook::prelude::*;
use phishinghook::scalability::SCALABILITY_MODELS;
use phishinghook_bench::{banner, main_dataset, RunScale};

fn main() {
    let scale = RunScale::from_args();
    banner("Fig. 5 - model scalability across data splits", scale);
    let dataset = main_dataset(scale, 0xF5);
    let folds = if scale == RunScale::Quick { 2 } else { 4 };
    let study = run_scalability(&dataset, folds, &scale.profile(), 0xF5);

    for metric in METRIC_NAMES {
        println!("--- {metric} ---");
        println!("{:<20} {:>8} {:>8} {:>8}", "model", "1/3", "2/3", "1.0");
        for model in SCALABILITY_MODELS {
            print!("{:<20}", model.name());
            for ratio in SPLIT_RATIOS {
                print!(" {:>8.4}", study.mean_metric(model, ratio, metric));
            }
            println!();
        }
        println!();
    }

    // Persist for fig6/fig7.
    let table: Vec<Vec<f64>> = study.metric_table("accuracy");
    let json = phishinghook_bench::json::f64_table_to_json(&table);
    std::fs::write("fig5_accuracy_table.json", json).expect("write fig5 table");
    println!("accuracy table written to fig5_accuracy_table.json");
}
