//! Binary-classification metrics: the four columns of Table II.

use std::fmt;

/// A metric name [`Metrics::by_name`] does not recognize.
///
/// Carries the offending name so report/CLI layers can surface it; the
/// valid names are [`METRIC_NAMES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMetric(pub String);

impl fmt::Display for UnknownMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown metric {:?} (expected one of {METRIC_NAMES:?})",
            self.0
        )
    }
}

impl std::error::Error for UnknownMetric {}

/// Confusion matrix of a binary classifier (positive = phishing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Phishing predicted phishing.
    pub tp: usize,
    /// Benign predicted benign.
    pub tn: usize,
    /// Benign predicted phishing.
    pub fp: usize,
    /// Phishing predicted benign.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against labels.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn from_predictions(pred: &[u8], truth: &[u8]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/label mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p, t) {
                (1, 1) => c.tp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fp += 1,
                _ => c.fn_ += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }
}

/// The four performance metrics the paper reports, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// `TP / (TP + FP)`.
    pub precision: f64,
    /// `TP / (TP + FN)`.
    pub recall: f64,
}

impl Metrics {
    /// Derives the metrics from a confusion matrix. Degenerate denominators
    /// yield 0 (scikit-learn's `zero_division=0` convention).
    pub fn from_confusion(c: &Confusion) -> Self {
        let total = c.total().max(1) as f64;
        let accuracy = (c.tp + c.tn) as f64 / total;
        let precision = if c.tp + c.fp == 0 {
            0.0
        } else {
            c.tp as f64 / (c.tp + c.fp) as f64
        };
        let recall = if c.tp + c.fn_ == 0 {
            0.0
        } else {
            c.tp as f64 / (c.tp + c.fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Metrics {
            accuracy,
            f1,
            precision,
            recall,
        }
    }

    /// Convenience: metrics straight from predictions.
    pub fn from_predictions(pred: &[u8], truth: &[u8]) -> Self {
        Metrics::from_confusion(&Confusion::from_predictions(pred, truth))
    }

    /// Element-wise mean of a set of metric records.
    pub fn mean(items: &[Metrics]) -> Metrics {
        if items.is_empty() {
            return Metrics::default();
        }
        let n = items.len() as f64;
        Metrics {
            accuracy: items.iter().map(|m| m.accuracy).sum::<f64>() / n,
            f1: items.iter().map(|m| m.f1).sum::<f64>() / n,
            precision: items.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: items.iter().map(|m| m.recall).sum::<f64>() / n,
        }
    }

    /// Metric value by name (`"accuracy"`, `"f1"`, `"precision"`,
    /// `"recall"`), used by the post hoc analysis to iterate metrics.
    ///
    /// # Errors
    ///
    /// [`UnknownMetric`] on any other name — report layers fed from
    /// external configuration get a typed rejection, not a panic.
    pub fn by_name(&self, name: &str) -> Result<f64, UnknownMetric> {
        match name {
            "accuracy" => Ok(self.accuracy),
            "f1" => Ok(self.f1),
            "precision" => Ok(self.precision),
            "recall" => Ok(self.recall),
            other => Err(UnknownMetric(other.to_string())),
        }
    }
}

/// The metric names in the paper's reporting order.
pub const METRIC_NAMES: [&str; 4] = ["accuracy", "f1", "precision", "recall"];

/// Area under the ROC curve of `scores` against binary `labels`, via the
/// rank-statistic identity `AUC = (R₊ − n₊(n₊+1)/2) / (n₊·n₋)` with
/// tie-averaged ranks — threshold-free, so it compares scorers whose
/// outputs live on different scales (the cascade acceptance gate).
///
/// Degenerate inputs (one class absent, or empty) return 0.5: no ranking
/// information either way.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn auc(scores: &[f32], labels: &[u8]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "score/label mismatch");
    let n_pos = labels.iter().filter(|&&y| y == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| scores[i].total_cmp(&scores[j]));
    // Sum of positive-class ranks, averaging ranks within tied runs.
    let mut rank_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // 1-based ranks i+1 ..= j+1 share the mean rank of the run.
        let mean_rank = (i + j + 2) as f64 / 2.0;
        for &k in &order[i..=j] {
            if labels[k] == 1 {
                rank_pos += mean_rank;
            }
        }
        i = j + 1;
    }
    (rank_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = Metrics::from_predictions(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn known_confusion() {
        // TP=2 TN=1 FP=1 FN=1: acc=0.6, p=2/3, r=2/3, f1=2/3.
        let pred = [1, 1, 1, 0, 0];
        let truth = [1, 1, 0, 1, 0];
        let c = Confusion::from_predictions(&pred, &truth);
        assert_eq!((c.tp, c.tn, c.fp, c.fn_), (2, 1, 1, 1));
        let m = Metrics::from_confusion(&c);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_all_negative_predictions() {
        let m = Metrics::from_predictions(&[0, 0], &[1, 1]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn mean_of_metrics() {
        let a = Metrics {
            accuracy: 0.8,
            f1: 0.6,
            precision: 0.7,
            recall: 0.5,
        };
        let b = Metrics {
            accuracy: 1.0,
            f1: 0.8,
            precision: 0.9,
            recall: 0.7,
        };
        let m = Metrics::mean(&[a, b]);
        assert!((m.accuracy - 0.9).abs() < 1e-12);
        assert!((m.f1 - 0.7).abs() < 1e-12);
    }

    #[test]
    fn by_name_round_trip() {
        let m = Metrics {
            accuracy: 0.1,
            f1: 0.2,
            precision: 0.3,
            recall: 0.4,
        };
        for (name, want) in METRIC_NAMES.iter().zip([0.1, 0.2, 0.3, 0.4]) {
            assert_eq!(m.by_name(name), Ok(want));
        }
    }

    #[test]
    fn auc_matches_hand_computed_values() {
        // Perfect ranking.
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &[0, 0, 1, 1]), 1.0);
        // Perfectly inverted ranking.
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &[0, 0, 1, 1]), 0.0);
        // One discordant pair out of four: AUC = 3/4.
        assert_eq!(auc(&[0.1, 0.7, 0.4, 0.9], &[0, 0, 1, 1]), 0.75);
        // All scores tied: every pair is half-concordant.
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &[0, 1, 0, 1]), 0.5);
        // Degenerate single-class folds carry no ranking information.
        assert_eq!(auc(&[0.2, 0.8], &[1, 1]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn auc_is_invariant_under_monotone_transforms() {
        let scores = [0.11, 0.52, 0.48, 0.93, 0.27, 0.74];
        let labels = [0, 1, 0, 1, 0, 1];
        let base = auc(&scores, &labels);
        let squashed: Vec<f32> = scores.iter().map(|&s| 1.0 / (1.0 + (-s).exp())).collect();
        assert_eq!(auc(&squashed, &labels), base);
    }

    #[test]
    fn unknown_metric_is_a_typed_error() {
        let m = Metrics::default();
        let err = m.by_name("auc").unwrap_err();
        assert_eq!(err, UnknownMetric("auc".into()));
        let rendered = err.to_string();
        assert!(rendered.contains("auc") && rendered.contains("accuracy"));
    }
}
