//! Property tests for the HTTP parser's failure envelope: whatever bytes
//! arrive — random garbage, truncated real requests, single-byte
//! corruptions, oversized declarations — `read_request` must return a
//! typed result without panicking, and every error must map to a 4xx/5xx
//! response (or a silent close), never an `Ok` built from a damaged
//! request.

use phishinghook_serve::http::{read_request, HttpError, Limits};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Cursor;

fn parse(input: &[u8], limits: &Limits) -> Result<phishinghook_serve::Request, HttpError> {
    read_request(&mut Cursor::new(input.to_vec()), limits)
}

/// A canonical valid request whose every prefix/corruption the properties
/// chew on.
fn valid_request(body_len: usize) -> Vec<u8> {
    let body: String = (0..body_len)
        .map(|i| char::from(b'a' + (i % 26) as u8))
        .collect();
    format!(
        "POST /predict HTTP/1.1\r\nHost: unit.test\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// An error either maps to a 4xx/5xx client response or is a silent
/// close; both are acceptable terminal states, a panic or hang is not.
fn well_mapped(err: &HttpError) {
    if let Some((status, _)) = err.status() {
        assert!(
            (400..=599).contains(&status),
            "{err:?} mapped outside the error status range: {status}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the parser returns (no panic, no hang — the
    /// input is finite and every loop consumes) and errors stay typed.
    #[test]
    fn random_bytes_never_panic(input in vec(any::<u8>(), 0..2048)) {
        if let Err(e) = parse(&input, &Limits::default()) {
            well_mapped(&e);
        }
    }

    /// Every strict prefix of a valid request is an error — never a
    /// fabricated `Ok` — and the full request still parses.
    #[test]
    fn truncations_are_rejected(body_len in 0usize..200, frac in 0.0f64..1.0) {
        let full = valid_request(body_len);
        let cut = ((full.len() as f64) * frac) as usize;
        match parse(&full[..cut], &Limits::default()) {
            Ok(_) => panic!("accepted a request truncated to {cut}/{} bytes", full.len()),
            Err(HttpError::Closed) => assert_eq!(cut, 0, "Closed is only for empty input"),
            Err(e) => well_mapped(&e),
        }
        let req = parse(&full, &Limits::default()).expect("the untruncated request is valid");
        assert_eq!(req.body.len(), body_len);
    }

    /// One flipped byte anywhere in a valid request: the parser either
    /// still produces a structurally sound request (the flip landed in a
    /// tolerant spot, e.g. the body or a header value) or a well-mapped
    /// error. It must never produce a request that misreports its body.
    #[test]
    fn single_byte_corruption_is_contained(
        body_len in 1usize..100,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = valid_request(body_len);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        match parse(&bytes, &Limits::default()) {
            // Still parsable: the declared and delivered body must agree.
            Ok(req) => assert_eq!(
                req.header("content-length").and_then(|v| v.parse::<usize>().ok()),
                Some(req.body.len()),
                "corruption at byte {pos} produced an inconsistent request"
            ),
            Err(e) => well_mapped(&e),
        }
    }

    /// Declared body sizes beyond the cap are refused up front (413 from
    /// the declaration alone — the parser must not try to read or
    /// allocate the body), no matter how large the number gets.
    #[test]
    fn oversized_declarations_are_refused(excess in 1u64..u64::MAX / 2) {
        let limits = Limits { max_body: 1024, ..Limits::default() };
        let declared = 1024u64.saturating_add(excess);
        let input = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n"
        );
        let err = parse(input.as_bytes(), &limits).expect_err("must refuse");
        let (status, _) = err.status().expect("declaration errors answer the client");
        // In-range integers over the cap are 413; absurd ones overflow the
        // 12-digit guard and read as unparsable (400). Both are 4xx.
        assert!(status == 413 || status == 400, "got {status} for {declared}");
    }

    /// Header floods hit the caps, not the allocator: many headers or a
    /// huge header block must produce 431 under tiny limits.
    #[test]
    fn header_floods_hit_the_caps(n_headers in 3usize..40, value_len in 1usize..64) {
        let limits = Limits {
            max_headers: 2,
            max_header_bytes: 128,
            ..Limits::default()
        };
        let mut input = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..n_headers {
            input.push_str(&format!("X-Flood-{i}: {}\r\n", "v".repeat(value_len)));
        }
        input.push_str("\r\n");
        let err = parse(input.as_bytes(), &limits).expect_err("must refuse the flood");
        assert!(matches!(err, HttpError::HeadersTooLarge), "got {err:?}");
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }
}
