//! Criterion bench: cost of the post hoc statistical machinery (the PAM is
//! advertised as cheap enough to run after every evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook_stats::{dunn_test, friedman_test, kruskal_wallis, shapiro_wilk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_stats(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    // 13 models x 30 trials, as in the paper's post hoc.
    let groups: Vec<Vec<f64>> = (0..13)
        .map(|g| {
            (0..30)
                .map(|_| 0.85 + 0.01 * g as f64 + rng.gen_range(-0.02..0.02))
                .collect()
        })
        .collect();
    let sample: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..1.0)).collect();
    let blocks: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..3).map(|_| rng.gen_range(0.7..0.95)).collect())
        .collect();

    let mut group = c.benchmark_group("pam");
    group.bench_function("shapiro_wilk_n30", |b| {
        b.iter(|| shapiro_wilk(&sample).unwrap().p_value)
    });
    group.bench_function("kruskal_wallis_13x30", |b| {
        b.iter(|| kruskal_wallis(&groups).unwrap().p_value)
    });
    group.bench_function("dunn_13x30", |b| {
        b.iter(|| dunn_test(&groups).unwrap().pairs.len())
    });
    group.bench_function("friedman_12x3", |b| {
        b.iter(|| friedman_test(&blocks).unwrap().p_value)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_stats
}
criterion_main!(benches);
